"""Table 1: the workload catalog.

Regenerates the table (workload, category, dataset size) and, as the
quantitative check, profiles every workload to confirm the catalog's
calibration against Figure 1a.
"""

from repro.core.profiler import OfflineProfiler
from repro.workloads.catalog import CATALOG, workload_names


def test_table1_catalog(benchmark):
    profiler = OfflineProfiler(
        method="simulate", fractions=(0.25, 0.75), degree=1
    )

    def regenerate():
        rows = []
        for name in workload_names():
            template = CATALOG[name]
            result = profiler.profile(template)
            rows.append(
                (name, template.category, template.dataset,
                 result.slowdown_at(0.75), result.slowdown_at(0.25))
            )
        return rows

    rows = benchmark(regenerate)

    print("\nTable 1 -- workloads (with measured Fig-1a slowdowns)")
    print(f"{'Workload':9s} {'Category':10s} {'Dataset':34s} {'D(75%)':>7s} {'D(25%)':>7s}")
    for name, category, dataset, d75, d25 in rows:
        print(f"{name:9s} {category:10s} {dataset:34s} {d75:7.2f} {d25:7.2f}")

    assert [r[0] for r in rows] == workload_names()
    d25 = {r[0]: r[4] for r in rows}
    # Paper: range 1.1x (Sort) .. 3.4x (LR), average 2.1x.
    assert 1.0 <= d25["Sort"] <= 1.25
    assert 2.8 <= d25["LR"] <= 3.9
    assert 1.8 <= sum(d25.values()) / len(d25) <= 2.4
