"""Figure 10: Saba vs ideal max-min vs Homa vs Sincronia at scale.

Paper shape (average speedups over the InfiniBand baseline): Saba
1.27x > Sincronia 1.19x > ideal max-min 1.14x > Homa 1.12x > 1.0.

What reproduces here: every queue-separating policy beats the
congestion-collapsing baseline, and Saba visibly redistributes
completion time across sensitivity classes.  What does not: Saba's
*average* stays near the baseline instead of leading the pack -- in
this fluid substrate per-application WFQ pays structural costs
(per-port weight variance under ECMP, min-over-path stage completion)
that per-flow schemes avoid, and the synthetic-workload simulation
lacks the NIC-level multi-application contention where Saba earns its
testbed headline (which Figure 8 *does* reproduce).  See
EXPERIMENTS.md gap G3.

The benchmark runs a proportionally scaled-down spine-leaf fabric with
the same three-tier shape; SABA_FULL_SCALE=1 uses the paper's
54/102/108x18 topology.
"""

from _config import scale

from repro.experiments.fig10_fig11 import run_fig10


def test_fig10_policy_comparison(benchmark):
    topology_kwargs = scale(
        None,
        dict(n_spine=54, n_leaf=102, n_tor=108, servers_per_tor=18),
    )

    result = benchmark.pedantic(
        run_fig10,
        kwargs=dict(topology_kwargs=topology_kwargs),
        rounds=1,
        iterations=1,
    )

    print("\nFigure 10 -- average speedup over the baseline")
    paper = {
        "saba": 1.27, "ideal-maxmin": 1.14, "homa": 1.12, "sincronia": 1.19,
    }
    for policy in ("saba", "ideal-maxmin", "homa", "sincronia"):
        print(
            f"  {policy:13s} measured {result.average(policy):5.2f}   "
            f"paper {paper[policy]:.2f}"
        )
    print("  (Saba's simulated average diverges from the paper here; "
          "see EXPERIMENTS.md gap G3 -- the testbed benchmark carries "
          "the headline)")

    averages = {p: result.average(p) for p in result.speedups}
    # Queue separation beats the congestion-collapsing baseline.
    for policy in ("ideal-maxmin", "homa", "sincronia"):
        assert averages[policy] > 1.0, f"{policy}: {averages[policy]}"
    # Saba stays in the baseline's neighbourhood...
    assert averages["saba"] > 0.9
    assert abs(averages["saba"] - averages["ideal-maxmin"]) < 0.25
    # ...while clearly redistributing: its per-workload spread exceeds
    # ideal max-min's (which treats all workloads identically), with
    # the most sensitive workloads on the winning side.
    def spread(policy):
        values = list(result.speedups[policy].values())
        return max(values) / min(values)

    assert spread("saba") > spread("ideal-maxmin")
    saba = result.speedups["saba"]
    sensitive = [saba[f"SYN{i:02d}"] for i in (17, 18, 19)]
    insensitive = [saba[f"SYN{i:02d}"] for i in (0, 1, 2)]
    assert max(sensitive) > max(insensitive)
