"""Figure 9: testbed sensitivity studies.

Paper shape: (a) Saba keeps a clear win even when runtime dataset
sizes are 10x off the profiled ones, with the matched size winning
most; (b) the win shrinks as the runtime node count drifts to 4x the
profiled pod; (c) higher polynomial degrees help.
"""

from repro.experiments.fig9 import (
    average_speedups,
    run_fig9a,
    run_fig9b,
    run_fig9c,
)


def test_fig9a_dataset_size(benchmark):
    results = benchmark.pedantic(run_fig9a, rounds=1, iterations=1)

    print("\nFigure 9a -- speedup vs runtime dataset size")
    for s, per_workload in sorted(results.items()):
        print(f"  {s:4.1f}x  avg {average_speedups(per_workload):5.2f}")

    averages = {s: average_speedups(pw) for s, pw in results.items()}
    # Saba wins at every dataset size...
    for s, avg in averages.items():
        assert avg > 1.02, f"scale {s}: {avg}"
    # ...and the matched size is at least as good as the worst mismatch
    # (paper: 1.54x matched vs 1.33x/1.40x mismatched).
    assert averages[1.0] >= min(averages.values()) - 1e-9


def test_fig9b_node_count(benchmark):
    results = benchmark.pedantic(run_fig9b, rounds=1, iterations=1)

    print("\nFigure 9b -- speedup vs runtime node count")
    for m, per_workload in sorted(results.items()):
        print(f"  {m:4.1f}x  avg {average_speedups(per_workload):5.2f}")

    averages = {m: average_speedups(pw) for m, pw in results.items()}
    for m, avg in averages.items():
        assert avg > 0.98, f"multiplier {m}: {avg}"
    # The benefit at 4x is the weakest of the larger-than-profiled
    # deployments (paper: 1.09x at 4x vs 1.26-1.42x below).
    assert averages[4.0] <= max(averages[2.0], averages[3.0]) + 0.02


def test_fig9c_polynomial_degree(benchmark):
    results = benchmark.pedantic(run_fig9c, rounds=1, iterations=1)

    print("\nFigure 9c -- speedup vs polynomial degree")
    for k, per_workload in sorted(results.items()):
        print(f"  k={k}  avg {average_speedups(per_workload):5.2f}")

    averages = {k: average_speedups(pw) for k, pw in results.items()}
    for k, avg in averages.items():
        assert avg > 1.0, f"degree {k}: {avg}"
    # Higher degrees never hurt (paper: 1.27x, 1.42x, 1.54x for k=1,2,3).
    assert averages[3] >= averages[1] - 0.05
