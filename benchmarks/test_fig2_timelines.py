"""Figure 2: CPU/network utilization timelines for LR and PR.

Paper shape: LR alternates compute and communication phases and its
completion stretches markedly from 75 % to 25 % bandwidth; PR is
compute-dominated, overlaps transmission with computation, and
stretches much less.
"""

from repro.experiments.fig2 import run_fig2


def test_fig2_utilization_timelines(benchmark):
    panels = benchmark(run_fig2)

    print("\nFigure 2 -- completion times and mean utilizations")
    print(f"{'Panel':10s} {'T(done)':>8s} {'mean CPU':>9s} {'mean net':>9s}")
    for (workload, fraction), panel in sorted(panels.items()):
        print(
            f"{workload}@{int(fraction * 100):3d}%   "
            f"{panel.completion_time:8.1f} {panel.mean_cpu():9.2f} "
            f"{panel.mean_network():9.2f}"
        )

    lr75 = panels[("LR", 0.75)]
    lr25 = panels[("LR", 0.25)]
    pr75 = panels[("PR", 0.75)]
    pr25 = panels[("PR", 0.25)]

    # LR stretches much more than PR when bandwidth drops 75% -> 25%
    # (paper: LR 2.59x, PR 1.37x).
    lr_stretch = lr25.completion_time / lr75.completion_time
    pr_stretch = pr25.completion_time / pr75.completion_time
    assert lr_stretch > 1.8
    assert pr_stretch < 1.6
    assert lr_stretch > pr_stretch + 0.4

    # PR is compute-dominated: its CPU duty exceeds LR's.
    assert pr75.mean_cpu() > lr75.mean_cpu()

    # PR overlaps communication with computation: there are instants
    # with both CPU and network active.
    overlapped = sum(
        1 for c, n in zip(pr25.cpu, pr25.network) if c > 0.5 and n > 0.3
    )
    assert overlapped > 0

    # LR's communication phases show the complementary pattern: network
    # active while CPU idle.
    comm_only = sum(
        1 for c, n in zip(lr25.cpu, lr25.network) if c < 0.5 and n > 0.5
    )
    assert comm_only > 0
