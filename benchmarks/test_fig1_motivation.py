"""Figure 1: motivation experiments.

(a) Slowdown of every workload at 75 % / 25 % bandwidth.
(b) LR + PR co-run: max-min vs the skewed (75/25) allocation.

Paper shape: (a) slowdowns vary widely across workloads (1.1x .. 3.4x
at 25 %); (b) the skewed scheme improves LR markedly while degrading
PR only mildly.
"""

from repro.experiments.fig1 import run_fig1a, run_fig1b


def test_fig1a_sensitivity_spread(benchmark):
    rows = benchmark(run_fig1a)

    print("\nFigure 1a -- slowdown under reduced bandwidth")
    print(f"{'Workload':9s} {'75% BW':>8s} {'25% BW':>8s}")
    for name, cells in rows.items():
        print(f"{name:9s} {cells[0.75]:8.2f} {cells[0.25]:8.2f}")

    d25 = {name: cells[0.25] for name, cells in rows.items()}
    assert max(d25.values()) / min(d25.values()) > 2.0  # wide spread
    assert d25["LR"] > 2.8
    assert d25["Sort"] < 1.3
    for name, cells in rows.items():
        assert cells[0.25] >= cells[0.75] - 1e-6


def test_fig1b_skewed_beats_maxmin_for_lr(benchmark):
    result = benchmark(run_fig1b)

    print("\nFigure 1b -- LR+PR co-run slowdowns (vs stand-alone)")
    print(f"{'Scheme':8s} {'LR':>6s} {'PR':>6s}   paper: max-min 2.26/1.21, skewed 1.48/1.34")
    print(f"{'max-min':8s} {result.maxmin['LR']:6.2f} {result.maxmin['PR']:6.2f}")
    print(f"{'skewed':8s} {result.skewed['LR']:6.2f} {result.skewed['PR']:6.2f}")

    # Shape: skewing helps LR and costs PR only mildly.
    assert result.skewed["LR"] < result.maxmin["LR"] - 0.02
    assert result.skewed["PR"] >= result.maxmin["PR"] - 1e-6
    assert result.skewed["PR"] < result.maxmin["PR"] + 0.6
    # Average completion time falls -- the premise of sensitivity-aware
    # sharing ("the average completion time of applications is
    # significantly reduced", §2.4).
    assert result.average_completion("skewed") < result.average_completion(
        "maxmin"
    )
