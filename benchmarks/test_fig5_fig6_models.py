"""Figures 5 and 6: sensitivity-model fits and their accuracy.

Paper shape: (5) SQL is non-linear and needs k=3 for a good fit while
LR is near-linear; (6a) R^2 rises with the polynomial degree; (6b)
dataset-size mismatch costs accuracy but R^2 stays useful; (6c) node
counts up to 3x stay accurate, 4x degrades most models.
"""

from repro.experiments.fig5_fig6 import (
    run_fig5,
    run_fig6a,
    run_fig6b,
    run_fig6c,
)
from repro.workloads.catalog import CATALOG


def test_fig5_model_fits(benchmark):
    panels = benchmark(run_fig5)

    print("\nFigure 5 -- R^2 of SQL and LR fits by degree")
    for name, panel in panels.items():
        cells = "  ".join(f"k={k}: {panel.r2[k]:.3f}" for k in sorted(panel.r2))
        print(f"{name:4s} {cells}")

    sql, lr = panels["SQL"], panels["LR"]
    # Higher degrees fit SQL's kinked curve better; LR is well-captured
    # even at k=1 (the paper's contrast, though our inverse-basis fits
    # compress the gap -- see EXPERIMENTS.md).
    assert sql.r2[3] >= sql.r2[2] >= sql.r2[1]
    assert sql.r2[3] > 0.99
    assert lr.r2[1] > 0.95
    # LR degrades smoothly and further than SQL at moderate throttling.
    assert lr.models[3].predict(0.5) > sql.models[3].predict(0.5)


def test_fig6a_accuracy_vs_degree(benchmark):
    scores = benchmark(run_fig6a)

    print("\nFigure 6a -- R^2 vs polynomial degree")
    for name, by_degree in scores.items():
        print(f"{name:5s} " + "  ".join(
            f"k={k}:{by_degree[k]:.2f}" for k in sorted(by_degree)))

    for name, by_degree in scores.items():
        assert by_degree[1] <= by_degree[2] + 1e-9
        assert by_degree[2] <= by_degree[3] + 1e-9
        assert by_degree[1] > 0.6  # paper: all workloads above 0.60 at k=1
        assert by_degree[3] > 0.9


def test_fig6b_accuracy_vs_dataset_size(benchmark):
    scores = benchmark(run_fig6b)

    print("\nFigure 6b -- predictive R^2 vs runtime dataset size")
    for name, by_scale in scores.items():
        print(f"{name:5s} " + "  ".join(
            f"{s}x:{by_scale[s]:.2f}" for s in sorted(by_scale)))

    for name, by_scale in scores.items():
        # Matching configuration is (near-)perfect.
        assert by_scale[1.0] > 0.9
    n = len(scores)
    avg_small = sum(s[0.1] for s in scores.values()) / n
    avg_big = sum(s[10.0] for s in scores.values()) / n
    # Mismatched dataset sizes cost accuracy but the models keep
    # predictive power on average (paper: all above 0.55; ours keeps
    # the average there with a few harder outliers).
    assert avg_small > 0.6
    assert avg_big > 0.5
    mismatch_drop = {
        name: by_scale[1.0] - min(by_scale[0.1], by_scale[10.0])
        for name, by_scale in scores.items()
    }
    # Some workloads are affected far more than others (paper: NI worst,
    # SVM most robust).
    assert max(mismatch_drop.values()) > min(mismatch_drop.values()) + 0.02


def test_fig6c_accuracy_vs_node_count(benchmark):
    scores = benchmark(run_fig6c)

    print("\nFigure 6c -- predictive R^2 vs runtime node count")
    for name, by_mult in scores.items():
        print(f"{name:5s} " + "  ".join(
            f"{m}x:{by_mult[m]:.2f}" for m in sorted(by_mult)))

    n = len(scores)
    for name, by_mult in scores.items():
        assert by_mult[1.0] > 0.9
    # Up to 3x the models keep predictive power on average (paper: all
    # >= 0.50 at 3x); 4x hurts more than 2x -- "the number of nodes is
    # a crucial factor governing the accuracy".
    avg2 = sum(s[2.0] for s in scores.values()) / n
    avg3 = sum(s[3.0] for s in scores.values()) / n
    avg4 = sum(s[4.0] for s in scores.values()) / n
    assert avg3 > 0.6
    assert avg4 < avg2
    # LR and RF stay accurate even at 4x (paper names them among the
    # exceptions).
    assert scores["LR"][4.0] > 0.9
    assert scores["RF"][4.0] > 0.9
