"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper at a
CI-friendly scale and asserts the paper's qualitative shape (who wins,
by roughly what factor, where crossovers fall).  Set
``SABA_FULL_SCALE=1`` to run the paper's full parameters (500 setups,
1,944 servers, 30,000 scenarios); expect hours.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import build_catalog_table


@pytest.fixture(scope="session")
def catalog_table():
    """Catalog sensitivity table (k = 3, as in §8.2)."""
    return build_catalog_table(degree=3, method="analytic")
