"""Figure 11: controller design studies.

Paper shape: (a) the distributed controller is slightly below the
centralized one (1.23x vs 1.27x); (b) more queues help, with 8 close
to unlimited (1.12x at 2 queues, 1.27x at 8, 1.33x unlimited).
"""

from repro.experiments.fig10_fig11 import run_fig11a, run_fig11b


def test_fig11a_centralized_vs_distributed(benchmark):
    result = benchmark.pedantic(run_fig11a, rounds=1, iterations=1)

    print("\nFigure 11a -- centralized vs distributed controller")
    print(f"  centralized {result['centralized']:.2f}   (paper 1.27)")
    print(f"  distributed {result['distributed']:.2f}   (paper 1.23)")

    # Both designs land in the same neighbourhood (the simulated Saba
    # average tracks the baseline here; see EXPERIMENTS.md gap G3).
    assert result["centralized"] > 0.85
    assert result["distributed"] > 0.85
    # The offline database mapping costs a little accuracy (paper: 4 %),
    # but not a collapse.
    assert result["distributed"] <= result["centralized"] + 0.05
    assert result["distributed"] > result["centralized"] - 0.15


def test_fig11b_number_of_queues(benchmark):
    result = benchmark.pedantic(run_fig11b, rounds=1, iterations=1)

    print("\nFigure 11b -- average speedup vs per-port queues")
    for label, avg in result.items():
        print(f"  {label:>9s} queues: {avg:5.2f}")

    # More queues help monotonically (within tolerance).
    assert result["2"] <= result["8"] + 0.05
    assert result["8"] <= result["unlimited"] + 0.07
    # 8 queues get close to unlimited (paper: 1.27 vs 1.33).
    assert result["unlimited"] - result["8"] < 0.2
    # Even 2 queues stay serviceable (paper: 1.12x over its baseline).
    assert result["2"] > 0.8
