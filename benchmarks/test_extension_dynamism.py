"""Extension: staggered job arrivals (Section 2.4's dynamism challenge).

Not a paper figure.  Verifies that Saba's advantage survives a
constantly-changing application mix and that the control plane really
is exercised at churn (registrations and connection events throughout
the run, not just at t=0).
"""

from repro.experiments.extension_dynamism import run_dynamism


def test_dynamism_staggered_arrivals(benchmark, catalog_table):
    result = benchmark.pedantic(
        run_dynamism, kwargs=dict(table=catalog_table),
        rounds=1, iterations=1,
    )

    print("\nExtension -- staggered arrivals (mean gap 5 s)")
    print(f"  average speedup: {result.average_speedup:.2f}")
    print(f"  registrations:   {result.controller_registrations}")
    print(f"  conn events:     {result.controller_conn_events}")

    # Saba still wins under churn.
    assert result.average_speedup > 1.0
    # The control plane was exercised for every job and many flows.
    assert result.controller_registrations == 12
    assert result.controller_conn_events > 500
