"""Ablations of the design choices DESIGN.md calls out.

Not part of the paper's evaluation; these quantify the impact of this
implementation's own knobs:

* Eq. 2 solver: SLSQP (the paper's choice) vs the KKT water-filling
  fast path vs projected gradient -- solution quality and speed.
* Congestion-collapse severity (the InfiniBand baseline's alpha).
* Shuffle fan-out of the workload model.
"""

import time

import pytest

from repro.core.allocation import AllocationProblem, optimize_weights
from repro.core.profiler import OfflineProfiler
from repro.experiments.common import geomean
from repro.experiments.fig8 import run_fig8
from repro.workloads.catalog import CATALOG


@pytest.fixture(scope="module")
def models(catalog_table):
    return [catalog_table.get(n) for n in CATALOG]


def test_ablation_solver_quality(benchmark, models):
    """All three solvers land within a whisker of the same objective."""

    def solve_all():
        return {
            solver: optimize_weights(models[:6], solver=solver)
            for solver in ("slsqp", "kkt", "projgrad")
        }

    results = benchmark(solve_all)
    problem = AllocationProblem(models=tuple(models[:6]))
    objectives = {s: problem.objective(w) for s, w in results.items()}
    print("\nAblation: Eq. 2 solver objective values")
    for solver, val in objectives.items():
        print(f"  {solver:9s} {val:.4f}")
    best = min(objectives.values())
    for solver, val in objectives.items():
        assert val <= best * 1.03 + 0.03, solver


def test_ablation_solver_speed_at_scale(benchmark):
    """The vectorised KKT path is what keeps Figure 12 sub-second at
    datacenter application counts."""
    from repro.experiments.fig12 import synthetic_model_table

    table = synthetic_model_table(64, degree=3)
    pool = [table.get(n) for n in table.names()]
    models = [pool[i % len(pool)] for i in range(256)]

    def kkt():
        return optimize_weights(models, solver="kkt", min_weight=0.001)

    weights = benchmark(kkt)
    assert sum(weights) == pytest.approx(1.0, abs=1e-5)

    t0 = time.perf_counter()
    slsqp = optimize_weights(models, solver="slsqp", min_weight=0.001)
    slsqp_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    optimize_weights(models, solver="kkt", min_weight=0.001)
    kkt_time = time.perf_counter() - t0
    print(f"\nAblation: 256-app Eq. 2 -- kkt {kkt_time * 1e3:.1f} ms, "
          f"slsqp {slsqp_time * 1e3:.1f} ms")
    problem = AllocationProblem(models=tuple(models), min_weight=0.001)
    assert problem.objective(weights) <= problem.objective(slsqp) * 1.05


def test_ablation_collapse_alpha(benchmark, catalog_table):
    """Saba's testbed advantage grows with congestion-control severity
    (alpha = 0 isolates the pure-reallocation effect)."""

    def sweep():
        return {
            alpha: run_fig8(
                n_setups=2, jobs_per_setup=12, table=catalog_table,
                collapse_alpha=alpha,
            ).average_speedup
            for alpha in (0.0, 0.04, 0.08)
        }

    averages = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation: average Fig-8 speedup vs collapse alpha")
    for alpha, avg in averages.items():
        print(f"  alpha={alpha:.2f}: {avg:.2f}")
    assert averages[0.08] > averages[0.0]


def test_ablation_fanout(benchmark):
    """The standalone slowdown curves are fan-out invariant -- the
    calibration does not hinge on the peer-sampling substitution."""
    profiler = OfflineProfiler(method="analytic", fractions=(0.25,),
                               degree=1)

    def measure():
        rows = {}
        for fanout in (1, 3, 6):
            spec = CATALOG["LR"].instantiate()
            spec = type(spec)(
                name=spec.name, stages=spec.stages,
                n_instances=spec.n_instances, fanout=fanout,
            )
            samples, _ = profiler.measure_samples(spec)
            rows[fanout] = dict(samples)[0.25]
        return rows

    rows = benchmark(measure)
    print("\nAblation: LR slowdown at 25% BW vs shuffle fan-out")
    for fanout, d in rows.items():
        print(f"  fanout={fanout}: {d:.2f}")
    base = rows[3]
    for fanout, d in rows.items():
        assert d == pytest.approx(base, rel=0.05)
