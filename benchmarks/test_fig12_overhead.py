"""Figure 12: controller calculation-time overhead.

Paper shape: calculation time grows with both the active-application
count and the polynomial degree; even the extreme case (1,000
applications, k=3) stays around a second -- negligible next to
workload runtimes of minutes to hours.
"""

from _config import scale

from repro.experiments.fig12 import percentile, run_fig12


def test_fig12_controller_overhead(benchmark):
    sizes = scale((1, 10, 50, 100), (1, 10, 50, 100, 250, 500, 1000))
    repeats = scale(1, 10)

    results = benchmark.pedantic(
        run_fig12,
        kwargs=dict(app_set_sizes=sizes, repeats=repeats),
        rounds=1,
        iterations=1,
    )

    print("\nFigure 12 -- controller calculation time (seconds)")
    for k, scenarios in sorted(results.items()):
        small = [s.calc_time for s in scenarios if s.n_apps <= 250]
        print(
            f"  k={k}: p99(|A|<=250) = {percentile(small, 99):.3f}s, "
            f"max = {max(s.calc_time for s in scenarios):.3f}s"
        )
    print("  (pure-Python controller: expect ~2 orders of magnitude over "
          "the paper's C-backed NLopt; the growth shape is the claim)")

    # Calculation time grows with the application count for every k.
    for k, scenarios in results.items():
        tiny = [s.calc_time for s in scenarios if s.n_apps == min(sizes)]
        big = [s.calc_time for s in scenarios if s.n_apps == max(sizes)]
        assert max(big) > max(tiny)
    # Higher degree costs more at the largest application count.
    big1 = [s.calc_time for s in results[1] if s.n_apps == max(sizes)]
    big3 = [s.calc_time for s in results[3] if s.n_apps == max(sizes)]
    assert sum(big3) / len(big3) >= 0.5 * sum(big1) / len(big1)
    # Still small next to minutes-to-hours workloads (paper: 1.13 s at
    # the extreme with a C optimiser; Python pays interpreter overhead
    # per port).
    worst = max(s.calc_time for ss in results.values() for s in ss)
    assert worst < 180.0
