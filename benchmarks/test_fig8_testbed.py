"""Figure 8: main testbed results.

Paper shape: Saba improves average completion time across workloads
(paper: 1.88x at 500 setups); the largest gains go to the most
bandwidth-sensitive workloads (paper: RF 3.9x, LR 3.6x) while
insensitive workloads stay within a few percent of baseline (paper:
Sort -5 %, PR -1 %); nearly all setups come out ahead (paper: 498 of
500).

Default scale: 4 setups (set SABA_FULL_SCALE=1 for the paper's 500).
"""

from _config import scale

from repro.experiments.common import geomean
from repro.experiments.fig8 import run_fig8

SENSITIVE = ("LR", "RF", "GBT", "SVM")
INSENSITIVE = ("PR", "Sort", "WC", "SQL")


def test_fig8_testbed_speedups(benchmark, catalog_table):
    n_setups = scale(4, 500)

    result = benchmark.pedantic(
        run_fig8,
        kwargs=dict(n_setups=n_setups, table=catalog_table),
        rounds=1,
        iterations=1,
    )

    print("\nFigure 8a -- average speedup over the baseline per workload")
    for name, speedup in sorted(
        result.per_workload_speedup.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {name:5s} {speedup:5.2f}")
    print(f"  average (paper: 1.88x): {result.average_speedup:.2f}")

    print("Figure 8b -- CDF of setup-average speedups")
    for v, p in result.cdf():
        print(f"  {v:5.2f} -> {p:4.2f}")

    # Aggregate win.
    assert result.average_speedup > 1.05
    # Sensitive workloads benefit the most.
    sens = [
        result.per_workload_speedup[n]
        for n in SENSITIVE
        if n in result.per_workload_speedup
    ]
    insens = [
        result.per_workload_speedup[n]
        for n in INSENSITIVE
        if n in result.per_workload_speedup
    ]
    assert sens and insens
    assert geomean(sens) > geomean(insens) + 0.1
    # Insensitive workloads lose at most a few percent (paper: 1-5 %).
    assert min(insens) > 0.88
    # Nearly all setups come out ahead.
    ahead = sum(1 for v in result.setup_averages if v > 1.0)
    assert ahead >= 0.8 * len(result.setup_averages)
