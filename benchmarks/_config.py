"""Scale switch shared by the benchmark modules.

Benchmarks default to CI-friendly scales; set ``SABA_FULL_SCALE=1``
to run the paper's full parameters (500 setups, 1,944 servers,
30,000 scenarios) -- expect hours.
"""

import os

FULL_SCALE = os.environ.get("SABA_FULL_SCALE", "") == "1"


def scale(small, full):
    """Pick a parameter based on the SABA_FULL_SCALE switch."""
    return full if FULL_SCALE else small
