"""Random job placement under the paper's §8.2 constraints.

"Instances of jobs are randomly distributed among servers with two
constraints: 1) at most one instance of a given job is assigned to a
server, and 2) each server accommodates at most 16 jobs."
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.errors import ReproError

#: Paper's per-server job cap (§8.2, constraint 2).
DEFAULT_MAX_JOBS_PER_SERVER = 16


class PlacementError(ReproError):
    """The requested placement is infeasible."""


def random_placement(
    instance_counts: Sequence[int],
    servers: Sequence[str],
    rng: random.Random,
    max_jobs_per_server: int = DEFAULT_MAX_JOBS_PER_SERVER,
) -> List[List[str]]:
    """Place jobs' instances on servers.

    Args:
        instance_counts: instances required per job, in job order.
        servers: available server names.
        rng: source of randomness (callers seed it for reproducibility).
        max_jobs_per_server: constraint (2) of §8.2.

    Returns:
        One server list per job (distinct servers within each job).

    Strategy: for each job, shuffle the servers and take the
    least-loaded ``n`` of them, shuffled order breaking ties.  This is
    random but balanced enough that the paper's parameters (16 jobs of
    up to 32 instances on 32 servers) are always feasible.

    Raises:
        PlacementError: a job needs more distinct servers than exist,
            or the load cap leaves too few servers free.
    """
    n_servers = len(servers)
    load: Dict[str, int] = {s: 0 for s in servers}
    placements: List[List[str]] = []
    for job_index, n_instances in enumerate(instance_counts):
        if n_instances < 1:
            raise PlacementError(
                f"job {job_index}: needs at least one instance"
            )
        if n_instances > n_servers:
            raise PlacementError(
                f"job {job_index}: {n_instances} instances exceed "
                f"{n_servers} servers (constraint 1)"
            )
        candidates = [s for s in servers if load[s] < max_jobs_per_server]
        if len(candidates) < n_instances:
            raise PlacementError(
                f"job {job_index}: only {len(candidates)} servers below "
                f"the {max_jobs_per_server}-job cap, need {n_instances}"
            )
        rng.shuffle(candidates)
        candidates.sort(key=lambda s: load[s])
        chosen = candidates[:n_instances]
        for s in chosen:
            load[s] += 1
        placements.append(chosen)
    return placements
