"""Job and result records shared across the cluster package."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.workloads.model import ApplicationSpec


@dataclass
class Job:
    """A placed application instance set.

    Attributes:
        job_id: unique id within one co-run (e.g. ``"job3:LR"``).
        spec: the instantiated application.
        workload: template name for sensitivity-table lookups
            (``spec.name`` may carry decorations; this one is the key
            the profiler used).
        placement: server per instance; ``len == spec.n_instances``.
    """

    job_id: str
    spec: ApplicationSpec
    workload: str
    placement: List[str]

    def __post_init__(self) -> None:
        if len(self.placement) != self.spec.n_instances:
            raise ValueError(
                f"job {self.job_id}: placement has {len(self.placement)} "
                f"servers for {self.spec.n_instances} instances"
            )
        if len(set(self.placement)) != len(self.placement):
            raise ValueError(
                f"job {self.job_id}: placement must use distinct servers "
                "(at most one instance of a job per server)"
            )


@dataclass(frozen=True)
class JobResult:
    """Outcome of one job in a co-run."""

    job_id: str
    workload: str
    start_time: float
    end_time: float

    @property
    def completion_time(self) -> float:
        return self.end_time - self.start_time
