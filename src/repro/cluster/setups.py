"""Randomized cluster setups for the testbed experiments (§8.2).

"We generate 500 cluster setups.  In each cluster setup, 16 jobs are
randomly selected by drawing, with replacement, from the set of
workloads listed in Table 1.  [...] The dataset size of each job is
randomly selected from 0.1x, 1x, and 10x of the dataset used by the
profiler.  The number of instances of a job is also randomly selected
from 0.5x to 4x of the number of nodes used by the profiler (8
nodes)."
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.cluster.jobs import Job
from repro.cluster.placement import random_placement
from repro.workloads.catalog import CATALOG, PROFILER_NODES

#: §8.2 randomization domains.
DATASET_SCALES = (0.1, 1.0, 10.0)
INSTANCE_MULTIPLIERS = (0.5, 1.0, 2.0, 3.0, 4.0)


@dataclass(frozen=True)
class JobDescriptor:
    """One job draw within a cluster setup."""

    job_id: str
    workload: str
    dataset_scale: float
    n_instances: int


@dataclass(frozen=True)
class ClusterSetup:
    """One randomized co-run configuration."""

    setup_id: int
    jobs: Tuple[JobDescriptor, ...]

    def materialize(
        self,
        servers: Sequence[str],
        rng: random.Random,
        link_capacity: float,
        fanout: int = 3,
    ) -> List[Job]:
        """Instantiate specs and place instances on ``servers``."""
        specs = []
        for desc in self.jobs:
            template = CATALOG[desc.workload]
            spec = template.instantiate(
                dataset_scale=desc.dataset_scale,
                n_instances=desc.n_instances,
                link_capacity=link_capacity,
            )
            if fanout != spec.fanout:
                spec = type(spec)(
                    name=spec.name,
                    stages=spec.stages,
                    n_instances=spec.n_instances,
                    fanout=fanout,
                )
            specs.append(spec)
        placements = random_placement(
            [s.n_instances for s in specs], servers, rng
        )
        return [
            Job(
                job_id=desc.job_id,
                spec=spec,
                workload=desc.workload,
                placement=placement,
            )
            for desc, spec, placement in zip(self.jobs, specs, placements)
        ]


def generate_setups(
    n_setups: int = 500,
    jobs_per_setup: int = 16,
    seed: int = 2023,
    workloads: Sequence[str] = tuple(CATALOG),
    dataset_scales: Sequence[float] = DATASET_SCALES,
    instance_multipliers: Sequence[float] = INSTANCE_MULTIPLIERS,
    profiler_nodes: int = PROFILER_NODES,
    max_instances: int = 32,
) -> Iterator[ClusterSetup]:
    """Yield randomized cluster setups per the §8.2 recipe.

    ``max_instances`` caps the instance count at the server count of
    the testbed (constraint 1 of §8.2 requires distinct servers per
    job, so a job can never exceed the cluster size).
    """
    if n_setups < 1 or jobs_per_setup < 1:
        raise ValueError("n_setups and jobs_per_setup must be >= 1")
    rng = random.Random(seed)
    for setup_id in range(n_setups):
        jobs = []
        for j in range(jobs_per_setup):
            workload = rng.choice(list(workloads))
            scale = rng.choice(list(dataset_scales))
            multiplier = rng.choice(list(instance_multipliers))
            n_instances = max(2, min(max_instances,
                                     round(multiplier * profiler_nodes)))
            jobs.append(
                JobDescriptor(
                    job_id=f"job{j}:{workload}",
                    workload=workload,
                    dataset_scale=scale,
                    n_instances=n_instances,
                )
            )
        yield ClusterSetup(setup_id=setup_id, jobs=tuple(jobs))
