"""Co-run executor: run placed jobs concurrently on the fluid fabric.

Each job executes its stage sequence bulk-synchronously: all instances
compute, release their shuffle flows after the stage's overlap window,
and a barrier separates stages (both the compute timer and every
shuffle flow of the stage must finish).  Jobs interleave freely on the
shared fabric, contending for bandwidth under whatever policy is
installed.

Connections are created through a :class:`ConnectionAPI`, which is the
seam where the Saba library plugs in: the default
:class:`DirectConnections` just starts flows, while
:class:`repro.core.library.SabaLibrary` additionally tags flows with
the application's priority level and notifies the controller on every
create/destroy (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Protocol, Sequence

from repro.errors import SimulationError
from repro.obs.events import (
    JOB_FINISHED,
    JOB_STARTED,
    STAGE_FINISHED,
    STAGE_STARTED,
    Observer,
)
from repro.cluster.jobs import Job, JobResult
from repro.simnet.fabric import FabricPolicy, FluidFabric
from repro.simnet.flows import Flow
from repro.simnet.telemetry import UtilizationRecorder
from repro.simnet.topology import Topology
from repro.workloads.model import Stage


class ConnectionAPI(Protocol):
    """How jobs open network connections."""

    def create(
        self,
        job_id: str,
        src: str,
        dst: str,
        size: float,
        on_complete: Callable[[Flow], None],
        coflow: Optional[str] = None,
        rate_cap: Optional[float] = None,
        aux_rate: float = 0.0,
    ) -> Flow:
        """Open a connection and start its flow on the fabric.

        ``coflow`` tags the flow's stage-shuffle group (one coflow per
        job stage), which coflow-aware policies such as Sincronia use.
        ``rate_cap`` carries the application-limited sending rate, and
        ``aux_rate`` the non-network drain rate.
        """

    def job_started(self, job: Job) -> None:
        """A job is about to launch (registration hook)."""

    def job_finished(self, job: Job) -> None:
        """A job completed all stages (deregistration hook)."""


class DirectConnections:
    """Plain connections: no registration, no PL tagging."""

    def __init__(self, fabric: FluidFabric) -> None:
        self._fabric = fabric

    def create(
        self,
        job_id: str,
        src: str,
        dst: str,
        size: float,
        on_complete: Callable[[Flow], None],
        coflow: Optional[str] = None,
        rate_cap: Optional[float] = None,
        aux_rate: float = 0.0,
    ) -> Flow:
        flow = Flow(src=src, dst=dst, size=size, app=job_id, coflow=coflow,
                    rate_cap=rate_cap, aux_rate=aux_rate)
        return self._fabric.start_flow(flow, on_complete=on_complete)

    def job_started(self, job: Job) -> None:  # noqa: D102
        pass

    def job_finished(self, job: Job) -> None:  # noqa: D102
        pass


@dataclass(frozen=True)
class PolicySetup:
    """One policy-session: fabric policy + connection layer + handle.

    Replaces the bare ``(policy, connections_factory)`` tuples the
    experiment harnesses used to pass around.  ``controller`` is an
    optional handle to the control-plane object behind the
    connections factory (the :class:`SabaController` or distributed
    group), so callers can inspect controller state after a run
    without re-plumbing it through every harness.  ``pipeline`` is
    the controller's shared :class:`repro.core.pipeline.
    AllocationPipeline`, exposed so harnesses can read allocation
    stats (signature skips, coalesce flushes) or force
    ``flush_pending()`` without reaching into frontend internals.

    For online-estimation sessions (``make_policy("saba-online")``)
    three more handles travel along: ``provider`` (the
    :class:`repro.online.provider.ModelProvider` the controller reads
    models through), ``estimator`` (the
    :class:`repro.online.estimator.OnlineSensitivityEstimator` behind
    it, reusable across consecutive runs), and ``sampler`` (the
    :class:`repro.online.sampler.StageSampler`; the harness must
    register its jobs with it and attach it to the run's observer).

    Iteration yields ``(policy, connections_factory)`` so existing
    two-element tuple unpacking keeps working during migration::

        policy, factory = make_policy("saba", table)
    """

    policy: Optional[FabricPolicy]
    connections_factory: Optional[
        Callable[[FluidFabric], ConnectionAPI]
    ] = None
    controller: Optional[object] = None
    pipeline: Optional[object] = None
    provider: Optional[object] = None
    estimator: Optional[object] = None
    sampler: Optional[object] = None

    def __iter__(self) -> Iterator[object]:
        yield self.policy
        yield self.connections_factory


class _JobExecution:
    """Drives one job's stage sequence on the fabric.

    Two execution modes, selected by ``spec.barrier``:

    * barrier (BSP, Spark/Flink style): all instances run stage k in
      lockstep; a global barrier (compute timer + every shuffle flow of
      the stage) separates stages.
    * per-instance: each instance advances through its own stage
      sequence independently; the job completes when the last instance
      finishes (the paper's synthetic simulator workloads).
    """

    def __init__(
        self,
        fabric: FluidFabric,
        job: Job,
        connections: ConnectionAPI,
        on_done: Callable[[Job, float, float], None],
        recorder: Optional[UtilizationRecorder] = None,
    ) -> None:
        self._fabric = fabric
        self._job = job
        self._connections = connections
        self._on_done = on_done
        self._recorder = recorder
        self._stage_index = -1
        self._start_time: Optional[float] = None
        self._compute_pending = False
        self._flows_pending = 0
        self._flows_released = False
        self._instances_running = 0

    def start(self, at_time: float) -> None:
        self._fabric.sim.schedule_at(at_time, self._launch)

    # -- internals -------------------------------------------------------

    def _launch(self) -> None:
        self._start_time = self._fabric.sim.now
        obs = self._fabric.observer
        if obs.enabled:
            obs.metrics.counter("cluster.jobs_started").inc()
            obs.emit(
                JOB_STARTED, self._start_time, job=self._job.job_id,
                workload=self._job.workload,
                n_instances=self._job.spec.n_instances,
                stages=len(self._job.spec.stages),
            )
        self._connections.job_started(self._job)
        if self._job.spec.barrier:
            self._begin_stage(0)
        else:
            self._instances_running = self._job.spec.n_instances
            for i in range(self._job.spec.n_instances):
                _InstanceExecution(self, i).begin(0)

    def _instance_finished(self) -> None:
        self._instances_running -= 1
        if self._instances_running == 0:
            self._finish()

    def _begin_stage(self, index: int) -> None:
        spec = self._job.spec
        if index >= len(spec.stages):
            self._finish()
            return
        self._stage_index = index
        stage = spec.stages[index]
        now = self._fabric.sim.now
        obs = self._fabric.observer
        if obs.enabled:
            obs.emit(
                STAGE_STARTED, now, job=self._job.job_id, stage=index,
                compute_time=stage.compute_time,
                comm_bytes=stage.comm_bytes,
            )
        self._flows_pending = 0
        self._flows_released = False
        has_comm = stage.comm_bytes > 0 and spec.n_instances > 1
        self._compute_pending = stage.compute_time > 0
        if self._compute_pending:
            self._mark_cpu(True)
            self._fabric.sim.schedule(stage.compute_time, self._compute_done)
        if has_comm:
            release = stage.flow_release_offset()
            if release > 0:
                self._fabric.sim.schedule(
                    release, lambda: self._release_flows(stage)
                )
            else:
                self._release_flows(stage)
        else:
            self._flows_released = True
        if not self._compute_pending:
            self._maybe_advance()

    def _mark_cpu(self, busy: bool) -> None:
        if self._recorder is None:
            return
        now = self._fabric.sim.now
        for server in self._job.placement:
            self._recorder.cpu_busy(server, now, busy)

    def _compute_done(self) -> None:
        self._compute_pending = False
        self._mark_cpu(False)
        self._maybe_advance()

    def _release_flows(self, stage: Stage) -> None:
        spec = self._job.spec
        placement = self._job.placement
        fanout = spec.effective_fanout()
        per_peer = stage.comm_bytes / fanout
        if per_peer <= 0.0:  # sub-normal volumes underflow the split
            self._flows_released = True
            self._maybe_advance()
            return
        per_flow_cap = (
            stage.rate_cap / fanout if stage.rate_cap is not None else None
        )
        per_flow_aux = stage.aux_rate / fanout
        coflow = f"{self._job.job_id}#s{self._stage_index}"
        created = 0
        for i in range(spec.n_instances):
            src = placement[i]
            for peer in spec.peers_of(i):
                dst = placement[peer]
                if src == dst:
                    continue
                self._connections.create(
                    self._job.job_id, src, dst, per_peer, self._flow_done,
                    coflow=coflow, rate_cap=per_flow_cap,
                    aux_rate=per_flow_aux,
                )
                created += 1
        self._flows_pending = created
        self._flows_released = True
        if created == 0:
            self._maybe_advance()

    def _flow_done(self, flow: Flow) -> None:
        self._flows_pending -= 1
        if self._flows_pending < 0:
            raise SimulationError(
                f"job {self._job.job_id}: more completions than flows"
            )
        self._maybe_advance()

    def _maybe_advance(self) -> None:
        if self._compute_pending:
            return
        if not self._flows_released or self._flows_pending > 0:
            return
        obs = self._fabric.observer
        if obs.enabled and self._stage_index >= 0:
            obs.emit(
                STAGE_FINISHED, self._fabric.sim.now,
                job=self._job.job_id, stage=self._stage_index,
            )
        self._begin_stage(self._stage_index + 1)

    def _finish(self) -> None:
        assert self._start_time is not None
        self._connections.job_finished(self._job)
        now = self._fabric.sim.now
        obs = self._fabric.observer
        if obs.enabled:
            obs.metrics.counter("cluster.jobs_finished").inc()
            obs.metrics.histogram("cluster.job_seconds").observe(
                now - self._start_time
            )
            obs.emit(
                JOB_FINISHED, now, job=self._job.job_id,
                workload=self._job.workload,
                duration=now - self._start_time,
            )
        self._on_done(self._job, self._start_time, now)


class _InstanceExecution:
    """One instance's independent stage loop (non-barrier jobs)."""

    def __init__(self, parent: _JobExecution, instance: int) -> None:
        self._parent = parent
        self._instance = instance
        self._server = parent._job.placement[instance]
        self._stage_index = -1
        self._compute_pending = False
        self._flows_pending = 0
        self._flows_released = False

    def begin(self, index: int) -> None:
        parent = self._parent
        spec = parent._job.spec
        if index >= len(spec.stages):
            parent._instance_finished()
            return
        self._stage_index = index
        stage = spec.stages[index]
        self._flows_pending = 0
        self._flows_released = False
        has_comm = stage.comm_bytes > 0 and spec.n_instances > 1
        self._compute_pending = stage.compute_time > 0
        sim = parent._fabric.sim
        obs = parent._fabric.observer
        if obs.enabled:
            obs.emit(
                STAGE_STARTED, sim.now, job=parent._job.job_id,
                instance=self._instance, stage=index,
                compute_time=stage.compute_time,
                comm_bytes=stage.comm_bytes,
            )
        if self._compute_pending:
            self._mark_cpu(True)
            sim.schedule(stage.compute_time, self._compute_done)
        if has_comm:
            release = stage.flow_release_offset()
            if release > 0:
                sim.schedule(release, lambda: self._release_flows(stage))
            else:
                self._release_flows(stage)
        else:
            self._flows_released = True
        if not self._compute_pending:
            self._maybe_advance()

    def _mark_cpu(self, busy: bool) -> None:
        recorder = self._parent._recorder
        if recorder is not None:
            recorder.cpu_busy(self._server, self._parent._fabric.sim.now,
                              busy)

    def _compute_done(self) -> None:
        self._compute_pending = False
        self._mark_cpu(False)
        self._maybe_advance()

    def _release_flows(self, stage: Stage) -> None:
        parent = self._parent
        spec = parent._job.spec
        placement = parent._job.placement
        fanout = spec.effective_fanout()
        per_peer = stage.comm_bytes / fanout
        if per_peer <= 0.0:  # sub-normal volumes underflow the split
            self._flows_released = True
            self._maybe_advance()
            return
        per_flow_cap = (
            stage.rate_cap / fanout if stage.rate_cap is not None else None
        )
        per_flow_aux = stage.aux_rate / fanout
        coflow = (
            f"{parent._job.job_id}#i{self._instance}s{self._stage_index}"
        )
        created = 0
        for peer in spec.peers_of(self._instance):
            dst = placement[peer]
            if self._server == dst:
                continue
            parent._connections.create(
                parent._job.job_id, self._server, dst, per_peer,
                self._flow_done, coflow=coflow, rate_cap=per_flow_cap,
                aux_rate=per_flow_aux,
            )
            created += 1
        self._flows_pending = created
        self._flows_released = True
        if created == 0:
            self._maybe_advance()

    def _flow_done(self, flow: Flow) -> None:
        self._flows_pending -= 1
        if self._flows_pending < 0:
            raise SimulationError(
                f"job {self._parent._job.job_id} instance "
                f"{self._instance}: more completions than flows"
            )
        self._maybe_advance()

    def _maybe_advance(self) -> None:
        if self._compute_pending:
            return
        if not self._flows_released or self._flows_pending > 0:
            return
        obs = self._parent._fabric.observer
        if obs.enabled and self._stage_index >= 0:
            obs.emit(
                STAGE_FINISHED, self._parent._fabric.sim.now,
                job=self._parent._job.job_id, instance=self._instance,
                stage=self._stage_index,
            )
        self.begin(self._stage_index + 1)


class CoRunExecutor:
    """Execute a set of jobs concurrently under an allocation policy."""

    def __init__(
        self,
        topology: Topology,
        policy: Optional[object] = None,
        connections_factory: Optional[
            Callable[[FluidFabric], ConnectionAPI]
        ] = None,
        recorder: Optional[UtilizationRecorder] = None,
        completion_quantum: float = 0.0,
        observer: Optional[Observer] = None,
        faults: Optional[object] = None,
        incremental: bool = True,
        solver_backend: str = "object",
        incidence_backend: str = "auto",
        validate: bool = False,
    ) -> None:
        """``policy`` is either a bare :class:`FabricPolicy` or a
        :class:`PolicySetup` bundling the policy with its connections
        factory (passing ``connections_factory`` alongside a setup is
        an error -- the setup already carries one).

        ``completion_quantum`` batches near-simultaneous flow
        completions (see :class:`FluidFabric`); large co-run
        experiments set it a few orders of magnitude below stage
        durations.  ``observer`` (:mod:`repro.obs`) sees the whole
        run: job/stage lifecycle, flow events, engine counters.

        ``incremental``, ``solver_backend``, ``incidence_backend``,
        and ``validate`` pass straight through to
        :class:`FluidFabric` (the defaults match the fabric's, so
        existing callers are unchanged); scenario construction
        (:func:`repro.experiments.common.build_scenario`) and the
        storm fuzzer vary them to cross-check solver paths.

        ``faults`` is an optional
        :class:`repro.faults.FaultInjector`; it is bound to this
        executor's simulated clock before the connection layer is
        built, so fault windows and the control plane share one
        timeline."""
        if isinstance(policy, PolicySetup):
            if connections_factory is not None:
                raise ValueError(
                    "pass connections_factory inside the PolicySetup, "
                    "not alongside it"
                )
            connections_factory = policy.connections_factory
            policy = policy.policy
        self.topology = topology
        self.fabric = FluidFabric(
            topology, recorder=recorder,
            completion_quantum=completion_quantum,
            observer=observer,
            incremental=incremental,
            solver_backend=solver_backend,
            incidence_backend=incidence_backend,
            validate=validate,
        )
        self.observer = self.fabric.observer
        self.recorder = recorder
        if faults is not None:
            faults.bind(self.fabric.sim)
        if policy is not None:
            self.fabric.set_policy(policy)
        if connections_factory is None:
            self.connections: ConnectionAPI = DirectConnections(self.fabric)
        else:
            self.connections = connections_factory(self.fabric)

    def run(
        self,
        jobs: Sequence[Job],
        start_times: Optional[Sequence[float]] = None,
        max_time: Optional[float] = None,
    ) -> Dict[str, JobResult]:
        """Run all jobs to completion; returns results keyed by job id.

        Raises :class:`SimulationError` if ``max_time`` elapses with
        jobs still unfinished (a deadlock guard for tests).
        """
        if start_times is None:
            start_times = [0.0] * len(jobs)
        if len(start_times) != len(jobs):
            raise ValueError("start_times and jobs length mismatch")
        seen = set()
        for job in jobs:
            if job.job_id in seen:
                raise ValueError(f"duplicate job id {job.job_id!r}")
            seen.add(job.job_id)
        results: Dict[str, JobResult] = {}

        def on_done(job: Job, start: float, end: float) -> None:
            results[job.job_id] = JobResult(
                job_id=job.job_id,
                workload=job.workload,
                start_time=start,
                end_time=end,
            )

        for job, t0 in zip(jobs, start_times):
            _JobExecution(
                self.fabric, job, self.connections, on_done, self.recorder
            ).start(t0)
        self.fabric.run(until=max_time)
        if len(results) != len(jobs):
            missing = [j.job_id for j in jobs if j.job_id not in results]
            raise SimulationError(
                f"{len(missing)} job(s) did not finish: {missing[:5]}"
            )
        return results
