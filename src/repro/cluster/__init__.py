"""Cluster-level machinery: placement, co-run execution, setups.

This package turns application specs into *jobs* placed on servers of
a topology and executes them concurrently on the fluid fabric under an
allocation policy, producing per-job completion times -- the raw
measurements behind every evaluation figure.
"""

from repro.cluster.jobs import Job, JobResult
from repro.cluster.placement import random_placement, PlacementError
from repro.cluster.runtime import CoRunExecutor, DirectConnections
from repro.cluster.setups import ClusterSetup, JobDescriptor, generate_setups

__all__ = [
    "Job",
    "JobResult",
    "random_placement",
    "PlacementError",
    "CoRunExecutor",
    "DirectConnections",
    "ClusterSetup",
    "JobDescriptor",
    "generate_setups",
]
