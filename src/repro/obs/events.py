"""Typed, timestamped event records and a lightweight pub/sub bus.

Every decision the reproduction takes -- a connection registering, the
controller re-solving Eq. 2, a port's WFQ weights being reprogrammed --
is announced as an :class:`EventRecord` on an :class:`EventBus`.
Subscribers (the JSONL trace writer, tests, ad-hoc probes) see records
in publication order; ``seq`` is a per-bus monotonic tiebreaker for
events sharing a simulated timestamp, mirroring the engine's FIFO rule.

Instrumented call sites hold an :class:`Observer` (bus + metrics
registry).  The default is :data:`NULL_OBSERVER`, whose ``enabled``
flag is ``False`` and whose ``emit`` is a no-op, so observability
disabled costs one attribute check per site.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional

from repro.obs.metrics import MetricsRegistry

# -- event taxonomy --------------------------------------------------------
#
# Fabric / engine
FLOW_STARTED = "flow.started"          # flow entered the network
FLOW_FINISHED = "flow.finished"        # flow delivered its last byte
PORT_UTILIZATION = "port.utilization"  # a link's utilization changed
SIM_RUN = "sim.run"                    # an event-loop run completed
RATE_SOLVE = "fabric.rate_solve"       # dirty congestion components re-solved
# Controller lifecycle (centralized and distributed)
APP_REGISTERED = "app.registered"
APP_DEREGISTERED = "app.deregistered"
CONN_CREATED = "conn.created"
CONN_DESTROYED = "conn.destroyed"
REALLOCATION = "realloc.triggered"     # ports re-enforced after a change
SOLVE_BEGIN = "solve.begin"            # Eq. 2 optimiser invoked
SOLVE_END = "solve.end"                # ... returned (iterations, objective)
PORT_PROGRAMMED = "port.programmed"    # PL->queue map + WFQ weights installed
PORT_RESET = "port.reset"              # port returned to unprogrammed state
# Saba library (application-side view)
LIB_REGISTERED = "lib.registered"
LIB_DEREGISTERED = "lib.deregistered"
LIB_CONN_OPENED = "lib.conn_opened"
LIB_REREGISTERED = "lib.reregistered"  # queued registration drained
LIB_FAILOVER = "lib.failover"          # promoted the standby controller
# Fault injection (repro.faults) + resilient RPC
FAULT_CRASH = "faults.crash"           # endpoint entered a down window
FAULT_RECOVER = "faults.recover"       # ... and came back
FAULT_INJECTED = "faults.injected"     # one call hit loss/stall
# Dynamic topology (repro.simnet under link faults)
LINK_DOWN = "link.down"                # a link transitioned down
LINK_UP = "link.up"                    # ... and came back up
FLOW_REROUTED = "flow.rerouted"        # an active flow changed path
# Allocation service (repro.service)
SERVICE_REQUEST = "service.request"    # an admitted API request
SERVICE_REJECTED = "service.rejected"  # a request rejected (quota/queue/drain)
SERVICE_DRAIN = "service.drain"        # graceful shutdown drained
# Online sensitivity estimation (repro.online)
ONLINE_SAMPLE = "online.sample"        # one (fraction, slowdown) observation
ONLINE_REFIT = "online.refit"          # window re-fitted (accepted or not)
ONLINE_DRIFT = "online.drift"          # Page-Hinkley tripped; window shrunk
ONLINE_FALLBACK = "online.fallback"    # provider served offline/prior model
MODEL_LOW_FIT = "model.low_fit"        # a consumed fit's R^2 is below gate
# Storm traffic generator + scenario fuzzer (repro.storm)
STORM_STARTED = "storm.started"        # an open-loop run began
STORM_FINISHED = "storm.finished"      # ... and completed (offered/admitted)
STORM_FLASH_CROWD = "storm.flash_crowd"  # a scripted arrival surge began
STORM_VIOLATION = "storm.violation"    # an invariant probe failed
# Cluster runtime
JOB_STARTED = "job.started"
JOB_FINISHED = "job.finished"
STAGE_STARTED = "stage.started"
STAGE_FINISHED = "stage.finished"
# Sweep orchestration (repro.sweep).  Sweeps happen in wall-clock, not
# simulated, time: their ``time`` field is seconds since sweep start.
SWEEP_STARTED = "sweep.started"
SWEEP_FINISHED = "sweep.finished"
SWEEP_TASK_STARTED = "sweep.task_started"
SWEEP_TASK_FINISHED = "sweep.task_finished"
SWEEP_TASK_RETRIED = "sweep.task_retried"
SWEEP_TASK_FAILED = "sweep.task_failed"
SWEEP_CACHE_HIT = "sweep.cache_hit"

#: Every event type the instrumentation emits.  Buses are strict by
#: default: publishing an unknown type raises, catching taxonomy typos
#: at the call site instead of in post-hoc analysis.
EVENT_TYPES = frozenset({
    FLOW_STARTED, FLOW_FINISHED, PORT_UTILIZATION, SIM_RUN, RATE_SOLVE,
    APP_REGISTERED, APP_DEREGISTERED, CONN_CREATED, CONN_DESTROYED,
    REALLOCATION, SOLVE_BEGIN, SOLVE_END, PORT_PROGRAMMED, PORT_RESET,
    LIB_REGISTERED, LIB_DEREGISTERED, LIB_CONN_OPENED,
    LIB_REREGISTERED, LIB_FAILOVER,
    FAULT_CRASH, FAULT_RECOVER, FAULT_INJECTED,
    LINK_DOWN, LINK_UP, FLOW_REROUTED,
    SERVICE_REQUEST, SERVICE_REJECTED, SERVICE_DRAIN,
    ONLINE_SAMPLE, ONLINE_REFIT, ONLINE_DRIFT, ONLINE_FALLBACK,
    MODEL_LOW_FIT,
    STORM_STARTED, STORM_FINISHED, STORM_FLASH_CROWD, STORM_VIOLATION,
    JOB_STARTED, JOB_FINISHED, STAGE_STARTED, STAGE_FINISHED,
    SWEEP_STARTED, SWEEP_FINISHED, SWEEP_TASK_STARTED,
    SWEEP_TASK_FINISHED, SWEEP_TASK_RETRIED, SWEEP_TASK_FAILED,
    SWEEP_CACHE_HIT,
})


@dataclass(frozen=True)
class EventRecord:
    """One observed decision or state change.

    ``time`` is the *simulated* clock; wall-clock durations (solver
    latency) travel inside ``fields``.
    """

    type: str
    time: float
    seq: int
    fields: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON-ready form; field keys must not collide with the
        envelope keys (enforced at publish time)."""
        out: Dict[str, object] = {
            "type": self.type, "time": self.time, "seq": self.seq,
        }
        out.update(self.fields)
        return out


_ENVELOPE_KEYS = frozenset({"type", "time", "seq"})


class EventBus:
    """Synchronous pub/sub with optional per-subscriber type filters.

    >>> bus = EventBus()
    >>> seen = []
    >>> unsubscribe = bus.subscribe(seen.append, types=[FLOW_STARTED])
    >>> _ = bus.publish(FLOW_STARTED, time=1.0, flow_id=7)
    >>> _ = bus.publish(FLOW_FINISHED, time=2.0, flow_id=7)
    >>> [r.type for r in seen]
    ['flow.started']
    """

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self._seq = itertools.count()
        self._subscribers: List[tuple] = []  # (callback, frozenset | None)
        self.counts: Dict[str, int] = {}

    def subscribe(
        self,
        callback: Callable[[EventRecord], None],
        types: Optional[Iterable[str]] = None,
    ) -> Callable[[], None]:
        """Register ``callback``; returns an unsubscribe function."""
        type_filter = None if types is None else frozenset(types)
        if self.strict and type_filter is not None:
            unknown = type_filter - EVENT_TYPES
            if unknown:
                raise ValueError(f"unknown event types: {sorted(unknown)}")
        entry = (callback, type_filter)
        self._subscribers.append(entry)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(entry)
            except ValueError:
                pass

        return unsubscribe

    def publish(self, type: str, time: float, **fields) -> EventRecord:
        """Create a record and deliver it to matching subscribers."""
        if self.strict and type not in EVENT_TYPES:
            raise ValueError(f"unknown event type {type!r}")
        collision = _ENVELOPE_KEYS.intersection(fields)
        if collision:
            raise ValueError(
                f"event fields shadow envelope keys: {sorted(collision)}"
            )
        record = EventRecord(
            type=type, time=float(time), seq=next(self._seq), fields=fields,
        )
        self.counts[type] = self.counts.get(type, 0) + 1
        for callback, type_filter in list(self._subscribers):
            if type_filter is None or type in type_filter:
                callback(record)
        return record

    @property
    def total_published(self) -> int:
        return sum(self.counts.values())


class Observer:
    """Bus + metrics registry, handed to every instrumented component.

    One observer is shared across the engine, fabric, controller,
    library, and cluster runtime of a run, so their events interleave
    on a single sequence and their metrics land in one registry.
    """

    enabled = True

    def __init__(
        self,
        bus: Optional[EventBus] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.bus = bus if bus is not None else EventBus()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def emit(self, type: str, time: float, **fields) -> Optional[EventRecord]:
        """Publish one event (sugar for ``observer.bus.publish``)."""
        return self.bus.publish(type, time, **fields)


class NullObserver(Observer):
    """Disabled observability: ``emit`` does nothing.

    Instrumented hot paths guard non-trivial work (building event
    fields, touching metrics) behind ``observer.enabled``; bare
    ``emit`` calls on this class are single no-op method calls.
    """

    enabled = False

    def emit(self, type: str, time: float, **fields) -> None:  # noqa: D102
        return None


#: Shared default for every instrumented component.
NULL_OBSERVER = NullObserver()
