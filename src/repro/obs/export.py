"""Trace, metrics, and manifest export.

Three artifact kinds, written alongside experiment outputs:

* **JSONL event traces** -- :class:`JsonlTraceWriter` subscribes to an
  :class:`~repro.obs.events.EventBus` and streams one JSON object per
  event; :func:`read_trace` loads them back for analysis and for the
  ``python -m repro obs summarize`` CLI.
* **Metrics snapshots** -- :func:`metrics_to_json` /
  :func:`metrics_to_csv` serialise a
  :class:`~repro.obs.metrics.MetricsRegistry` snapshot.
* **Run manifests** -- :class:`RunManifest` records what produced an
  artifact (config, seed, code version, wall-clock and simulated
  duration) so results stay attributable long after the run.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.events import EventBus, EventRecord, Observer
from repro.obs.metrics import MetricsRegistry


class JsonlTraceWriter:
    """Stream event records to a JSONL file.

    Usable directly as a bus subscriber::

        writer = JsonlTraceWriter(path)
        observer.bus.subscribe(writer)
        ...
        writer.close()

    or as a context manager.  Records are flushed on ``close`` (and on
    interpreter exit via the file object), not per event.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = open(self.path, "w")
        self.records_written = 0

    def __call__(self, record: EventRecord) -> None:
        self._handle.write(
            json.dumps(record.to_dict(), separators=(",", ":")) + "\n"
        )
        self.records_written += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach_trace_writer(
    observer: Observer, path: Union[str, Path]
) -> JsonlTraceWriter:
    """Subscribe a fresh JSONL writer to ``observer``'s bus."""
    writer = JsonlTraceWriter(path)
    observer.bus.subscribe(writer)
    return writer


def read_trace(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Load a JSONL trace back into a list of flat records.

    Blank lines are skipped, so concatenated or hand-edited traces
    load cleanly.
    """
    records: List[Dict[str, object]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# -- metrics snapshots ------------------------------------------------------


def metrics_to_json(
    registry: MetricsRegistry, path: Optional[Union[str, Path]] = None
) -> str:
    """Snapshot as a JSON string; also written to ``path`` if given."""
    text = json.dumps(registry.snapshot(), indent=2, sort_keys=True)
    if path is not None:
        Path(path).write_text(text + "\n")
    return text


def metrics_to_csv(registry: MetricsRegistry, path: Union[str, Path]) -> int:
    """Snapshot as flat ``kind,name,field,value`` rows; returns row count."""
    snapshot = registry.snapshot()
    rows: List[Dict[str, object]] = []
    for kind in ("counters", "gauges"):
        for name, value in snapshot[kind].items():
            rows.append({"kind": kind[:-1], "name": name,
                         "field": "value", "value": value})
    for kind in ("time_gauges", "histograms"):
        for name, stats in snapshot[kind].items():
            for stat, value in stats.items():
                rows.append({"kind": kind[:-1], "name": name,
                             "field": stat, "value": value})
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(
            handle, fieldnames=("kind", "name", "field", "value")
        )
        writer.writeheader()
        writer.writerows(rows)
    return len(rows)


# -- run manifests -----------------------------------------------------------


def code_version() -> str:
    """Package version, plus the git commit when running from a checkout.

    Pure file reads (no subprocess): resolves ``.git/HEAD`` one level
    above ``src/``.  Falls back to the bare version for installed
    copies or detached trees.
    """
    from repro._version import __version__

    version = __version__
    try:
        git_dir = Path(__file__).resolve().parents[3] / ".git"
        head = (git_dir / "HEAD").read_text().strip()
        if head.startswith("ref: "):
            ref = git_dir / head[len("ref: "):]
            commit = ref.read_text().strip() if ref.exists() else ""
        else:
            commit = head
        if commit:
            return f"{version}+g{commit[:12]}"
    except OSError:
        pass
    return version


@dataclass
class RunManifest:
    """What produced an artifact: config, seed, code, and durations.

    ``wall_seconds`` is real elapsed time; ``sim_seconds`` the simulated
    horizon the run covered.  ``extra`` is free-form (result paths,
    policy names, host facts).
    """

    name: str
    config: Dict[str, object] = field(default_factory=dict)
    seed: Optional[int] = None
    code_version: str = field(default_factory=code_version)
    created_unix: Optional[float] = None
    wall_seconds: Optional[float] = None
    sim_seconds: Optional[float] = None
    extra: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "config": dict(self.config),
            "seed": self.seed,
            "code_version": self.code_version,
            "created_unix": self.created_unix,
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunManifest":
        known = {f: data.get(f) for f in (
            "name", "config", "seed", "code_version", "created_unix",
            "wall_seconds", "sim_seconds", "extra",
        )}
        if known["name"] is None:
            raise ValueError("manifest has no name")
        known["config"] = dict(known["config"] or {})
        known["extra"] = dict(known["extra"] or {})
        if known["code_version"] is None:
            known["code_version"] = "unknown"
        return cls(**known)

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True)
                        + "\n")
        return path

    @classmethod
    def read(cls, path: Union[str, Path]) -> "RunManifest":
        return cls.from_dict(json.loads(Path(path).read_text()))
