"""Unified observability: event bus, metrics, trace export, summaries.

The Saba controller's whole job is reacting to connection churn --
re-solving Eq. 2 and reprogramming WFQ weights on every affected port
-- yet those decisions are invisible in a bare simulation run.  This
package makes them observable everywhere:

* :mod:`repro.obs.events` -- typed, timestamped event records on a
  pub/sub :class:`EventBus`; the :class:`Observer` (bus + metrics)
  threads through the engine, fabric, controller, library, and cluster
  runtime.
* :mod:`repro.obs.metrics` -- counters, gauges, simulated-time-weighted
  gauges, and streaming p50/p95/p99 histograms in a
  :class:`MetricsRegistry`.
* :mod:`repro.obs.export` -- JSONL trace writing, metrics snapshots
  (JSON/CSV), and :class:`RunManifest` provenance records.
* :mod:`repro.obs.summary` -- post-hoc trace reduction behind
  ``python -m repro obs summarize``.

Observability is off by default: every instrumented component holds
:data:`NULL_OBSERVER`, whose ``enabled`` flag gates all non-trivial
work, so disabled runs are bit-identical to uninstrumented ones.

Typical use::

    from repro.obs import Observer, attach_trace_writer

    observer = Observer()
    writer = attach_trace_writer(observer, "run.jsonl")
    results = run_jobs(topology, jobs, policy, factory, observer=observer)
    writer.close()
    print(observer.metrics.snapshot())
"""

from repro.obs.events import (
    EVENT_TYPES,
    EventBus,
    EventRecord,
    NULL_OBSERVER,
    NullObserver,
    Observer,
)
from repro.obs.export import (
    JsonlTraceWriter,
    RunManifest,
    attach_trace_writer,
    code_version,
    metrics_to_csv,
    metrics_to_json,
    read_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    StreamingHistogram,
    TimeWeightedGauge,
)
from repro.obs.summary import (
    TraceSummary,
    format_summary,
    summarize_file,
    summarize_trace,
)

__all__ = [
    "EVENT_TYPES",
    "EventBus",
    "EventRecord",
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    "JsonlTraceWriter",
    "RunManifest",
    "attach_trace_writer",
    "code_version",
    "metrics_to_csv",
    "metrics_to_json",
    "read_trace",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "StreamingHistogram",
    "TimeWeightedGauge",
    "TraceSummary",
    "format_summary",
    "summarize_file",
    "summarize_trace",
]
