"""Post-hoc trace analysis behind ``python -m repro obs summarize``.

Reads a JSONL event trace (see :mod:`repro.obs.export`) and reduces it
to the numbers an operator debugging an allocation run wants first:
how often the controller re-allocated, how long Eq. 2 solves took
(p50/p95/p99), how utilized each port was over time, and per-job
completion times.

The summarizer is deliberately independent of the live metrics
registry: it recomputes everything from the trace alone, so traces from
old runs (or other machines) stay analysable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Union

from repro.obs import events as ev
from repro.obs.export import read_trace


def _percentile(values: List[float], q: float) -> float:
    """Linear-interpolated percentile over a fully stored sample."""
    if not values:
        raise ValueError("percentile of no values")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


@dataclass
class TraceSummary:
    """Everything ``repro obs summarize`` prints, as plain data."""

    n_events: int = 0
    counts: Dict[str, int] = field(default_factory=dict)
    reallocations: int = 0
    ports_programmed: int = 0
    solver: Dict[str, float] = field(default_factory=dict)
    port_mean_utilization: Dict[str, float] = field(default_factory=dict)
    job_completion: Dict[str, float] = field(default_factory=dict)
    #: link -> last programmed/reset state seen in the trace (the
    #: describe_port view reconstructed post-hoc from port.* events).
    final_ports: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: Allocation-service view (``service.*`` / link transition
    #: events); empty when the trace has no service activity.
    service: Dict[str, float] = field(default_factory=dict)
    sim_span: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_events": self.n_events,
            "counts": dict(self.counts),
            "reallocations": self.reallocations,
            "ports_programmed": self.ports_programmed,
            "solver": dict(self.solver),
            "port_mean_utilization": dict(self.port_mean_utilization),
            "job_completion": dict(self.job_completion),
            "final_ports": {k: dict(v) for k, v in self.final_ports.items()},
            "service": dict(self.service),
            "sim_span": self.sim_span,
        }


def summarize_trace(records: Iterable[Mapping[str, object]]) -> TraceSummary:
    """Reduce a loaded trace to a :class:`TraceSummary`."""
    summary = TraceSummary()
    solve_durations: List[float] = []
    # link -> parallel (time, utilization) step series
    port_series: Dict[str, List[tuple]] = {}
    # Degraded-allocation accounting: union of the intervals during
    # which at least one link was down.
    down_links: set = set()
    degraded_since: float = math.nan
    degraded_total = 0.0
    max_queued = 0.0
    t_min = math.inf
    t_max = -math.inf
    for record in records:
        etype = str(record.get("type", "?"))
        time = float(record.get("time", 0.0))
        summary.n_events += 1
        summary.counts[etype] = summary.counts.get(etype, 0) + 1
        t_min = min(t_min, time)
        t_max = max(t_max, time)
        if etype == ev.SOLVE_END:
            duration = record.get("duration")
            if duration is not None:
                solve_durations.append(float(duration))
        elif etype == ev.PORT_UTILIZATION:
            link = str(record.get("link"))
            port_series.setdefault(link, []).append(
                (time, float(record.get("utilization", 0.0)))
            )
        elif etype == ev.JOB_FINISHED:
            job = str(record.get("job"))
            duration = record.get("duration")
            if duration is not None:
                summary.job_completion[job] = float(duration)
        elif etype == ev.PORT_PROGRAMMED:
            state: Dict[str, object] = {
                "state": "programmed",
                "apps": int(record.get("apps", 0)),
            }
            weights = record.get("weights")
            if hasattr(weights, "__len__"):
                state["queues"] = len(weights)
            generation = record.get("generation")
            if generation is not None:
                state["generation"] = int(generation)
            summary.final_ports[str(record.get("link"))] = state
        elif etype == ev.PORT_RESET:
            state = {"state": "reset"}
            generation = record.get("generation")
            if generation is not None:
                state["generation"] = int(generation)
            summary.final_ports[str(record.get("link"))] = state
        elif etype == ev.SERVICE_REQUEST:
            max_queued = max(max_queued, float(record.get("queued", 0.0)))
        elif etype == ev.LINK_DOWN:
            if not down_links:
                degraded_since = time
            down_links.add(str(record.get("link")))
        elif etype == ev.LINK_UP:
            down_links.discard(str(record.get("link")))
            if not down_links and not math.isnan(degraded_since):
                degraded_total += time - degraded_since
                degraded_since = math.nan
    if down_links and not math.isnan(degraded_since):
        # Trace ends with links still down: degraded to the end.
        degraded_total += t_max - degraded_since
    summary.reallocations = summary.counts.get(ev.REALLOCATION, 0)
    summary.ports_programmed = summary.counts.get(ev.PORT_PROGRAMMED, 0)
    if summary.n_events:
        summary.sim_span = t_max - t_min
    if solve_durations:
        summary.solver = {
            "count": float(len(solve_durations)),
            "mean": sum(solve_durations) / len(solve_durations),
            "p50": _percentile(solve_durations, 50),
            "p95": _percentile(solve_durations, 95),
            "p99": _percentile(solve_durations, 99),
            "max": max(solve_durations),
        }
    for link, series in port_series.items():
        summary.port_mean_utilization[link] = _step_mean(series, t_max)
    service_counts = {
        "admitted": summary.counts.get(ev.SERVICE_REQUEST, 0),
        "rejected": summary.counts.get(ev.SERVICE_REJECTED, 0),
        "drains": summary.counts.get(ev.SERVICE_DRAIN, 0),
        "link_downs": summary.counts.get(ev.LINK_DOWN, 0),
        "link_ups": summary.counts.get(ev.LINK_UP, 0),
        "flows_rerouted": summary.counts.get(ev.FLOW_REROUTED, 0),
    }
    if any(service_counts.values()):
        summary.service = {k: float(v) for k, v in service_counts.items()}
        summary.service["max_queued"] = max_queued
        summary.service["degraded_seconds"] = degraded_total
    return summary


def _step_mean(series: List[tuple], t_end: float) -> float:
    """Time-weighted mean of a piecewise-constant (time, value) series
    over [first sample, t_end]; the last value holds until ``t_end``."""
    if not series:
        return 0.0
    span = t_end - series[0][0]
    if span <= 0.0:
        return series[-1][1]
    integral = 0.0
    for i, (t, value) in enumerate(series):
        seg_end = series[i + 1][0] if i + 1 < len(series) else t_end
        integral += value * max(0.0, min(seg_end, t_end) - t)
    return integral / span


def summarize_file(path: Union[str, Path]) -> TraceSummary:
    """Load a JSONL trace and summarize it."""
    return summarize_trace(read_trace(path))


def format_summary(summary: TraceSummary) -> str:
    """Human-readable rendering (the CLI's default output)."""
    lines = [
        f"events            {summary.n_events}",
        f"simulated span    {summary.sim_span:.3f}s",
        f"reallocations     {summary.reallocations}",
        f"ports programmed  {summary.ports_programmed}",
    ]
    if summary.solver:
        s = summary.solver
        lines.append(
            "solver latency    "
            f"n={int(s['count'])} p50={s['p50'] * 1e3:.3f}ms "
            f"p95={s['p95'] * 1e3:.3f}ms p99={s['p99'] * 1e3:.3f}ms "
            f"max={s['max'] * 1e3:.3f}ms"
        )
    if summary.service:
        s = summary.service
        lines.append(
            "service           "
            f"admitted={int(s['admitted'])} "
            f"rejected={int(s['rejected'])} "
            f"max_queued={int(s['max_queued'])}"
        )
        lines.append(
            "topology churn    "
            f"downs={int(s['link_downs'])} ups={int(s['link_ups'])} "
            f"reroutes={int(s['flows_rerouted'])} "
            f"degraded={s['degraded_seconds']:.3f}s"
        )
    if summary.job_completion:
        lines.append("job completion times:")
        for job in sorted(summary.job_completion):
            lines.append(f"  {job:20s} {summary.job_completion[job]:10.3f}s")
    if summary.port_mean_utilization:
        lines.append("per-port mean utilization:")
        for link in sorted(summary.port_mean_utilization):
            lines.append(
                f"  {link:28s} {summary.port_mean_utilization[link]:6.1%}"
            )
    if summary.final_ports:
        lines.append("final port state:")
        for link in sorted(summary.final_ports):
            state = summary.final_ports[link]
            if state.get("state") == "programmed":
                detail = (
                    f"programmed apps={state.get('apps', '?')} "
                    f"queues={state.get('queues', '?')} "
                    f"gen={state.get('generation', '?')}"
                )
            else:
                detail = f"reset gen={state.get('generation', '?')}"
            lines.append(f"  {link:28s} {detail}")
    if summary.counts:
        lines.append("event counts:")
        for etype in sorted(summary.counts):
            lines.append(f"  {etype:20s} {summary.counts[etype]}")
    return "\n".join(lines)
