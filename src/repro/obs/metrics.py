"""Metrics registry: counters, gauges, and streaming histograms.

The observability layer (:mod:`repro.obs`) separates *events* (discrete,
timestamped records published on the :class:`~repro.obs.events.EventBus`)
from *metrics* (aggregates that are cheap to update on hot paths and are
snapshotted once at the end of a run).  Four metric kinds cover the
instrumentation in this repository:

* :class:`Counter` -- monotonically increasing totals (reallocations,
  solver invocations, flows started);
* :class:`Gauge` -- last-write-wins values (engine horizon, events
  processed);
* :class:`TimeWeightedGauge` -- a gauge whose mean is weighted by how
  long each value was held on the *simulated* clock, computed as the
  exact integral of the piecewise-constant series (per-port
  utilization);
* :class:`StreamingHistogram` -- p50/p95/p99 estimates over an unbounded
  stream without storing samples, via geometrically spaced buckets
  (solver latency, flow completion times).

All metrics live in a :class:`MetricsRegistry`, which hands out
get-or-create handles by name and serialises everything with
:meth:`MetricsRegistry.snapshot`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Last-write-wins value."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class TimeWeightedGauge:
    """A gauge whose mean weighs each value by how long it was held.

    ``set(value, time)`` records that the gauge held ``value`` from
    ``time`` until the next ``set``.  The series is piecewise constant,
    so :meth:`mean` is the exact integral divided by the observed span
    -- the same semantics as
    :meth:`repro.simnet.telemetry.UtilizationRecorder.mean_utilization`.

    >>> g = TimeWeightedGauge()
    >>> g.set(1.0, time=0.0)
    >>> g.set(0.0, time=1.0)
    >>> g.mean(until=4.0)
    0.25
    """

    __slots__ = ("_start", "_last_time", "_last_value", "_integral")

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._last_time = 0.0
        self._last_value = 0.0
        self._integral = 0.0

    def set(self, value: float, time: float) -> None:
        if self._start is None:
            self._start = float(time)
        else:
            if time < self._last_time:
                raise ValueError(
                    f"time-weighted gauge updates must be time-ordered: "
                    f"{time} < {self._last_time}"
                )
            self._integral += self._last_value * (time - self._last_time)
        self._last_time = float(time)
        self._last_value = float(value)

    @property
    def value(self) -> float:
        """The most recently set value."""
        return self._last_value

    def mean(self, until: Optional[float] = None) -> float:
        """Time-weighted mean over [first set, ``until``].

        ``until`` defaults to the last update; the final value is held
        constant up to ``until``.  Returns 0.0 before any update.
        """
        if self._start is None:
            return 0.0
        if until is None:
            until = self._last_time
        if until < self._last_time:
            raise ValueError(f"until={until} precedes last update")
        span = until - self._start
        if span <= 0.0:
            return self._last_value
        integral = self._integral + self._last_value * (until - self._last_time)
        return integral / span


class StreamingHistogram:
    """Percentiles over a stream without storing the samples.

    Values land in geometrically spaced buckets (ratio ``growth``
    between consecutive bucket bounds), so memory is O(log(max/min))
    and any quantile is recoverable to a relative error of about
    ``sqrt(growth) - 1`` (~2.5 % at the default growth of 1.05) -- the
    HDR-histogram idea, sized for latency-style distributions.

    Only non-negative values are accepted (the instrumented quantities
    are durations, rates, and counts).
    """

    __slots__ = ("_growth", "_log_growth", "_min_value", "_buckets",
                 "count", "total", "_min", "_max")

    def __init__(self, growth: float = 1.05, min_value: float = 1e-9) -> None:
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1: {growth}")
        if min_value <= 0.0:
            raise ValueError(f"min_value must be > 0: {min_value}")
        self._growth = growth
        self._log_growth = math.log(growth)
        self._min_value = min_value
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram values must be >= 0: {value}")
        self.count += 1
        self.total += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if value < self._min_value:
            index = 0
        else:
            index = 1 + int(math.log(value / self._min_value)
                            / self._log_growth)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-th percentile, q in [0, 100]."""
        if not self.count:
            raise ValueError("quantile of an empty histogram")
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100]: {q}")
        rank = max(1, math.ceil(q / 100.0 * self.count))
        cumulative = 0
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative >= rank:
                if index == 0:
                    estimate = 0.0
                else:
                    lo = self._min_value * self._growth ** (index - 1)
                    hi = lo * self._growth
                    estimate = math.sqrt(lo * hi)  # geometric midpoint
                # The recorded extremes are exact; clamp into them.
                return min(max(estimate, self._min), self._max)
        raise AssertionError("unreachable: rank exceeds count")

    def snapshot(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(50),
            "p95": self.quantile(95),
            "p99": self.quantile(99),
        }


class MetricsRegistry:
    """Named get-or-create store for all metric kinds.

    Names are free-form dotted strings (``"controller.solve_seconds"``).
    Requesting an existing name with a different kind raises
    ``ValueError`` -- a metric's type is part of its contract.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, kind, *args, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(*args, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def time_gauge(self, name: str) -> TimeWeightedGauge:
        return self._get_or_create(name, TimeWeightedGauge)

    def histogram(self, name: str, **kwargs) -> StreamingHistogram:
        return self._get_or_create(name, StreamingHistogram, **kwargs)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All metrics as a JSON-ready nested dict, keyed by kind."""
        out: Dict[str, Dict[str, object]] = {
            "counters": {}, "gauges": {}, "time_gauges": {}, "histograms": {},
        }
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, TimeWeightedGauge):
                out["time_gauges"][name] = {
                    "value": metric.value, "mean": metric.mean(),
                }
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.value
            elif isinstance(metric, StreamingHistogram):
                out["histograms"][name] = metric.snapshot()
        return out
