"""The ten named workloads of Table 1.

Each :class:`WorkloadTemplate` captures a HiBench workload as a plan of
stage groups plus scaling rules.  The free parameters (compute split,
shuffle volume, synchronisation volume, overlap) were calibrated so
that the *standalone slowdown curves* match the paper's measurements:

* Figure 1a -- slowdown at 75 % and 25 % bandwidth, e.g. LR 1.3x/3.4x,
  PR ~1.1x/1.4x, Sort ~1.0x/1.1x, average ~2.1x at 25 %;
* Figure 5 -- SQL stays flat down to ~25 % then degrades steeply
  (high compute/communication overlap), LR degrades smoothly;
* Figure 2 -- PR hides part of its communication under compute
  (non-zero ``overlap``), LR does not.

Scaling rules (how a template turns into an
:class:`~repro.workloads.model.ApplicationSpec` for a given dataset
scale ``s`` and instance count ``n``; the profiler reference point is
``s = 1``, ``n = 8``):

* scaled compute per stage: ``compute_scaled * s**compute_exp * 8/n``
  -- data-dependent work splits across instances;
* fixed compute per stage: ``compute_fixed`` -- framework/startup
  overhead, independent of ``s`` and ``n`` (workloads with a large
  fixed share, like NI, lose model accuracy fastest when the runtime
  dataset differs from the profiled one: Figure 6b);
* shuffle: ``shuffle_time * s * 8/n`` seconds at full line rate --
  dataset-proportional, split across instances;
* synchronisation (model exchange / barrier traffic):
  ``sync_time * (n/8)**sync_growth`` -- grows with the deployment,
  which is what erodes model accuracy at 3-4x node counts
  (Figure 6c; NW has the largest ``sync_growth``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.units import GBPS_56
from repro.workloads.model import ApplicationSpec, Stage

#: Node count used by the offline profiler (Section 8.1: 8-server pod).
PROFILER_NODES = 8


@dataclass(frozen=True)
class StagePlan:
    """A group of ``count`` identical stages within a template.

    Time-valued fields are *seconds at full 56 Gb/s line rate* for the
    reference configuration (dataset 1x, 8 instances); communication
    fields are converted to bytes at instantiation.

    ``rate_cap_fraction`` limits each instance's aggregate sending
    rate to that fraction of line rate (application-limited traffic);
    ``None`` means network-limited.
    """

    count: int
    compute_fixed: float
    compute_scaled: float
    shuffle_time: float
    sync_time: float
    overlap: float = 0.0
    rate_cap_fraction: float | None = None
    aux_fraction: float = 0.0


@dataclass(frozen=True)
class WorkloadTemplate:
    """A Table-1 workload with its scaling behaviour.

    ``compute_exp``/``comm_exp`` are the dataset-scale exponents for
    compute work and shuffle volume.  They are sublinear by default:
    real framework jobs have large constants (task launch, JVM, I/O
    setup), so a 10x dataset does not run 10x longer -- and the paper's
    §8.2 experiments, where 0.1x and 10x jobs co-run, only make sense
    if job durations stay within the same order of magnitude.
    """

    name: str
    category: str
    dataset: str
    plan: Tuple[StagePlan, ...]
    sync_growth: float = 0.5
    compute_exp: float = 0.7
    comm_exp: float = 0.6
    fanout: int = 3

    def instantiate(
        self,
        dataset_scale: float = 1.0,
        n_instances: int = PROFILER_NODES,
        link_capacity: float = GBPS_56,
    ) -> ApplicationSpec:
        """Build the concrete application for a deployment shape."""
        if dataset_scale <= 0:
            raise ValueError(f"dataset_scale must be > 0: {dataset_scale}")
        if n_instances < 1:
            raise ValueError(f"n_instances must be >= 1: {n_instances}")
        work = (dataset_scale ** self.compute_exp) * PROFILER_NODES / n_instances
        shuffle_factor = (
            dataset_scale ** self.comm_exp
        ) * PROFILER_NODES / n_instances
        sync_factor = (n_instances / PROFILER_NODES) ** self.sync_growth
        stages: List[Stage] = []
        for group in self.plan:
            compute = group.compute_fixed + group.compute_scaled * work
            comm_seconds = (
                group.shuffle_time * shuffle_factor
                + group.sync_time * sync_factor
            )
            rate_cap = (
                group.rate_cap_fraction * link_capacity
                if group.rate_cap_fraction is not None
                else None
            )
            stage = Stage(
                compute_time=compute,
                comm_bytes=comm_seconds * link_capacity,
                overlap=group.overlap,
                rate_cap=rate_cap,
                aux_rate=group.aux_fraction * link_capacity,
            )
            stages.extend([stage] * group.count)
        return ApplicationSpec(
            name=self.name,
            stages=tuple(stages),
            n_instances=n_instances,
            fanout=self.fanout,
        )


def _t(name: str, category: str, dataset: str, plan: List[StagePlan],
       **kwargs: float) -> WorkloadTemplate:
    return WorkloadTemplate(
        name=name, category=category, dataset=dataset, plan=tuple(plan),
        **kwargs,  # type: ignore[arg-type]
    )


#: The ten workloads of Table 1, ordered as in the paper.
#:
#: ``aux_fraction`` is the non-network drain path (fraction of line
#: rate): bandwidth-hungry ML workloads have almost none (their
#: shuffles are pure network), while Sort/WC/SQL/PR serve a large
#: share of their transfers from co-located partitions and spill
#: files, which is what makes their slowdown saturate (Figure 1a shows
#: them at only 1.1-1.4x even at 25 % bandwidth).
CATALOG: Dict[str, WorkloadTemplate] = {
    tpl.name: tpl
    for tpl in [
        # -- Machine Learning ------------------------------------------------
        # LR: bandwidth-hungry SGD with visible compute phases between
        # gradient exchanges (Figure 2a); 1.25x @75 %, ~3x @25 %.
        _t(
            "LR", "ML", "10k samples",
            [StagePlan(5, 0.4, 3.6, 15.5, 0.5, aux_fraction=0.05)],
            sync_growth=0.3,
        ),
        # RF: the most bandwidth-sensitive workload in Figure 8a (3.9x).
        _t(
            "RF", "ML", "20k samples",
            [StagePlan(4, 0.45, 4.05, 19.4, 0.6, aux_fraction=0.05)],
            sync_growth=0.3,
        ),
        # GBT: many short boosting rounds, moderate sensitivity.
        _t(
            "GBT", "ML", "1k samples",
            [StagePlan(6, 0.3, 2.7, 4.8, 1.2, aux_fraction=0.04)],
            sync_growth=0.8, compute_exp=0.85,
        ),
        # SVM: sensitivity dominated by dataset-proportional shuffle, so
        # its model is the most robust to dataset-size changes (Fig 6b).
        _t(
            "SVM", "ML", "150k samples",
            [StagePlan(6, 0.1, 4.4, 6.3, 0.2, aux_fraction=0.05)],
            sync_growth=0.5,
        ),
        # -- Graph ------------------------------------------------------------
        # NW: neighbourhood expansion; sync traffic grows superlinearly
        # with deployment size (worst model accuracy at 3x nodes, Fig 6c).
        _t(
            "NW", "Graph", "# of graph edges: 4250M",
            [StagePlan(6, 0.55, 4.95, 1.7, 2.8, aux_fraction=0.06)],
            sync_growth=1.1, compute_exp=0.95,
        ),
        # -- Websearch ----------------------------------------------------------
        # NI: heavy fixed indexing overhead per stage, so runtime dataset
        # scale shifts its compute/communication balance the most (Fig 6b).
        _t(
            "NI", "Websearch", "100G samples",
            [StagePlan(4, 3.25, 3.25, 5.5, 0.5, aux_fraction=0.06)],
            sync_growth=0.3,
        ),
        # PR: compute-dominated with a large but mostly-local and
        # partially-hidden exchange (the Figure 2b pattern: long
        # network duty cycle, high CPU, slowdown only ~1.35x @25 %).
        _t(
            "PR", "Websearch", "50M pages",
            [StagePlan(5, 1.0, 9.0, 7.7, 0.3, overlap=0.8,
                       aux_fraction=0.45)],
            sync_growth=0.5,
        ),
        # -- SQL -----------------------------------------------------------------
        # SQL (Join): scan stages hide their exchange entirely behind
        # compute (overlap 1.0) and serve most of it locally, so
        # slowdown stays low down to 25 % and then degrades steeply --
        # the non-linear curve of Figure 5.
        _t(
            "SQL", "SQL", "Two Tables, # of records: 5G & 120M",
            [
                StagePlan(4, 0.5, 4.5, 4.5, 0.0, overlap=1.0,
                          aux_fraction=0.65),
                StagePlan(1, 0.1, 0.9, 1.8, 0.2, aux_fraction=0.02),
            ],
            sync_growth=0.9,
        ),
        # -- Micro ------------------------------------------------------------------
        # WC: the 300 GB input makes WC one of the biggest traffic
        # sources on the wire, but combiner output trickles out under
        # the long map phase and is served largely from local spill
        # files -- slowdown only ~1.1x @25 %.
        _t(
            "WC", "Micro", "300GB",
            [StagePlan(3, 1.5, 13.5, 10.95, 0.05, overlap=0.93,
                       aux_fraction=0.45)],
            sync_growth=0.3,
        ),
        # Sort: the largest shuffle volume in the suite (280 GB), yet
        # disk-bound: spill traffic streams at I/O speed under the
        # sort phase (1.1x @25 %), and its model stays accurate at 4x
        # nodes (Fig 6c).
        _t(
            "Sort", "Micro", "280GB",
            [StagePlan(2, 2.0, 18.0, 15.95, 0.05, overlap=0.95,
                       aux_fraction=0.5)],
            sync_growth=0.2,
        ),
    ]
}


def workload_names() -> List[str]:
    """Catalog order as it appears in the paper's figures."""
    return list(CATALOG.keys())


def get_template(name: str) -> WorkloadTemplate:
    try:
        return CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(CATALOG)}"
        ) from None
