"""Staged bulk-synchronous application model.

An application is a sequence of :class:`Stage` objects executed in
lockstep by ``n_instances`` workers (the BSP pattern of Spark/Flink,
Section 8.1: "Each workload emulates the computation and communication
stages, which is a common pattern in parallel frameworks").

Within a stage every instance

1. computes for ``compute_time`` seconds,
2. shuffles ``comm_bytes`` of egress traffic, split equally across
   ``fanout`` ring-neighbour peers,
3. optionally overlaps communication with the tail of its compute
   phase: with overlap ``o``, flows are released after
   ``(1 - o) * compute_time`` seconds.

A barrier separates stages: the next stage starts only when all
instances have finished both computing and communicating.

Under an isolated run on a non-blocking switch with NICs throttled to
a fraction ``b`` of line rate ``B``, the stage occupies

    max(compute_time, (1 - o) * compute_time + comm_bytes / (b * B))

seconds, which :meth:`ApplicationSpec.analytic_completion_time`
evaluates in closed form; the test suite checks the event-driven
simulation against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class Stage:
    """One compute+shuffle stage.

    Attributes:
        compute_time: seconds of CPU work per instance.
        comm_bytes: egress bytes each instance sends during the
            shuffle (0 for compute-only stages).
        overlap: fraction of the compute phase during which the
            shuffle may proceed concurrently, in [0, 1].  0 = strictly
            sequential (compute, then communicate); 1 = fully
            overlapped.
        rate_cap: application-limited aggregate sending rate per
            instance in bytes/s (``None`` = network-limited).  Models
            workloads that emit traffic at the pace computation
            produces it: long network duty cycles at moderate rates.
        aux_rate: aggregate non-network drain rate per instance in
            bytes/s.  Models the progress paths a NIC throttle cannot
            touch (locally served partitions, spill files, compressed
            fallbacks), which make real slowdown curves *saturate* at
            low bandwidth -- the property that lets Saba starve
            insensitive applications cheaply.
    """

    compute_time: float
    comm_bytes: float = 0.0
    overlap: float = 0.0
    rate_cap: Optional[float] = None
    aux_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.compute_time < 0:
            raise ValueError(f"compute_time must be >= 0: {self.compute_time}")
        if self.comm_bytes < 0:
            raise ValueError(f"comm_bytes must be >= 0: {self.comm_bytes}")
        if not 0.0 <= self.overlap <= 1.0:
            raise ValueError(f"overlap must be in [0, 1]: {self.overlap}")
        if self.rate_cap is not None and self.rate_cap <= 0:
            raise ValueError(f"rate_cap must be > 0: {self.rate_cap}")
        if self.aux_rate < 0:
            raise ValueError(f"aux_rate must be >= 0: {self.aux_rate}")

    def flow_release_offset(self) -> float:
        """Delay from stage start until shuffle flows are injected."""
        return (1.0 - self.overlap) * self.compute_time

    def duration_at(self, bandwidth: float) -> float:
        """Isolated stage duration when each instance's shuffle drains
        at ``bandwidth`` bytes/s (aggregate over its fanout flows)."""
        if self.comm_bytes == 0:
            return self.compute_time
        network = bandwidth if self.rate_cap is None else min(
            bandwidth, self.rate_cap
        )
        effective = max(0.0, network) + self.aux_rate
        if effective <= 0:
            return float("inf")
        comm_time = self.comm_bytes / effective
        return max(self.compute_time, self.flow_release_offset() + comm_time)


@dataclass(frozen=True)
class ApplicationSpec:
    """A fully instantiated application: stages plus deployment shape.

    Attributes:
        name: workload name (e.g. ``"LR"``); instances of the same
            workload in different jobs get distinct job ids at the
            cluster level, not here.
        stages: the stage sequence.
        n_instances: number of workers executing the stage sequence.
        fanout: shuffle peers per instance per stage (capped at
            ``n_instances - 1`` by the runtime).
        barrier: whether a global barrier separates stages.  Spark- and
            Flink-style jobs (the Table-1 catalog) are bulk-synchronous:
            stage k+1 starts only after *every* instance finishes stage
            k.  The paper's synthetic simulator workloads are per-server
            compute/communicate loops ("each server runs one workload"),
            so their instances progress independently and only join at
            job completion.
    """

    name: str
    stages: Tuple[Stage, ...]
    n_instances: int = 8
    fanout: int = 3
    barrier: bool = True

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("an application needs at least one stage")
        if self.n_instances < 1:
            raise ValueError(f"n_instances must be >= 1: {self.n_instances}")
        if self.fanout < 1:
            raise ValueError(f"fanout must be >= 1: {self.fanout}")

    @property
    def total_compute(self) -> float:
        return sum(s.compute_time for s in self.stages)

    @property
    def total_comm_bytes(self) -> float:
        """Egress bytes per instance over the whole run."""
        return sum(s.comm_bytes for s in self.stages)

    def effective_fanout(self) -> int:
        return min(self.fanout, max(1, self.n_instances - 1))

    def peers_of(self, instance: int) -> List[int]:
        """Ring-neighbour shuffle peers of ``instance``.

        Deterministic and uniform: instance ``i`` sends to
        ``i+1 .. i+fanout`` (mod n), so every instance also *receives*
        from exactly ``fanout`` peers, keeping ingress and egress
        volumes balanced.
        """
        n = self.n_instances
        f = self.effective_fanout()
        return [(instance + 1 + j) % n for j in range(f)] if n > 1 else []

    def analytic_completion_time(
        self, bandwidth_fraction: float, link_capacity: float
    ) -> float:
        """Closed-form completion time for an *isolated* run.

        Assumes a non-blocking fabric where each instance's NIC is the
        only bottleneck, throttled to ``bandwidth_fraction`` of
        ``link_capacity``.  Matches the event-driven simulation on a
        single-switch topology (verified by tests).
        """
        if not 0.0 < bandwidth_fraction <= 1.0:
            raise ValueError(
                f"bandwidth_fraction must be in (0, 1]: {bandwidth_fraction}"
            )
        bandwidth = bandwidth_fraction * link_capacity
        return sum(stage.duration_at(bandwidth) for stage in self.stages)

    def slowdown_at(self, bandwidth_fraction: float, link_capacity: float) -> float:
        """Isolated slowdown vs. unthrottled execution (the quantity the
        offline profiler measures)."""
        full = self.analytic_completion_time(1.0, link_capacity)
        throttled = self.analytic_completion_time(bandwidth_fraction, link_capacity)
        return throttled / full

    def scaled(self, name_suffix: str = "", compute_scale: float = 1.0,
               comm_scale: float = 1.0) -> "ApplicationSpec":
        """A copy with uniformly scaled compute/communication."""
        stages = tuple(
            Stage(
                compute_time=s.compute_time * compute_scale,
                comm_bytes=s.comm_bytes * comm_scale,
                overlap=s.overlap,
                rate_cap=s.rate_cap,
                aux_rate=s.aux_rate,
            )
            for s in self.stages
        )
        return ApplicationSpec(
            name=self.name + name_suffix,
            stages=stages,
            n_instances=self.n_instances,
            fanout=self.fanout,
            barrier=self.barrier,
        )
