"""The twenty synthetic simulator workloads (Section 8.1).

"We generate 20 distinct synthetic workloads in the simulator.  Each
workload emulates the computation and communication stages [...] The
amount of computation, communication, and the number of stages varies
across the workloads to emulate varying degrees of bandwidth
sensitivity."

The generator is deterministic: workload ``SYNi`` gets a
communication/computation ratio log-spaced over [0.05, 4.0] (covering
Sort-like insensitivity up to LR-like hunger), an overlap drawn from a
small cycle, and a stage count and per-stage compute time that vary
with the index.  Determinism keeps simulation benchmarks reproducible
without shipping data files.
"""

from __future__ import annotations

from typing import List

from repro.units import GBPS_56
from repro.workloads.model import ApplicationSpec, Stage

#: Overlap cycle: most workloads expose their communication, some hide
#: part of it, one hides all of it (the SQL-like pattern).
_OVERLAP_CYCLE = (0.0, 0.0, 0.25, 0.5, 1.0)

_RHO_MIN = 0.05
_RHO_MAX = 4.0


def synthetic_workloads(
    count: int = 20,
    n_instances: int = 8,
    link_capacity: float = GBPS_56,
    fanout: int = 3,
) -> List[ApplicationSpec]:
    """Build the synthetic workload set.

    Args:
        count: number of workloads (paper: 20).
        n_instances: workers per job (profiling uses a rack of 18 in
            the paper; callers pick the deployment shape).
        link_capacity: line rate used to convert communication seconds
            into bytes.
        fanout: shuffle peers per instance.

    Returns:
        Application specs named ``SYN00 .. SYN<count-1>``, ordered by
        increasing bandwidth sensitivity.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1: {count}")
    specs: List[ApplicationSpec] = []
    for i in range(count):
        frac = i / (count - 1) if count > 1 else 0.0
        rho = _RHO_MIN * (_RHO_MAX / _RHO_MIN) ** frac
        overlap = _OVERLAP_CYCLE[i % len(_OVERLAP_CYCLE)]
        n_stages = 2 + (i * 3) % 7
        compute = 1.5 + (i % 5)
        comm_seconds = rho * compute
        # Like the Table-1 catalog, insensitivity comes from a
        # non-network progress path (locally served partitions, spill
        # files): the least bandwidth-sensitive workloads drain a large
        # share of their transfers off-network, so their slowdown
        # saturates instead of cliff-diving once overlap is exhausted.
        aux_fraction = 0.45 * (1.0 - frac)
        stage = Stage(
            compute_time=compute,
            comm_bytes=comm_seconds * link_capacity,
            overlap=overlap,
            aux_rate=aux_fraction * link_capacity,
        )
        specs.append(
            ApplicationSpec(
                name=f"SYN{i:02d}",
                stages=(stage,) * n_stages,
                n_instances=n_instances,
                fanout=fanout,
                # Per-server loops, not BSP: "each server runs one
                # workload" -- instances progress independently.
                barrier=False,
            )
        )
    return specs
