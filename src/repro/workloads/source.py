"""One protocol for every workload catalogue.

The harnesses historically mixed three ad-hoc ways of obtaining
application specs: the Table-1 ``CATALOG`` of templates (instantiated
with ``dataset_scale``/``n_instances`` kwargs), the
:func:`~repro.workloads.synthetic.synthetic_workloads` list builder
(``count``/``n_instances`` kwargs), and hand-rolled samplers.  A
:class:`WorkloadSource` unifies them: every source exposes the same
two calls -- ``names()`` for the available workloads and ``build()``
for a concrete :class:`~repro.workloads.model.ApplicationSpec` at a
deployment shape -- so harnesses, sweeps, and the storm generator can
take "a source" instead of special-casing where specs come from.

Deployment-shape parameters are uniform across sources; a source that
has no use for one (the synthetic set ignores ``dataset_scale``)
accepts and ignores it rather than drifting its signature.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, runtime_checkable

from repro.units import GBPS_56
from repro.workloads.catalog import CATALOG, PROFILER_NODES, get_template
from repro.workloads.model import ApplicationSpec
from repro.workloads.synthetic import synthetic_workloads


@runtime_checkable
class WorkloadSource(Protocol):
    """Anything that can name workloads and build their specs."""

    def names(self) -> Sequence[str]:
        """Available workload names, in the source's canonical order."""
        ...

    def build(
        self,
        name: str,
        n_instances: Optional[int] = None,
        dataset_scale: float = 1.0,
        link_capacity: float = GBPS_56,
    ) -> ApplicationSpec:
        """A concrete application spec for one workload.

        ``n_instances`` of ``None`` means the source's native
        deployment size.  Raises ``KeyError`` for unknown names.
        """
        ...


class CatalogSource:
    """The ten Table-1 workloads as a :class:`WorkloadSource`."""

    def names(self) -> Sequence[str]:
        return list(CATALOG)

    def build(
        self,
        name: str,
        n_instances: Optional[int] = None,
        dataset_scale: float = 1.0,
        link_capacity: float = GBPS_56,
    ) -> ApplicationSpec:
        return get_template(name).instantiate(
            dataset_scale=dataset_scale,
            n_instances=(
                n_instances if n_instances is not None else PROFILER_NODES
            ),
            link_capacity=link_capacity,
        )


class SyntheticSource:
    """The Section-8.1 synthetic workload set as a
    :class:`WorkloadSource`.

    ``dataset_scale`` is accepted for signature uniformity and
    ignored: the synthetic generator fixes its stage mix per index.
    """

    def __init__(self, count: int = 20, fanout: int = 3) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1: {count}")
        self.count = count
        self.fanout = fanout

    def names(self) -> Sequence[str]:
        return [f"SYN{i:02d}" for i in range(self.count)]

    def build(
        self,
        name: str,
        n_instances: Optional[int] = None,
        dataset_scale: float = 1.0,
        link_capacity: float = GBPS_56,
    ) -> ApplicationSpec:
        index = {n: i for i, n in enumerate(self.names())}.get(name)
        if index is None:
            raise KeyError(
                f"unknown synthetic workload {name!r}; "
                f"available: SYN00..SYN{self.count - 1:02d}"
            )
        specs = synthetic_workloads(
            count=self.count,
            n_instances=n_instances if n_instances is not None else 8,
            link_capacity=link_capacity,
            fanout=self.fanout,
        )
        return specs[index]


def build_all(
    source: WorkloadSource,
    n_instances: Optional[int] = None,
    dataset_scale: float = 1.0,
    link_capacity: float = GBPS_56,
) -> List[ApplicationSpec]:
    """Every workload of a source, in canonical order."""
    return [
        source.build(
            name,
            n_instances=n_instances,
            dataset_scale=dataset_scale,
            link_capacity=link_capacity,
        )
        for name in source.names()
    ]
