"""Application workload models.

The paper's workloads are Spark/Flink jobs from Intel HiBench
(Table 1).  Saba never looks inside an application -- it only observes
completion time as a function of available bandwidth -- so any workload
with the same bandwidth-sensitivity curve exercises Saba identically.
We therefore model each workload as a bulk-synchronous sequence of
stages, each combining a compute phase, a shuffle of known volume, and
an optional compute/communication overlap window (the mechanism the
paper identifies in Section 2.3 as the source of PR's insensitivity).

``catalog`` provides the ten named workloads with stage mixes tuned so
their standalone slowdown curves match Figure 1a/Figure 5;
``synthetic`` provides the twenty synthetic simulator workloads of
Section 8.1.
"""

from repro.workloads.model import Stage, ApplicationSpec
from repro.workloads.catalog import (
    WorkloadTemplate,
    CATALOG,
    workload_names,
    get_template,
)
from repro.workloads.synthetic import synthetic_workloads
from repro.workloads.source import (
    WorkloadSource,
    CatalogSource,
    SyntheticSource,
    build_all,
)

__all__ = [
    "Stage",
    "ApplicationSpec",
    "WorkloadTemplate",
    "CATALOG",
    "workload_names",
    "get_template",
    "synthetic_workloads",
    "WorkloadSource",
    "CatalogSource",
    "SyntheticSource",
    "build_all",
]
