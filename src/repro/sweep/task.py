"""The sweep task model: named, picklable, seed-carrying work units.

A *sweep* is a grid of independent experiment points -- the profiler's
(workload x bandwidth-fraction) matrix, Figure 8's 500 cluster setups,
Figure 10's per-policy simulator runs.  Each point becomes a
:class:`Task`: a module-level function plus keyword parameters, both
picklable so the task can cross a process boundary unchanged.  A
:class:`SweepSpec` bundles the ordered task list with a *reduction*
that assembles per-task values into the experiment's result (a
sensitivity table, a ``Fig8Result``, ...).

Two properties make parallel and serial execution bit-identical:

* tasks are pure functions of their parameters (plus an explicit,
  deterministically derived seed -- never ambient RNG state), and
* the reduction always sees results keyed in *spec order*, regardless
  of completion order.

:func:`config_hash` canonicalises a task's parameters (dataclasses,
mappings, tuples, floats via ``repr``) into a stable SHA-256 digest;
the result cache keys on it, so two tasks with equal configuration
share a cache entry even across sweeps and processes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import SweepError


def _canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-serialisable canonical form.

    Dataclasses become ``{"__dataclass__": qualname, fields...}``,
    mappings sort their keys, tuples/lists/sets become lists (sets are
    sorted by their canonical JSON form), and floats go through
    ``repr`` so equal bit patterns hash equally.  Objects with a
    ``to_json`` method (e.g. :class:`~repro.core.table.
    SensitivityTable`) canonicalise through it; anything else falls
    back to ``repr``, rejected if it contains a memory address --
    an unstable repr would silently change the cache key every run.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out: Dict[str, Any] = {
            "__dataclass__": type(value).__qualname__,
        }
        for f in dataclasses.fields(value):
            out[f.name] = _canonical(getattr(value, f.name))
        return out
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items(),
                                                         key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(
            (_canonical(v) for v in value),
            key=lambda v: json.dumps(v, sort_keys=True),
        )
    if isinstance(value, float):
        return {"__float__": repr(value)}
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    to_json = getattr(value, "to_json", None)
    if callable(to_json):
        return {"__to_json__": type(value).__qualname__,
                "json": to_json()}
    text = repr(value)
    if " at 0x" in text:
        raise SweepError(
            f"cannot canonicalise a {type(value).__qualname__} for "
            "config hashing: its repr contains a memory address; give "
            "it a stable repr or a to_json() method"
        )
    return {"__repr__": text}


def config_hash(params: Mapping[str, Any]) -> str:
    """Stable SHA-256 hex digest of a task's parameters."""
    text = json.dumps(_canonical(dict(params)), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def derive_seed(base_seed: int, name: str) -> int:
    """Deterministic per-task seed from a sweep seed and task name.

    Uses SHA-256 (not :func:`hash`, which is salted per interpreter),
    so the same (base_seed, name) pair seeds identically in every
    worker process and on every run.
    """
    digest = hashlib.sha256(f"{base_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class Task:
    """One experiment point.

    ``fn`` must be a *module-level* function (the cross-platform
    pickling requirement: ``spawn``-based pools import the module and
    look the function up by qualified name) and ``params`` its keyword
    arguments.  ``seed``, when set, is passed as an extra ``seed=``
    keyword -- tasks that use randomness must take it explicitly
    rather than touching global RNG state.
    """

    name: str
    fn: Callable[..., Any]
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SweepError("a task needs a non-empty name")
        fn = self.fn
        qualname = getattr(fn, "__qualname__", "")
        if "<locals>" in qualname or "<lambda>" in qualname:
            raise SweepError(
                f"task {self.name!r}: fn {qualname!r} is not module-level; "
                "nested functions and lambdas cannot cross process "
                "boundaries"
            )
        object.__setattr__(self, "params", dict(self.params))

    def call_kwargs(self) -> Dict[str, Any]:
        kwargs = dict(self.params)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return kwargs

    def config_key(self) -> str:
        """Hash of everything that determines this task's value."""
        return config_hash({
            "fn": f"{self.fn.__module__}.{self.fn.__qualname__}",
            "params": dict(self.params),
            "seed": self.seed,
        })

    def run(self) -> Any:
        """Execute in the current process (the serial path)."""
        return self.fn(**self.call_kwargs())


Reduction = Callable[["Dict[str, Any]"], Any]


@dataclass(frozen=True)
class SweepSpec:
    """An ordered grid of tasks plus its reduction.

    ``reduce`` runs in the parent process over ``{task name: value}``
    in task order; when omitted the sweep's value is that mapping
    itself.  ``config`` is free-form provenance recorded in the run
    manifest (grid shape, method, seeds).
    """

    name: str
    tasks: Tuple[Task, ...]
    reduce: Optional[Reduction] = None
    config: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise SweepError("a sweep needs a non-empty name")
        if not self.tasks:
            raise SweepError(f"sweep {self.name!r} has no tasks")
        object.__setattr__(self, "tasks", tuple(self.tasks))
        object.__setattr__(self, "config", dict(self.config))
        seen = set()
        for task in self.tasks:
            if task.name in seen:
                raise SweepError(
                    f"sweep {self.name!r}: duplicate task name {task.name!r}"
                )
            seen.add(task.name)

    def __len__(self) -> int:
        return len(self.tasks)

    def task_names(self) -> Sequence[str]:
        return [t.name for t in self.tasks]
