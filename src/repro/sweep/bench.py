"""Serial-vs-parallel wall-time benchmark (``python -m repro sweep bench``).

Runs the same profiling sweep twice -- ``jobs=1`` in-process, then
``jobs=N`` over the process pool -- with caching disabled in both
runs, and reports the speedup plus a bit-identity check of the two
fitted tables.  The grid defaults to chunky points (the full catalog
simulated at 32 nodes) so per-task work dominates process-pool
overhead; CI runs a reduced grid and uploads the JSON artifact.

The committed ``BENCH_sweep.json`` at the repo root is a snapshot of
this output; regenerate it with ``python -m repro sweep bench --out
BENCH_sweep.json``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict, Optional, Sequence, Union

from repro.core.profiler import PROFILE_FRACTIONS, OfflineProfiler
from repro.obs.export import code_version
from repro.sweep.runner import SweepRunner, resolve_jobs
from repro.workloads.catalog import CATALOG

#: Bench grid default: profile at 32 nodes with the event-driven
#: simulator.  At the reference 8-node pod a point costs ~3 ms and
#: pool overhead eats the win; at 32 nodes each point is >10 ms of
#: real simulation and the fan-out pays off on multi-core runners.
BENCH_NODES = 32


def run_bench(
    workloads: Optional[Sequence[str]] = None,
    fractions: Optional[Sequence[float]] = None,
    n_nodes: int = BENCH_NODES,
    jobs: Union[int, str] = "auto",
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Time the profiling sweep serially and in parallel.

    Returns the ``BENCH_sweep.json`` payload.  Caching is off in both
    runs so the comparison measures execution, not lookup; the two
    tables are compared through their canonical JSON to assert
    bit-identity.
    """
    names = list(workloads) if workloads is not None else list(CATALOG)
    grid = (tuple(fractions) if fractions is not None
            else PROFILE_FRACTIONS)
    if 1.0 not in grid:  # the profiler adds the unthrottled baseline
        grid = grid + (1.0,)
    profiler = OfflineProfiler(
        fractions=grid,
        # A degree-k fit needs k+1 samples; cap k so heavily reduced
        # grids (CI) still fit.
        degree=min(3, len(set(grid)) - 1),
        n_nodes=n_nodes,
        method="simulate",
    )
    spec = profiler.sweep_spec([CATALOG[n] for n in names])
    n_jobs = resolve_jobs(jobs)

    def narrate(message: str) -> None:
        if progress is not None:
            progress(message)

    narrate(f"bench: {len(spec)} tasks "
            f"({len(names)} workloads x {len(profiler.fractions)} "
            f"fractions at {n_nodes} nodes)")

    serial = SweepRunner(jobs=1, cache=None).run(spec)
    narrate(f"bench: serial done in {serial.wall_seconds:.2f}s")
    parallel = SweepRunner(jobs=n_jobs, cache=None).run(spec)
    narrate(f"bench: jobs={n_jobs} done in {parallel.wall_seconds:.2f}s")

    identical = (
        serial.value.to_json() == parallel.value.to_json()
    )
    speedup = (
        serial.wall_seconds / parallel.wall_seconds
        if parallel.wall_seconds > 0 else float("inf")
    )
    return {
        "bench": "sweep.profile-catalog",
        "created_unix": time.time(),
        "code_version": code_version(),
        "cpu_count": os.cpu_count(),
        "grid": {
            "workloads": names,
            "fractions": [float(f) for f in profiler.fractions],
            "n_nodes": n_nodes,
            "method": "simulate",
        },
        "n_tasks": len(spec),
        "jobs": n_jobs,
        "serial_seconds": round(serial.wall_seconds, 4),
        "parallel_seconds": round(parallel.wall_seconds, 4),
        "speedup": round(speedup, 3),
        "identical_results": identical,
    }


def write_bench(payload: Dict[str, Any], out: str) -> None:
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
