"""Parallel experiment orchestration with caching and fault tolerance.

The paper's evaluation is a pile of embarrassingly-parallel grids --
the profiler's (workload x bandwidth-fraction) matrix (Section 4.1),
Figure 8's 500 randomized cluster setups, Figure 10's per-policy
simulator runs.  This package turns each grid point into a named,
picklable, seed-carrying :class:`Task`, fans tasks out over worker
processes, caches their results content-addressed on disk, and
reduces them in deterministic order, so ``--jobs N`` and ``--jobs 1``
produce bit-identical tables.

* :mod:`repro.sweep.task` -- :class:`Task` / :class:`SweepSpec` model,
  canonical config hashing, deterministic seed derivation.
* :mod:`repro.sweep.cache` -- :class:`SweepCache`, keyed by (task
  name, config hash, code version from :mod:`repro._version`).
* :mod:`repro.sweep.runner` -- :class:`SweepRunner`: process-pool
  fan-out, serial fallback, per-task timeout, bounded retry with
  backoff, fail-fast vs collect error policies, :mod:`repro.obs`
  events/metrics/manifests, progress narration.
* :mod:`repro.sweep.registry` -- the named experiments behind
  ``python -m repro sweep <experiment>``.
* :mod:`repro.sweep.bench` -- serial-vs-parallel wall-time benchmark
  (``python -m repro sweep bench``), emitting ``BENCH_sweep.json``.

Typical use::

    from repro.sweep import SweepCache, SweepRunner
    from repro.core.profiler import OfflineProfiler
    from repro.workloads.catalog import CATALOG

    spec = OfflineProfiler().sweep_spec(CATALOG.values())
    runner = SweepRunner(jobs=4, cache=SweepCache(dir=".sweep-cache"))
    table = runner.run(spec).value        # a SensitivityTable
"""

from repro.errors import SweepError
from repro.sweep.cache import CACHE_DIR_ENV, SweepCache, cache_key, default_cache
from repro.sweep.runner import (
    ERROR_POLICIES,
    RetryPolicy,
    SweepResult,
    SweepRunner,
    TaskOutcome,
    default_runner,
    resolve_jobs,
)
from repro.sweep.task import SweepSpec, Task, config_hash, derive_seed

__all__ = [
    "CACHE_DIR_ENV",
    "ERROR_POLICIES",
    "RetryPolicy",
    "SweepCache",
    "SweepError",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "Task",
    "TaskOutcome",
    "cache_key",
    "config_hash",
    "default_cache",
    "default_runner",
    "derive_seed",
    "resolve_jobs",
]
