"""Content-addressed result cache for sweep tasks.

A task's cache key is the SHA-256 of ``(task name, config hash, code
version)`` -- the config hash already covers the task's function and
parameters (:meth:`repro.sweep.task.Task.config_key`), and the code
version comes from :mod:`repro._version`, so bumping the package
version invalidates every cached result without touching the cache
directory.

Two layers:

* an in-process dictionary, always on -- repeated sweeps inside one
  Python process (every figure harness calling
  ``build_catalog_table``) reuse results with zero I/O;
* an optional on-disk layer (``dir=...``): one pickle per key under
  two-level fan-out directories (``ab/cdef....pkl``), plus a small
  JSON sidecar describing what produced the entry so a cache
  directory stays inspectable with ``ls`` and ``jq``.

Disk writes are atomic (write to a temp name, then ``os.replace``),
so concurrent sweep processes sharing a cache directory can only ever
observe complete entries.  Corrupt or unreadable entries are treated
as misses and overwritten.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.sweep.task import Task

#: Environment variable that switches the process-default cache
#: (:func:`default_cache`) from memory-only to disk-backed.
CACHE_DIR_ENV = "REPRO_SWEEP_CACHE_DIR"

_MISS = object()


def _package_version() -> str:
    # Read at call time (not import time) so a monkeypatched or
    # upgraded version is picked up by subsequent key computations.
    from repro._version import __version__

    return __version__


def cache_key(task: Task, version: Optional[str] = None) -> str:
    """Content address of ``task``'s result under code ``version``."""
    version = version if version is not None else _package_version()
    text = f"{task.name}\x00{task.config_key()}\x00{version}"
    return hashlib.sha256(text.encode()).hexdigest()


class SweepCache:
    """Memory + optional disk cache for task results.

    >>> cache = SweepCache()          # memory-only
    >>> cache.hits, cache.misses
    (0, 0)
    """

    def __init__(self, dir: Optional[Union[str, Path]] = None) -> None:
        self.dir = Path(dir) if dir is not None else None
        self._memory: Dict[str, Any] = {}
        self.hits = 0
        self.misses = 0

    # -- key layout ---------------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        assert self.dir is not None
        return self.dir / key[:2] / f"{key}.pkl"

    def _meta_path(self, key: str) -> Path:
        assert self.dir is not None
        return self.dir / key[:2] / f"{key}.json"

    # -- lookup / store -----------------------------------------------------

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; ``value`` is ``None`` on a miss."""
        if key in self._memory:
            self.hits += 1
            return True, self._memory[key]
        if self.dir is not None:
            value = self._read_disk(key)
            if value is not _MISS:
                self._memory[key] = value
                self.hits += 1
                return True, value
        self.misses += 1
        return False, None

    def put(self, key: str, value: Any,
            meta: Optional[Mapping[str, Any]] = None) -> None:
        self._memory[key] = value
        if self.dir is None:
            return
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(path, pickle.dumps(value, protocol=4))
        if meta is not None:
            text = json.dumps(dict(meta), indent=2, sort_keys=True,
                              default=repr)
            self._atomic_write(self._meta_path(key), (text + "\n").encode())

    def _read_disk(self, key: str) -> Any:
        path = self._entry_path(key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return _MISS

    def _atomic_write(self, path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- maintenance --------------------------------------------------------

    def __len__(self) -> int:
        """Number of distinct entries (memory union disk)."""
        keys = set(self._memory)
        if self.dir is not None and self.dir.exists():
            for entry in self.dir.glob("*/*.pkl"):
                keys.add(entry.stem)
        return len(keys)

    def clear(self) -> None:
        """Drop every entry from both layers."""
        self._memory.clear()
        if self.dir is not None and self.dir.exists():
            for entry in self.dir.glob("*/*"):
                try:
                    entry.unlink()
                except OSError:
                    pass

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self)}


_DEFAULT_CACHE: Optional[SweepCache] = None
_DEFAULT_CACHE_DIR: Optional[str] = None


def default_cache() -> SweepCache:
    """The process-wide cache used when callers don't pass their own.

    Memory-only by default; set :data:`CACHE_DIR_ENV` to add a disk
    layer shared across processes.  The instance is rebuilt if the
    environment variable changes between calls (tests rely on this).
    """
    global _DEFAULT_CACHE, _DEFAULT_CACHE_DIR
    dir_ = os.environ.get(CACHE_DIR_ENV) or None
    if _DEFAULT_CACHE is None or dir_ != _DEFAULT_CACHE_DIR:
        _DEFAULT_CACHE = SweepCache(dir=dir_)
        _DEFAULT_CACHE_DIR = dir_
    return _DEFAULT_CACHE
