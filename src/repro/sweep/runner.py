"""Fault-tolerant parallel execution of sweep specs.

:class:`SweepRunner` drives a :class:`~repro.sweep.task.SweepSpec`
through four stages:

1. **cache resolution** -- every task's content address
   (:func:`repro.sweep.cache.cache_key`) is probed first, so a warm
   re-run computes nothing;
2. **execution** -- remaining tasks fan out over a
   ``concurrent.futures.ProcessPoolExecutor`` (``jobs >= 2``) or run
   in-process (``jobs == 1``, the debuggable serial path: no
   subprocesses, breakpoints and coverage work);
3. **fault handling** -- per-task wall-clock timeout (parallel mode
   only: a timeout needs process isolation to be safe), bounded retry
   with exponential backoff, and an error policy: ``"fail-fast"``
   aborts the sweep on the first exhausted task, ``"collect"`` records
   the failure and keeps the other points alive;
4. **ordered reduction** -- results are assembled in *spec order*
   regardless of completion order and handed to ``spec.reduce``, which
   is what makes ``--jobs 1`` and ``--jobs N`` bit-identical.

Everything is observable through :mod:`repro.obs`: ``sweep.*`` events
on the observer's bus, ``sweep.*`` counters/histograms in its metrics
registry, a :class:`~repro.obs.export.RunManifest` on every
:class:`SweepResult`, and a progress narrator callback for humans.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import SweepError
from repro.obs import NULL_OBSERVER, Observer, RunManifest
from repro.obs.events import (
    SWEEP_CACHE_HIT,
    SWEEP_FINISHED,
    SWEEP_STARTED,
    SWEEP_TASK_FAILED,
    SWEEP_TASK_FINISHED,
    SWEEP_TASK_RETRIED,
    SWEEP_TASK_STARTED,
)
from repro.sweep.cache import SweepCache, cache_key
from repro.sweep.task import SweepSpec, Task

ERROR_POLICIES = ("fail-fast", "collect")

#: How long the parallel scheduler sleeps between bookkeeping passes
#: when it has to poll (pending backoffs or armed timeouts).
_TICK_SECONDS = 0.02


def resolve_jobs(jobs: Union[int, str, None]) -> int:
    """Normalise a ``--jobs`` value; ``"auto"``/``None`` -> CPU count."""
    if jobs is None or jobs == "auto":
        return max(1, os.cpu_count() or 1)
    jobs = int(jobs)
    if jobs < 1:
        raise SweepError(f"jobs must be >= 1, got {jobs}")
    return jobs


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff.

    ``max_attempts`` counts executions, so ``1`` disables retries.
    The delay before attempt ``n+1`` is ``backoff * factor ** (n-1)``.
    """

    max_attempts: int = 3
    backoff: float = 0.1
    factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SweepError("max_attempts must be >= 1")
        if self.backoff < 0 or self.factor < 1.0:
            raise SweepError("backoff must be >= 0 and factor >= 1")

    def delay(self, failed_attempt: int) -> float:
        return self.backoff * self.factor ** (failed_attempt - 1)


@dataclass
class TaskOutcome:
    """What happened to one task."""

    name: str
    value: Any = None
    error: Optional[str] = None
    attempts: int = 0
    duration: float = 0.0
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepResult:
    """Everything a sweep produced.

    ``value`` is the reduction's output; it is ``None`` when any task
    failed under the ``collect`` policy (a partial grid rarely reduces
    meaningfully -- inspect ``outcomes`` instead).
    """

    spec_name: str
    value: Any
    outcomes: Dict[str, TaskOutcome]
    wall_seconds: float
    manifest: RunManifest
    cache_hits: int = 0
    computed: int = 0
    retries: int = 0

    @property
    def failures(self) -> List[TaskOutcome]:
        return [o for o in self.outcomes.values() if not o.ok]

    def values(self) -> Dict[str, Any]:
        """Successful task values, in spec order."""
        return {n: o.value for n, o in self.outcomes.items() if o.ok}


def _execute_task(task: Task) -> Tuple[Any, float]:
    """Module-level worker: run one task, return (value, duration).

    Must stay module-level so ``spawn``-based pools (macOS, Windows)
    can import it by qualified name.
    """
    t0 = time.perf_counter()
    value = task.run()
    return value, time.perf_counter() - t0


@dataclass
class _Attempt:
    """Scheduler bookkeeping for one not-yet-settled task."""

    task: Task
    key: str
    attempts: int = 0
    not_before: float = 0.0   # monotonic instant the next attempt may start
    deadline: float = 0.0     # monotonic timeout for the in-flight attempt
    spent: float = 0.0        # execution seconds across attempts


class SweepRunner:
    """Run sweep specs with caching, parallelism, and fault tolerance.

    Args:
        jobs: worker processes; ``1`` (default) runs serially
            in-process, ``"auto"`` uses the CPU count.
        cache: a :class:`SweepCache`, or ``None`` to recompute every
            task (the ``--no-cache`` path).
        timeout: per-task wall-clock limit in seconds.  Enforced in
            parallel mode only; the serial path cannot pre-empt a
            running task and says so through the narrator.
        retry: :class:`RetryPolicy`; failures and timeouts both count.
        error_policy: ``"fail-fast"`` (default) raises
            :class:`SweepError` on the first task that exhausts its
            retries; ``"collect"`` records the failure and finishes
            the rest of the grid.
        observer: :class:`repro.obs.Observer` receiving ``sweep.*``
            events and metrics (default: disabled).
        progress: optional ``callable(str)`` narrating the run.
    """

    def __init__(
        self,
        jobs: Union[int, str] = 1,
        cache: Optional[SweepCache] = None,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        error_policy: str = "fail-fast",
        observer: Optional[Observer] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        if timeout is not None and timeout <= 0:
            raise SweepError(f"timeout must be > 0, got {timeout}")
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        if error_policy not in ERROR_POLICIES:
            raise SweepError(
                f"unknown error policy {error_policy!r}; use one of "
                f"{ERROR_POLICIES}"
            )
        self.error_policy = error_policy
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.progress = progress

    # -- public API ---------------------------------------------------------

    def run(self, spec: SweepSpec) -> SweepResult:
        """Execute ``spec`` and reduce its results."""
        t0 = time.perf_counter()
        obs = self.observer
        outcomes: Dict[str, TaskOutcome] = {
            t.name: TaskOutcome(name=t.name) for t in spec.tasks
        }
        if obs.enabled:
            obs.emit(SWEEP_STARTED, 0.0, sweep=spec.name,
                     tasks=len(spec.tasks), jobs=self.jobs,
                     cached_run=self.cache is not None)

        to_compute: List[_Attempt] = []
        hits = 0
        for task in spec.tasks:
            key = cache_key(task)
            if self.cache is not None:
                hit, value = self.cache.get(key)
                if hit:
                    out = outcomes[task.name]
                    out.value, out.cached = value, True
                    hits += 1
                    if obs.enabled:
                        obs.metrics.counter("sweep.cache_hits").inc()
                        obs.emit(SWEEP_CACHE_HIT,
                                 time.perf_counter() - t0,
                                 sweep=spec.name, task=task.name)
                    continue
            to_compute.append(_Attempt(task=task, key=key))

        self._narrate(
            f"sweep {spec.name}: {len(spec.tasks)} tasks "
            f"({hits} cached, {len(to_compute)} to compute), "
            f"jobs={self.jobs}"
        )
        if self.timeout is not None and self.jobs == 1 and to_compute:
            self._narrate(
                "sweep: note: --timeout is not enforced on the serial "
                "path (needs process isolation); use --jobs >= 2"
            )

        retries = 0
        if to_compute:
            if self.jobs == 1:
                retries = self._run_serial(spec, to_compute, outcomes, t0)
            else:
                retries = self._run_parallel(spec, to_compute, outcomes, t0)

        wall = time.perf_counter() - t0
        computed = sum(
            1 for o in outcomes.values() if o.ok and not o.cached
        )
        failed = [o for o in outcomes.values() if not o.ok]
        value = None
        if not failed:
            results = {t.name: outcomes[t.name].value for t in spec.tasks}
            value = spec.reduce(results) if spec.reduce else results

        manifest = RunManifest(
            name=f"sweep:{spec.name}",
            config=dict(spec.config, jobs=self.jobs,
                        error_policy=self.error_policy,
                        timeout=self.timeout,
                        retry_max_attempts=self.retry.max_attempts,
                        cache="on" if self.cache is not None else "off"),
            created_unix=time.time(),
            wall_seconds=wall,
            extra={
                "tasks": len(spec.tasks),
                "cache_hits": hits,
                "computed": computed,
                "failed": len(failed),
                "retries": retries,
                "task_names": list(spec.task_names()),
            },
        )
        if obs.enabled:
            obs.emit(SWEEP_FINISHED, wall, sweep=spec.name,
                     computed=computed, cache_hits=hits,
                     failed=len(failed), retries=retries, duration=wall)
        self._narrate(
            f"sweep {spec.name}: done in {wall:.2f}s "
            f"({computed} computed, {hits} cached, {len(failed)} failed)"
        )
        return SweepResult(
            spec_name=spec.name, value=value, outcomes=outcomes,
            wall_seconds=wall, manifest=manifest, cache_hits=hits,
            computed=computed, retries=retries,
        )

    # -- serial path --------------------------------------------------------

    def _run_serial(
        self,
        spec: SweepSpec,
        attempts: List[_Attempt],
        outcomes: Dict[str, TaskOutcome],
        t0: float,
    ) -> int:
        retries = 0
        done = 0
        for entry in attempts:
            while True:
                entry.attempts += 1
                if self.observer.enabled:
                    self.observer.emit(
                        SWEEP_TASK_STARTED, time.perf_counter() - t0,
                        sweep=spec.name, task=entry.task.name,
                        attempt=entry.attempts,
                    )
                try:
                    value, duration = _execute_task(entry.task)
                except Exception as exc:  # noqa: BLE001 -- task code is foreign
                    retries += self._handle_failure(
                        spec, entry, f"{type(exc).__name__}: {exc}",
                        outcomes, t0,
                    )
                    if outcomes[entry.task.name].error is not None:
                        break  # exhausted under collect
                    time.sleep(self.retry.delay(entry.attempts))
                    continue
                entry.spent += duration
                done += 1
                self._settle_success(spec, entry, value, duration,
                                     outcomes, t0)
                self._narrate(
                    f"[{done}/{len(attempts)}] {entry.task.name} "
                    f"ok in {duration:.2f}s"
                )
                break
        return retries

    # -- parallel path ------------------------------------------------------

    def _run_parallel(
        self,
        spec: SweepSpec,
        attempts: List[_Attempt],
        outcomes: Dict[str, TaskOutcome],
        t0: float,
    ) -> int:
        retries = 0
        done = 0
        total = len(attempts)
        pending: List[_Attempt] = list(attempts)
        in_flight: Dict[Future, _Attempt] = {}
        abandoned: List[Future] = []
        pool = ProcessPoolExecutor(max_workers=self.jobs)
        try:
            while pending or in_flight:
                now = time.monotonic()
                # Launch every due attempt; the pool queues beyond
                # its worker count, so there is no submit cap.
                still_waiting: List[_Attempt] = []
                for entry in pending:
                    if entry.not_before <= now:
                        entry.attempts += 1
                        entry.deadline = (
                            now + self.timeout
                            if self.timeout is not None else float("inf")
                        )
                        if self.observer.enabled:
                            self.observer.emit(
                                SWEEP_TASK_STARTED,
                                time.perf_counter() - t0,
                                sweep=spec.name, task=entry.task.name,
                                attempt=entry.attempts,
                            )
                        future = pool.submit(_execute_task, entry.task)
                        in_flight[future] = entry
                    else:
                        still_waiting.append(entry)
                pending = still_waiting

                if not in_flight:
                    time.sleep(_TICK_SECONDS)
                    continue

                wait_timeout: Optional[float] = None
                if self.timeout is not None or pending:
                    wait_timeout = _TICK_SECONDS
                finished, _ = wait(set(in_flight), timeout=wait_timeout,
                                   return_when=FIRST_COMPLETED)

                for future in finished:
                    entry = in_flight.pop(future)
                    error = None
                    try:
                        value, duration = future.result()
                    except Exception as exc:  # noqa: BLE001
                        error = f"{type(exc).__name__}: {exc}"
                    if error is None:
                        entry.spent += duration
                        done += 1
                        self._settle_success(spec, entry, value, duration,
                                             outcomes, t0)
                        self._narrate(
                            f"[{done}/{total}] {entry.task.name} "
                            f"ok in {duration:.2f}s"
                        )
                        continue
                    retries += self._handle_failure(spec, entry, error,
                                                    outcomes, t0)
                    if outcomes[entry.task.name].error is None:
                        entry.not_before = (
                            time.monotonic()
                            + self.retry.delay(entry.attempts)
                        )
                        pending.append(entry)
                    else:
                        done += 1

                # Timed-out attempts: give up waiting.  cancel() only
                # helps if the task is still queued; a running worker
                # keeps its slot until it returns, but the sweep moves
                # on -- that is the whole point of the timeout.
                now = time.monotonic()
                for future, entry in list(in_flight.items()):
                    if entry.deadline <= now:
                        future.cancel()
                        del in_flight[future]
                        abandoned.append(future)
                        retries += self._handle_failure(
                            spec, entry,
                            f"timeout: exceeded {self.timeout:.3g}s",
                            outcomes, t0,
                        )
                        if outcomes[entry.task.name].error is None:
                            entry.not_before = (
                                now + self.retry.delay(entry.attempts)
                            )
                            pending.append(entry)
                        else:
                            done += 1
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return retries

    # -- shared bookkeeping -------------------------------------------------

    def _settle_success(
        self,
        spec: SweepSpec,
        entry: _Attempt,
        value: Any,
        duration: float,
        outcomes: Dict[str, TaskOutcome],
        t0: float,
    ) -> None:
        out = outcomes[entry.task.name]
        out.value = value
        out.attempts = entry.attempts
        out.duration = entry.spent
        if self.cache is not None:
            self.cache.put(entry.key, value, meta={
                "task": entry.task.name,
                "sweep": spec.name,
                "fn": f"{entry.task.fn.__module__}."
                      f"{entry.task.fn.__qualname__}",
                "seed": entry.task.seed,
                "duration": duration,
                "created_unix": time.time(),
            })
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter("sweep.tasks_computed").inc()
            obs.metrics.histogram("sweep.task_seconds").observe(duration)
            obs.emit(SWEEP_TASK_FINISHED, time.perf_counter() - t0,
                     sweep=spec.name, task=entry.task.name,
                     attempt=entry.attempts, duration=duration)

    def _handle_failure(
        self,
        spec: SweepSpec,
        entry: _Attempt,
        error: str,
        outcomes: Dict[str, TaskOutcome],
        t0: float,
    ) -> int:
        """Record one failed attempt; returns 1 if it will be retried.

        On exhaustion: raises under ``fail-fast``, marks the outcome
        failed under ``collect``.
        """
        obs = self.observer
        if entry.attempts < self.retry.max_attempts:
            if obs.enabled:
                obs.metrics.counter("sweep.retries").inc()
                obs.emit(SWEEP_TASK_RETRIED, time.perf_counter() - t0,
                         sweep=spec.name, task=entry.task.name,
                         attempt=entry.attempts, error=error)
            self._narrate(
                f"{entry.task.name}: attempt {entry.attempts}/"
                f"{self.retry.max_attempts} failed ({error}); retrying"
            )
            return 1
        if obs.enabled:
            obs.metrics.counter("sweep.task_failures").inc()
            obs.emit(SWEEP_TASK_FAILED, time.perf_counter() - t0,
                     sweep=spec.name, task=entry.task.name,
                     attempts=entry.attempts, error=error)
        if self.error_policy == "fail-fast":
            raise SweepError(
                f"sweep {spec.name}: task {entry.task.name!r} failed "
                f"after {entry.attempts} attempt(s): {error}"
            )
        out = outcomes[entry.task.name]
        out.error = error
        out.attempts = entry.attempts
        out.duration = entry.spent
        self._narrate(
            f"{entry.task.name}: giving up after {entry.attempts} "
            f"attempt(s): {error}"
        )
        return 0

    def _narrate(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)


def default_runner() -> SweepRunner:
    """Serial runner over the process-wide shared cache.

    What experiment harnesses fall back to when the caller does not
    provide a runner: no parallelism surprises, but repeated grids
    (every figure re-profiling the catalog) are deduplicated through
    :func:`repro.sweep.cache.default_cache`.
    """
    from repro.sweep.cache import default_cache

    return SweepRunner(jobs=1, cache=default_cache())
