"""Named sweep experiments for ``python -m repro sweep <name>``.

Each entry pairs a *spec builder* (experiment parameters -> a
:class:`~repro.sweep.task.SweepSpec`) with a *renderer* (the reduced
value -> deterministic text).  Renderers must be order-stable so two
runs of the same experiment -- or a serial and a parallel run -- can
be compared with a plain ``diff``; that is how the bit-identity
acceptance check works from the command line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping

from repro.errors import SweepError
from repro.sweep.task import SweepSpec


@dataclass(frozen=True)
class Experiment:
    """One runnable sweep: how to build its spec and print its value.

    ``build`` receives the CLI's experiment options (a plain mapping;
    missing keys mean "use the harness default") and returns the spec.
    ``defaults`` documents which options the builder reads.
    """

    name: str
    help: str
    build: Callable[[Mapping[str, Any]], SweepSpec]
    render: Callable[[Any], str]
    defaults: Dict[str, Any] = field(default_factory=dict)


def _opt(options: Mapping[str, Any], key: str, fallback: Any) -> Any:
    value = options.get(key)
    return fallback if value is None else value


# -- profile-catalog --------------------------------------------------------


def _build_profile_catalog(options: Mapping[str, Any]) -> SweepSpec:
    from repro.core.profiler import OfflineProfiler
    from repro.workloads.catalog import CATALOG

    profiler = OfflineProfiler(
        degree=int(_opt(options, "degree", 3)),
        method=_opt(options, "method", "simulate"),
    )
    names = _opt(options, "workloads", list(CATALOG))
    try:
        templates = [CATALOG[n] for n in names]
    except KeyError as exc:
        raise SweepError(
            f"unknown workload {exc.args[0]!r}; catalog has "
            f"{', '.join(CATALOG)}"
        )
    nodes = options.get("nodes")
    return profiler.sweep_spec(
        templates, n_instances=int(nodes) if nodes is not None else None
    )


def _render_table(table: Any) -> str:
    # Canonical JSON of the fitted table (``to_json`` sorts keys):
    # byte-identical across runs iff the tables are equal, which is
    # exactly what the serial-vs-parallel acceptance diff needs.
    return table.to_json()


# -- fig5 / fig6a -----------------------------------------------------------


def _build_fig5(options: Mapping[str, Any]) -> SweepSpec:
    from repro.experiments.fig5_fig6 import fig5_sweep_spec

    return fig5_sweep_spec(
        workloads=tuple(_opt(options, "workloads", ("SQL", "LR"))),
        method=_opt(options, "method", "analytic"),
    )


def _render_fig5(panels: Dict[str, Any]) -> str:
    lines = []
    for name in sorted(panels):
        panel = panels[name]
        cells = "  ".join(
            f"k={k}: R2={panel.r2[k]:.4f}" for k in sorted(panel.r2)
        )
        lines.append(f"{name:5s} {cells}")
    return "\n".join(lines)


def _build_fig6a(options: Mapping[str, Any]) -> SweepSpec:
    from repro.experiments.fig5_fig6 import fig6a_sweep_spec

    return fig6a_sweep_spec(method=_opt(options, "method", "analytic"))


def _render_fig6a(scores: Dict[str, Dict[int, float]]) -> str:
    return "\n".join(
        f"{name:5s} " + " ".join(
            f"k{k}:{scores[name][k]:.4f}" for k in sorted(scores[name])
        )
        for name in sorted(scores)
    )


# -- fig8 -------------------------------------------------------------------


def _build_fig8(options: Mapping[str, Any]) -> SweepSpec:
    from repro.experiments.fig8 import fig8_sweep_spec

    return fig8_sweep_spec(n_setups=int(_opt(options, "setups", 50)))


def _render_fig8(result: Any) -> str:
    lines = ["per-workload average speedup (paper avg: 1.88x):"]
    for name, speedup in sorted(result.per_workload_speedup.items(),
                                key=lambda kv: (-kv[1], kv[0])):
        lines.append(f"  {name:5s} {speedup:5.2f}")
    lines.append(
        f"average: {result.average_speedup:.2f} over "
        f"{len(result.setup_averages)} setups"
    )
    return "\n".join(lines)


# -- faults -----------------------------------------------------------------


def _build_faults(options: Mapping[str, Any]) -> SweepSpec:
    from repro.experiments.extension_faults import (
        DEFAULT_MTBFS,
        SMOKE_MTBFS,
        faults_sweep_spec,
    )

    if bool(_opt(options, "smoke", False)):
        return faults_sweep_spec(
            mtbfs=SMOKE_MTBFS, mttr=5.0,
            seed=int(_opt(options, "seed", 7)),
            jobs_per_setup=6, n_servers=16, mean_gap=3.0,
        )
    mtbfs = _opt(options, "mtbfs", DEFAULT_MTBFS)
    return faults_sweep_spec(
        mtbfs=tuple(mtbfs),
        mttr=float(_opt(options, "mttr", 6.0)),
        seed=int(_opt(options, "seed", 7)),
        series=tuple(_opt(options, "series", ("saba", "saba-failover"))),
    )


def _render_faults(result: Any) -> str:
    lines = [
        "speedup over baseline vs controller downtime "
        f"(mttr={result.mttr:g}s, seed={result.seed}):",
        f"  {'series':14s} {'mtbf':>8s} {'downtime':>9s} {'speedup':>8s} "
        f"{'dropped':>8s} {'replayed':>9s}",
    ]
    for p in result.points:
        mtbf = "inf" if p.mtbf is None else f"{p.mtbf:g}"
        lines.append(
            f"  {p.series:14s} {mtbf:>8s} {p.downtime:>8.1%} "
            f"{p.speedup:>8.4f} "
            f"{p.counters.get('dropped_control_messages', 0.0):>8.0f} "
            f"{p.counters.get('replayed_conns', 0.0):>9.0f}"
            + ("  [failover]" if p.counters.get("failed_over") else "")
        )
    return "\n".join(lines)


# -- online -----------------------------------------------------------------


def _build_online(options: Mapping[str, Any]) -> SweepSpec:
    from repro.experiments.extension_online import (
        DEFAULT_WAVES,
        online_sweep_spec,
    )

    if bool(_opt(options, "smoke", False)):
        return online_sweep_spec(seed=int(_opt(options, "seed", 7)))
    return online_sweep_spec(
        seed=int(_opt(options, "seed", 7)),
        waves=int(_opt(options, "waves", DEFAULT_WAVES)),
    )


def _render_online(result: Any) -> str:
    lines = [
        "cold-start online estimation vs offline profiling "
        f"(seed={result.seed}):",
        f"  offline speedup (ceiling): {result.speedup_offline:7.4f}",
    ]
    for i, p in enumerate(result.wave_points, start=1):
        lines.append(
            f"  wave {i}: speedup {p.speedup:7.4f}  "
            f"fallback {p.fallback_ratio:6.1%}  "
            f"samples {p.stage_samples:4d}"
        )
    lines.append(
        f"  convergence gap: {result.convergence_gap:.2%} "
        "(acceptance: <= 5%)"
    )
    trusted = sum(
        1 for s in result.estimator.values() if s.get("trusted")
    )
    lines.append(
        f"  trusted workload models: {trusted}/{len(result.estimator)}"
    )
    return "\n".join(lines)


# -- service ----------------------------------------------------------------


def _build_service(options: Mapping[str, Any]) -> SweepSpec:
    from repro.experiments.extension_service import (
        DEFAULT_FLAP_COUNTS,
        SMOKE_FLAP_COUNTS,
        service_sweep_spec,
    )

    if bool(_opt(options, "smoke", False)):
        return service_sweep_spec(
            flap_counts=SMOKE_FLAP_COUNTS,
            seed=int(_opt(options, "seed", 7)),
        )
    return service_sweep_spec(
        flap_counts=tuple(_opt(options, "flaps", DEFAULT_FLAP_COUNTS)),
        seed=int(_opt(options, "seed", 7)),
    )


def _render_service(result: Any) -> str:
    lines = [
        f"allocation service under link flaps (seed={result.seed}):",
        "  zero-fault identity vs static harness: "
        + ("OK" if result.identical else "FAILED"),
        f"  {'flaps':>5s} {'slowdown':>9s} {'recovered':>9s} "
        f"{'degraded':>9s} {'rerouted':>9s} {'rejected':>9s}",
    ]
    for p in result.points:
        recovered = "yes" if p.recovered else "NO"
        lines.append(
            f"  {p.flaps:>5d} {p.slowdown:>9.4f} {recovered:>9s} "
            f"{p.degraded_seconds:>8.1f}s "
            f"{p.counters.get('flows_rerouted', 0.0):>9.0f} "
            f"{p.counters.get('rejected', 0.0):>9.0f}"
        )
    return "\n".join(lines)


# -- fig10 ------------------------------------------------------------------


def _build_fig10(options: Mapping[str, Any]) -> SweepSpec:
    from repro.experiments.fig10_fig11 import fig10_sweep_spec

    return fig10_sweep_spec()


def _render_fig10(result: Any) -> str:
    paper = {"saba": 1.27, "sincronia": 1.19, "ideal-maxmin": 1.14,
             "homa": 1.12}
    lines = []
    for policy in sorted(result.speedups):
        note = f" (paper {paper[policy]:.2f})" if policy in paper else ""
        lines.append(
            f"{policy:13s} average {result.average(policy):5.2f}{note}"
        )
    return "\n".join(lines)


REGISTRY: Dict[str, Experiment] = {
    exp.name: exp
    for exp in (
        Experiment(
            name="profile-catalog",
            help="profile the Table-1 workload catalog into a "
                 "sensitivity table",
            build=_build_profile_catalog,
            render=_render_table,
            defaults={"degree": 3, "method": "simulate",
                      "workloads": None, "nodes": None},
        ),
        Experiment(
            name="fig5",
            help="sensitivity-model fits for SQL and LR (Figure 5)",
            build=_build_fig5,
            render=_render_fig5,
            defaults={"workloads": ("SQL", "LR"), "method": "analytic"},
        ),
        Experiment(
            name="fig6a",
            help="R^2 per workload per polynomial degree (Figure 6a)",
            build=_build_fig6a,
            render=_render_fig6a,
            defaults={"method": "analytic"},
        ),
        Experiment(
            name="fig8",
            help="randomized testbed setups, Saba vs baseline "
                 "(Figure 8)",
            build=_build_fig8,
            render=_render_fig8,
            defaults={"setups": 50},
        ),
        Experiment(
            name="fig10",
            help="policy comparison on the simulated fabric "
                 "(Figure 10)",
            build=_build_fig10,
            render=_render_fig10,
        ),
        Experiment(
            name="faults",
            help="controller fault injection: speedup vs downtime "
                 "(extension study)",
            build=_build_faults,
            render=_render_faults,
            defaults={"smoke": False, "mtbfs": None, "mttr": 6.0,
                      "seed": 7, "series": None},
        ),
        Experiment(
            name="service",
            help="allocation service under link flaps: identity, "
                 "availability, recovery (extension study)",
            build=_build_service,
            render=_render_service,
            defaults={"smoke": False, "flaps": None, "seed": 7},
        ),
        Experiment(
            name="online",
            help="cold-start online sensitivity estimation vs offline "
                 "profiling (extension study)",
            build=_build_online,
            render=_render_online,
            defaults={"smoke": False, "seed": 7, "waves": None},
        ),
    )
}


def get_experiment(name: str) -> Experiment:
    try:
        return REGISTRY[name]
    except KeyError:
        raise SweepError(
            f"unknown sweep experiment {name!r}; available: "
            f"{', '.join(REGISTRY)}"
        )
