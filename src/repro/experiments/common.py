"""Shared plumbing for the experiment harnesses.

Scenario construction lives here: a :class:`ScenarioSpec` is one
declarative, picklable description of *how a run is built* -- the
topology builder and its arguments, the policy name and its knobs, and
the fabric configuration (``completion_quantum``, ``incremental``,
``solver_backend``, ``validate``).  :func:`build_scenario` turns a
spec into a ready :class:`Scenario` (topology + :class:`PolicySetup` +
:class:`CoRunExecutor`).  The figure harnesses, the extension
studies, and the storm traffic generator/fuzzer all construct their
runs through this one path, so fuzzing a random spec exercises
exactly the construction code the pinned experiments use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.baselines.infiniband import DEFAULT_COLLAPSE_ALPHA, InfiniBandBaseline
from repro.baselines.maxmin import IdealMaxMin
from repro.cluster.jobs import Job, JobResult
from repro.cluster.runtime import CoRunExecutor, PolicySetup
from repro.core.controller import SabaController
from repro.core.library import SabaLibrary
from repro.core.profiler import OfflineProfiler
from repro.core.table import SensitivityTable
from repro.simnet.topology import Topology, fat_tree, single_switch, spine_leaf
from repro.units import GBPS_56
from repro.workloads.catalog import CATALOG, PROFILER_NODES


#: Default completion-batching quantum for the co-run experiments
#: (simulated seconds).  Stage durations are tens of seconds, so the
#: bounded per-completion error stays below ~1-2 % while a stage's
#: staggered flow completions cost a handful of rate recomputations
#: instead of hundreds.  Every harness threads it through as an
#: explicit ``completion_quantum`` parameter so sweep tasks (and the
#: bench) can vary it and measure the accuracy/speed trade-off.
EXPERIMENT_QUANTUM = 0.1


def geomean(values: Sequence[float]) -> float:
    """Geometric mean ("the average speedup reports the geometric mean
    of the results", Section 8.1)."""
    if not values:
        raise ValueError("geomean of no values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def build_catalog_table(
    degree: int = 3,
    method: str = "simulate",
    workloads: Optional[Iterable[str]] = None,
    runner: Optional["SweepRunner"] = None,
) -> SensitivityTable:
    """Profile the Table-1 workloads (k=3 by default, as in §8.2).

    Runs as a sweep through the shared result cache
    (:func:`repro.sweep.default_cache`), so the many experiment
    modules that each call this no longer silently re-profile the
    whole catalog: repeated calls in one process reuse the profiling
    points from memory, and setting :data:`repro.sweep.CACHE_DIR_ENV`
    extends the reuse across processes.  The cache keys on each
    point's full configuration plus the package version, so a code
    bump recomputes.  Pass ``runner`` to control jobs/caching
    explicitly.
    """
    from repro.sweep import default_runner

    if runner is None:
        runner = default_runner()
    profiler = OfflineProfiler(degree=degree, method=method)
    names = list(workloads) if workloads is not None else list(CATALOG)
    return profiler.build_table([CATALOG[n] for n in names], runner=runner)


def standalone_times(
    workloads: Iterable[str],
    n_instances: int = PROFILER_NODES,
    link_capacity: float = GBPS_56,
) -> Dict[str, float]:
    """Unthrottled isolated completion time per workload (testbed
    baseline network, used as the slowdown denominator)."""
    times: Dict[str, float] = {}
    for name in workloads:
        topo = single_switch(max(2, n_instances), capacity=link_capacity)
        spec = CATALOG[name].instantiate(
            n_instances=n_instances, link_capacity=link_capacity
        )
        job = Job("solo", spec, name, topo.servers[:n_instances])
        executor = CoRunExecutor(topo, policy=InfiniBandBaseline())
        times[name] = executor.run([job])["solo"].completion_time
    return times


def make_policy(
    name: str,
    table: Optional[SensitivityTable] = None,
    collapse_alpha: Optional[float] = DEFAULT_COLLAPSE_ALPHA,
    observer=None,
    online_config=None,
    estimator=None,
    warm_start: bool = False,
    link_capacity: float = GBPS_56,
    **controller_kwargs,
) -> PolicySetup:
    """Build the :class:`PolicySetup` for a policy name.

    ``name`` is one of ``"baseline"`` (InfiniBand FECN), ``"ideal"``
    (alias ``"ideal-maxmin"``), ``"homa"``, ``"sincronia"``,
    ``"saba"`` (needs ``table``), ``"saba-distributed"`` (sharded
    controller group over a replicated mapping database; needs a
    non-empty ``table``, accepts ``n_shards``), or
    ``"saba-online"``.  Testbed-style comparisons keep
    ``collapse_alpha`` so Saba runs on the same congestion-control
    substrate as the baseline; pass ``None`` for the idealized
    simulation studies.  ``observer`` attaches an
    :class:`repro.obs.Observer` to the Saba controller so its solve
    and port-programming decisions are traced.

    ``"saba-online"`` builds the telemetry-driven estimation stack
    (:mod:`repro.online`): applications may register with *no*
    profile.  ``table`` is optional there -- with a table the provider
    is hybrid (trusted online fit, else table entry, else prior),
    without it purely online.  ``online_config`` tunes the estimator;
    ``estimator`` passes an existing
    :class:`~repro.online.OnlineSensitivityEstimator` so learned
    models survive across consecutive runs; ``warm_start`` probes the
    sweep result cache for previously profiled grids before falling
    back to the conservative prior.  The harness must still register
    its jobs with ``setup.sampler`` and ``setup.sampler.attach`` the
    run's observer -- the sampler cannot guess job specs from bus
    events.

    The returned setup iterates as ``(policy, connections_factory)``
    for callers still unpacking the pre-:class:`PolicySetup` tuple;
    new code should pass the setup straight to
    :class:`~repro.cluster.runtime.CoRunExecutor` (or read
    ``setup.controller`` to inspect controller state after a run).
    """
    if name == "baseline":
        return PolicySetup(
            policy=InfiniBandBaseline(
                collapse_alpha=(
                    collapse_alpha if collapse_alpha is not None else 0.0
                )
            )
        )
    if name in ("ideal", "ideal-maxmin"):
        return PolicySetup(policy=IdealMaxMin())
    if name == "homa":
        from repro.baselines.homa import HomaPolicy

        return PolicySetup(
            policy=HomaPolicy(collapse_alpha=collapse_alpha)
        )
    if name == "sincronia":
        from repro.baselines.sincronia import SincroniaPolicy

        return PolicySetup(
            policy=SincroniaPolicy(collapse_alpha=collapse_alpha)
        )
    if name == "saba":
        if table is None:
            raise ValueError("saba policy needs a sensitivity table")
        if observer is not None:
            controller_kwargs.setdefault("observer", observer)
        controller = SabaController(
            table, collapse_alpha=collapse_alpha, **controller_kwargs
        )
        return PolicySetup(
            policy=controller,
            connections_factory=SabaLibrary.factory(controller),
            controller=controller,
            pipeline=controller.pipeline,
        )
    if name == "saba-distributed":
        from repro.core.distributed import (
            DistributedControllerGroup,
            MappingDatabase,
        )

        if table is None:
            raise ValueError(
                "saba-distributed policy needs a sensitivity table"
            )
        group = DistributedControllerGroup(
            MappingDatabase(table),
            collapse_alpha=collapse_alpha,
            **controller_kwargs,
        )
        return PolicySetup(
            policy=group,
            connections_factory=SabaLibrary.factory(group),  # type: ignore[arg-type]
            controller=group,
        )
    if name == "saba-online":
        from repro.online import (
            HybridModelProvider,
            OnlineModelProvider,
            OnlineSensitivityEstimator,
            StageSampler,
            conservative_prior,
            warm_start_model,
        )

        if estimator is None:
            estimator = OnlineSensitivityEstimator(
                config=online_config, observer=observer
            )
        elif observer is not None:
            # A reused estimator (wave N of a convergence study) must
            # announce refits on the *current* run's bus, not the bus
            # of the run it was created for.
            estimator.observer = observer
        if warm_start:
            def prior_of(workload: str):
                cached = warm_start_model(workload)
                return (
                    cached if cached is not None
                    else conservative_prior(workload)
                )
        else:
            prior_of = conservative_prior
        if table is not None:
            provider = HybridModelProvider(
                estimator, table, prior_of=prior_of, observer=observer
            )
        else:
            provider = OnlineModelProvider(
                estimator, prior_of=prior_of, observer=observer
            )
        if observer is not None:
            controller_kwargs.setdefault("observer", observer)
        controller = SabaController(
            table if table is not None else SensitivityTable(),
            collapse_alpha=collapse_alpha,
            model_provider=provider,
            **controller_kwargs,
        )
        # Refits move centroids and reprogram ports mid-run.  The
        # subscription outlives the controller harmlessly: once its
        # jobs deregister, on_models_updated is an empty-set no-op.
        estimator.subscribe(controller.on_models_updated)
        return PolicySetup(
            policy=controller,
            connections_factory=SabaLibrary.factory(controller),
            controller=controller,
            pipeline=controller.pipeline,
            provider=provider,
            estimator=estimator,
            sampler=StageSampler(estimator, link_capacity=link_capacity),
        )
    raise ValueError(f"unknown policy {name!r}")


#: Topology builders a :class:`ScenarioSpec` may name.  Each accepts
#: the keyword arguments of the corresponding
#: :mod:`repro.simnet.topology` constructor.
TOPOLOGY_BUILDERS = {
    "single_switch": single_switch,
    "spine_leaf": spine_leaf,
    "fat_tree": fat_tree,
}


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of how one co-run is constructed.

    A spec owns everything :func:`build_scenario` needs to stand up a
    run: the topology builder and its arguments, the policy name plus
    its knobs (``collapse_alpha`` and any controller kwargs), and the
    fabric configuration.  Specs are plain picklable data, so sweep
    tasks and the storm fuzzer carry them across process boundaries,
    and their fields feed straight into a sweep ``config`` for
    content-addressed caching.

    ``policy_kwargs`` passes extra keyword arguments to
    :func:`make_policy` (e.g. ``num_pls`` for the queue-count study).
    ``incremental``/``solver_backend``/``incidence_backend``/
    ``validate`` select the fabric's solver path -- the defaults are
    the bit-reproducible object solver, which every pinned golden
    uses.  ``incidence_backend`` only appears in :meth:`config` when
    it differs from its ``"auto"`` default, so pre-existing sweep
    config hashes (and the goldens built on them) are unchanged.
    """

    topology: str = "single_switch"
    topology_kwargs: Mapping[str, object] = field(default_factory=dict)
    policy: str = "baseline"
    collapse_alpha: Optional[float] = DEFAULT_COLLAPSE_ALPHA
    policy_kwargs: Mapping[str, object] = field(default_factory=dict)
    completion_quantum: float = EXPERIMENT_QUANTUM
    incremental: bool = True
    solver_backend: str = "object"
    incidence_backend: str = "auto"
    validate: bool = False

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGY_BUILDERS:
            raise ValueError(
                f"unknown topology {self.topology!r}; expected one of "
                f"{sorted(TOPOLOGY_BUILDERS)}"
            )

    def build_topology(self) -> Topology:
        """A fresh topology instance (never shared between runs)."""
        return TOPOLOGY_BUILDERS[self.topology](**dict(self.topology_kwargs))

    def config(self) -> Dict[str, object]:
        """JSON/``config_hash``-friendly form for sweep task configs."""
        out: Dict[str, object] = {
            "topology": self.topology,
            "topology_kwargs": dict(self.topology_kwargs),
            "policy": self.policy,
            "collapse_alpha": self.collapse_alpha,
            "policy_kwargs": dict(self.policy_kwargs),
            "completion_quantum": self.completion_quantum,
            "incremental": self.incremental,
            "solver_backend": self.solver_backend,
            "validate": self.validate,
        }
        if self.incidence_backend != "auto":
            # Conditional so every pre-existing config hash (and the
            # goldens keyed on them) is byte-identical.
            out["incidence_backend"] = self.incidence_backend
        return out


@dataclass
class Scenario:
    """A constructed run: topology + policy session + executor.

    Produced by :func:`build_scenario`; ``run`` drives a job set to
    completion on the bundled :class:`CoRunExecutor`.  The setup's
    controller/pipeline handles stay reachable through ``setup`` for
    post-run inspection.
    """

    spec: ScenarioSpec
    topology: Topology
    setup: PolicySetup
    executor: CoRunExecutor

    @property
    def fabric(self):
        return self.executor.fabric

    def run(
        self,
        jobs: Sequence[Job],
        start_times: Optional[Sequence[float]] = None,
        max_time: Optional[float] = None,
    ) -> Dict[str, JobResult]:
        return self.executor.run(
            jobs, start_times=start_times, max_time=max_time
        )


def build_scenario(
    spec: ScenarioSpec,
    table: Optional[SensitivityTable] = None,
    observer=None,
    recorder=None,
    connections_factory=None,
    setup: Optional[PolicySetup] = None,
    faults=None,
    **policy_overrides,
) -> Scenario:
    """Construct the run a :class:`ScenarioSpec` describes.

    ``table`` supplies the sensitivity table for table-driven policies
    (required for ``"saba"``).  ``connections_factory`` overrides the
    policy setup's connection layer -- the service/storm harnesses use
    this to route the same scenario through an
    :class:`~repro.service.AllocationService` front-end.  ``setup``
    passes a pre-built :class:`PolicySetup` instead of calling
    :func:`make_policy` -- for harnesses whose connection factory must
    close over the setup's controller; the spec's ``policy`` name is
    then purely descriptive.  ``policy_overrides`` are forwarded to
    :func:`make_policy` on top of the spec's ``policy_kwargs`` (e.g. a
    run-scoped ``estimator`` that must not be baked into a picklable
    spec).
    """
    topology = spec.build_topology()
    if setup is None:
        kwargs = dict(spec.policy_kwargs)
        kwargs.update(policy_overrides)
        setup = make_policy(
            spec.policy, table=table, collapse_alpha=spec.collapse_alpha,
            observer=observer, **kwargs,
        )
    if connections_factory is not None:
        setup = PolicySetup(
            policy=setup.policy,
            connections_factory=connections_factory,
            controller=setup.controller,
            pipeline=setup.pipeline,
            provider=setup.provider,
            estimator=setup.estimator,
            sampler=setup.sampler,
        )
    executor = CoRunExecutor(
        topology,
        policy=setup,
        recorder=recorder,
        completion_quantum=spec.completion_quantum,
        observer=observer,
        incremental=spec.incremental,
        solver_backend=spec.solver_backend,
        incidence_backend=spec.incidence_backend,
        validate=spec.validate,
        faults=faults,
    )
    return Scenario(
        spec=spec, topology=topology, setup=setup, executor=executor,
    )


def run_jobs(
    topology: Topology,
    jobs: Sequence[Job],
    policy,
    connections_factory=None,
    recorder=None,
    observer=None,
    completion_quantum: float = EXPERIMENT_QUANTUM,
) -> Dict[str, JobResult]:
    """Run one co-run to completion.

    ``observer`` threads a shared :class:`repro.obs.Observer` through
    the executor, fabric, and engine; pass the same observer to
    :func:`make_policy` to capture the controller's decisions too.
    ``completion_quantum`` overrides the default completion-batching
    quantum (:data:`EXPERIMENT_QUANTUM`).
    """
    executor = CoRunExecutor(
        topology,
        policy=policy,
        connections_factory=connections_factory,
        recorder=recorder,
        completion_quantum=completion_quantum,
        observer=observer,
    )
    return executor.run(jobs)


@dataclass(frozen=True)
class SpeedupReport:
    """Per-job and aggregate speedups of one policy over another."""

    per_job: Dict[str, float]
    per_workload: Dict[str, List[float]]

    @property
    def average(self) -> float:
        return geomean(list(self.per_job.values()))

    def workload_average(self, workload: str) -> float:
        return geomean(self.per_workload[workload])


def speedup_report(
    baseline: Mapping[str, JobResult], other: Mapping[str, JobResult]
) -> SpeedupReport:
    """Speedup of ``other`` over ``baseline`` per job (>1 = faster)."""
    per_job: Dict[str, float] = {}
    per_workload: Dict[str, List[float]] = {}
    for job_id, base in baseline.items():
        sp = base.completion_time / other[job_id].completion_time
        per_job[job_id] = sp
        per_workload.setdefault(base.workload, []).append(sp)
    return SpeedupReport(per_job=per_job, per_workload=per_workload)
