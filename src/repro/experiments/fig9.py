"""Figure 9: sensitivity studies on the testbed (Section 8.3).

All three studies use the *homogeneous* setup the paper describes:
one instance of each Table-1 workload on every server of an 8-server
pod (so all ten jobs co-run with identical placement), profiled
ahead of time with k = 3 unless the study varies k.

* Study 1 (:func:`run_fig9a`): runtime dataset size 0.1x / 1x / 10x.
* Study 2 (:func:`run_fig9b`): runtime node count 0.5x .. 4x.
* Study 3 (:func:`run_fig9c`): profiler polynomial degree 1 / 2 / 3.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.baselines.infiniband import DEFAULT_COLLAPSE_ALPHA
from repro.cluster.jobs import Job
from repro.cluster.runtime import CoRunExecutor
from repro.core.table import SensitivityTable
from repro.experiments.common import (
    EXPERIMENT_QUANTUM,
    build_catalog_table,
    geomean,
    make_policy,
)
from repro.simnet.topology import single_switch
from repro.workloads.catalog import CATALOG, PROFILER_NODES


def _homogeneous_jobs(n_servers: int, dataset_scale: float):
    servers = [f"server{i}" for i in range(n_servers)]
    return [
        Job(
            job_id=name,
            spec=template.instantiate(
                dataset_scale=dataset_scale, n_instances=n_servers
            ),
            workload=name,
            placement=list(servers),
        )
        for name, template in CATALOG.items()
    ]


def _speedups(
    table: SensitivityTable,
    n_servers: int,
    dataset_scale: float,
    collapse_alpha: float,
    completion_quantum: float = EXPERIMENT_QUANTUM,
) -> Dict[str, float]:
    base_topo = single_switch(n_servers)
    baseline = CoRunExecutor(
        base_topo,
        policy=make_policy("baseline", collapse_alpha=collapse_alpha),
        completion_quantum=completion_quantum,
    ).run(_homogeneous_jobs(n_servers, dataset_scale))
    saba_topo = single_switch(n_servers)
    saba = CoRunExecutor(
        saba_topo,
        policy=make_policy("saba", table, collapse_alpha=collapse_alpha),
        completion_quantum=completion_quantum,
    ).run(_homogeneous_jobs(n_servers, dataset_scale))
    return {
        name: baseline[name].completion_time / saba[name].completion_time
        for name in baseline
    }


def run_fig9a(
    scales: Sequence[float] = (0.1, 1.0, 10.0),
    collapse_alpha: float = DEFAULT_COLLAPSE_ALPHA,
    table: Optional[SensitivityTable] = None,
    completion_quantum: float = EXPERIMENT_QUANTUM,
) -> Dict[float, Dict[str, float]]:
    """Study 1: speedup per workload per runtime dataset scale."""
    if table is None:
        table = build_catalog_table(method="analytic")
    return {
        s: _speedups(table, PROFILER_NODES, s, collapse_alpha,
                     completion_quantum)
        for s in scales
    }


def run_fig9b(
    multipliers: Sequence[float] = (0.5, 1.0, 2.0, 3.0, 4.0),
    collapse_alpha: float = DEFAULT_COLLAPSE_ALPHA,
    table: Optional[SensitivityTable] = None,
    completion_quantum: float = EXPERIMENT_QUANTUM,
) -> Dict[float, Dict[str, float]]:
    """Study 2: speedup per workload per runtime node count."""
    if table is None:
        table = build_catalog_table(method="analytic")
    results = {}
    for m in multipliers:
        n = max(2, round(m * PROFILER_NODES))
        results[m] = _speedups(table, n, 1.0, collapse_alpha,
                               completion_quantum)
    return results


def run_fig9c(
    degrees: Sequence[int] = (1, 2, 3),
    collapse_alpha: float = DEFAULT_COLLAPSE_ALPHA,
    completion_quantum: float = EXPERIMENT_QUANTUM,
) -> Dict[int, Dict[str, float]]:
    """Study 3: speedup per workload per profiler polynomial degree."""
    results = {}
    for k in degrees:
        table = build_catalog_table(degree=k, method="analytic")
        results[k] = _speedups(table, PROFILER_NODES, 1.0, collapse_alpha,
                               completion_quantum)
    return results


def average_speedups(per_workload: Dict[str, float]) -> float:
    """Geometric-mean column ('Avg') of the Figure 9 bars."""
    return geomean(list(per_workload.values()))
