"""Extension study: control-plane faults (not a paper figure).

Section 5.4 concedes that "a centralized controller represents a
single point of failure" and sketches a distributed design, but the
paper never measures what a failing controller *costs*.  This
extension does: a staggered-arrival co-run (the dynamism setup) runs
under the InfiniBand baseline and under Saba while the controller
endpoint crashes and recovers on a seeded MTBF/MTTR renewal process
(:mod:`repro.faults`).  The Saba library runs ``fail_open``:
connections opened during an outage proceed under the
last-programmed weights, and missed registrations / connection
announcements replay when the controller returns.

Two resilience strategies are compared across fault intensities:

* ``saba``          -- fail-open + recovery replay only;
* ``saba-failover`` -- additionally promotes a warm
  :class:`~repro.core.distributed.DistributedControllerGroup` standby
  after a run of consecutive transport failures (the §5.4 design
  reused as the failover path).

The expected shape, asserted by ``tests/faults/test_experiment.py``:
Saba's speedup over the baseline decays toward 1x as controller
downtime grows (more connections run unmanaged) but never falls
below it -- fail-open degrades to baseline behaviour, not past it --
and failover holds the speedup closer to the fault-free value.

Everything is deterministic in ``seed``: arrivals, placements, fault
windows, and RPC jitter each derive their own stream from it, so one
point re-run twice produces byte-identical JSON (the CI golden file
relies on this).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.infiniband import DEFAULT_COLLAPSE_ALPHA
from repro.cluster.setups import generate_setups
from repro.core.distributed import DistributedControllerGroup, MappingDatabase
from repro.core.library import SabaLibrary
from repro.core.rpc import RpcBus, RpcRetryPolicy
from repro.core.table import SensitivityTable
from repro.experiments.common import (
    EXPERIMENT_QUANTUM,
    ScenarioSpec,
    build_catalog_table,
    build_scenario,
    geomean,
    make_policy,
)
from repro.faults import FaultPlan, FaultSpec
from repro.sweep import SweepRunner, SweepSpec, Task, default_runner
from repro.units import GBPS_56

#: Fault-intensity grid: mean time between controller failures, in
#: simulated seconds (``None`` = no faults, the reference point).
#: Stage durations are tens of seconds, so MTBF 10 s means the
#: controller spends large fractions of every job's lifetime down.
DEFAULT_MTBFS: Tuple[Optional[float], ...] = (None, 90.0, 45.0, 20.0, 10.0)
SMOKE_MTBFS: Tuple[Optional[float], ...] = (None, 40.0, 10.0)

#: Series = resilience strategy under test.
SERIES = ("saba", "saba-failover")


def run_faults_point(
    policy_name: str,
    table: SensitivityTable,
    mtbf: Optional[float] = None,
    mttr: float = 6.0,
    seed: int = 7,
    jobs_per_setup: int = 10,
    n_servers: int = 32,
    mean_gap: float = 4.0,
    collapse_alpha: float = DEFAULT_COLLAPSE_ALPHA,
    completion_quantum: float = EXPERIMENT_QUANTUM,
    rpc_timeout: float = 0.5,
    rpc_attempts: int = 3,
) -> Dict[str, Dict[str, float]]:
    """One co-run under one policy and one fault intensity.

    ``policy_name`` is ``"baseline"`` (InfiniBand, no control plane to
    fault), ``"saba"`` (fail-open + replay) or ``"saba-failover"``
    (fail-open + warm standby).  Returns per-job completion times plus
    the control-plane counters the analysis aggregates.  Module-level
    and driven only by picklable arguments: the unit of work the
    faults sweep fans out.
    """
    setup_desc = next(generate_setups(
        n_setups=1, jobs_per_setup=jobs_per_setup, seed=seed,
        max_instances=n_servers,
    ))
    arrival_rng = random.Random(seed + 1)
    start_times: List[float] = []
    t = 0.0
    for _ in setup_desc.jobs:
        start_times.append(t)
        t += arrival_rng.expovariate(1.0 / mean_gap)

    spec = ScenarioSpec(
        topology="single_switch",
        topology_kwargs={"n_servers": n_servers},
        policy=policy_name if policy_name == "baseline" else "saba",
        collapse_alpha=collapse_alpha,
        completion_quantum=completion_quantum,
    )
    topo = spec.build_topology()
    jobs = setup_desc.materialize(topo.servers, random.Random(seed + 2),
                                  GBPS_56)

    if policy_name == "baseline":
        results = build_scenario(spec).run(
            jobs, start_times=list(start_times)
        )
        return {
            "times": {j: r.completion_time for j, r in results.items()},
            "counters": {},
        }
    if policy_name not in SERIES:
        raise ValueError(f"unknown policy {policy_name!r}")

    injector = None
    if mtbf is not None:
        injector = FaultPlan(
            (FaultSpec.crash("controller", mtbf=mtbf, mttr=mttr),),
            seed=seed + 3,
        ).build()
    bus = RpcBus(
        default_timeout=rpc_timeout,
        retry=RpcRetryPolicy(max_attempts=rpc_attempts),
        faults=injector,
        seed=seed + 4,
    )
    setup = make_policy("saba", table, collapse_alpha=collapse_alpha)
    controller = setup.controller
    failover = None
    if policy_name == "saba-failover":
        failover = DistributedControllerGroup(
            MappingDatabase(table, seed=seed + 5),
            n_shards=4, collapse_alpha=collapse_alpha,
        )
    libraries: List[SabaLibrary] = []

    def connections_factory(fabric):
        lib = SabaLibrary(
            fabric, controller, bus=bus, fail_open=True,
            failover=failover,
        )
        libraries.append(lib)
        return lib

    scenario = build_scenario(
        spec, setup=setup, connections_factory=connections_factory,
        faults=injector,
    )
    results = scenario.run(jobs, start_times=list(start_times))
    lib = libraries[0]
    counters: Dict[str, float] = {
        "dropped_control_messages": float(lib.dropped_control_messages),
        "reregistrations": float(lib.reregistrations),
        "replayed_conns": float(lib.replayed_conns),
        "failed_over": 1.0 if lib.failed_over else 0.0,
        "pending_registrations": float(lib.pending_registrations),
        "rpc_submitted": float(bus.stats.submitted),
        "rpc_delivered": float(bus.stats.delivered),
        "rpc_retries": float(bus.stats.retries),
        "rpc_timeouts": float(bus.stats.timeouts),
        "rpc_unavailable": float(bus.stats.unavailable),
    }
    if injector is not None:
        for kind, count in injector.stats.items():
            counters[f"faults_{kind}"] = float(count)
    return {
        "times": {j: r.completion_time for j, r in results.items()},
        "counters": counters,
    }


@dataclass(frozen=True)
class FaultsPoint:
    """One (strategy, fault intensity) cell of the study."""

    series: str
    mtbf: Optional[float]
    mttr: float
    #: Long-run fraction of time the controller is down,
    #: ``mttr / (mtbf + mttr)`` (0 for the fault-free point).
    downtime: float
    #: Geometric-mean speedup over the InfiniBand baseline.
    speedup: float
    counters: Dict[str, float]


@dataclass(frozen=True)
class FaultsResult:
    """Speedup vs controller-fault intensity, per resilience strategy."""

    points: Tuple[FaultsPoint, ...]
    mttr: float
    seed: int

    def series(self, name: str) -> List[FaultsPoint]:
        return [p for p in self.points if p.series == name]

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, floats rounded to 4 decimals)
        -- the representation the CI golden file diffs against."""

        def _round(x):
            return None if x is None else round(float(x), 4)

        payload = {
            "mttr": _round(self.mttr),
            "seed": self.seed,
            "points": [
                {
                    "series": p.series,
                    "mtbf": _round(p.mtbf),
                    "downtime": _round(p.downtime),
                    "speedup": _round(p.speedup),
                    "counters": {
                        k: _round(v) for k, v in sorted(p.counters.items())
                    },
                }
                for p in self.points
            ],
        }
        return json.dumps(payload, sort_keys=True, indent=2)


def faults_sweep_spec(
    mtbfs: Sequence[Optional[float]] = DEFAULT_MTBFS,
    mttr: float = 6.0,
    seed: int = 7,
    jobs_per_setup: int = 10,
    n_servers: int = 32,
    mean_gap: float = 4.0,
    collapse_alpha: float = DEFAULT_COLLAPSE_ALPHA,
    table: Optional[SensitivityTable] = None,
    series: Sequence[str] = SERIES,
    completion_quantum: float = EXPERIMENT_QUANTUM,
    rpc_timeout: float = 0.5,
    rpc_attempts: int = 3,
) -> SweepSpec:
    """The faults study as a sweep: one task per (strategy, MTBF)
    point plus one shared baseline task, fanned out by
    :mod:`repro.sweep` like every other experiment grid."""
    if table is None:
        table = build_catalog_table(method="analytic")
    mtbfs = tuple(mtbfs)
    series = tuple(series)
    common = {
        "table": table,
        "mttr": mttr,
        "seed": seed,
        "jobs_per_setup": jobs_per_setup,
        "n_servers": n_servers,
        "mean_gap": mean_gap,
        "collapse_alpha": collapse_alpha,
        "completion_quantum": completion_quantum,
        "rpc_timeout": rpc_timeout,
        "rpc_attempts": rpc_attempts,
    }
    tasks = [
        Task(name="faults:baseline", fn=run_faults_point,
             params=dict(common, policy_name="baseline"))
    ]
    for name in series:
        for mtbf in mtbfs:
            label = "none" if mtbf is None else f"{mtbf:g}"
            tasks.append(Task(
                name=f"faults:{name}:mtbf={label}",
                fn=run_faults_point,
                params=dict(common, policy_name=name, mtbf=mtbf),
            ))

    def reduce_to_result(results: Dict[str, Dict]) -> FaultsResult:
        baseline_times = results["faults:baseline"]["times"]
        points: List[FaultsPoint] = []
        for name in series:
            for mtbf in mtbfs:
                label = "none" if mtbf is None else f"{mtbf:g}"
                point = results[f"faults:{name}:mtbf={label}"]
                speedup = geomean([
                    baseline_times[j] / t
                    for j, t in point["times"].items()
                ])
                downtime = (
                    0.0 if mtbf is None else mttr / (mtbf + mttr)
                )
                points.append(FaultsPoint(
                    series=name, mtbf=mtbf, mttr=mttr,
                    downtime=downtime, speedup=speedup,
                    counters=dict(point["counters"]),
                ))
        return FaultsResult(points=tuple(points), mttr=mttr, seed=seed)

    return SweepSpec(
        name="faults",
        tasks=tuple(tasks),
        reduce=reduce_to_result,
        config={
            "mtbfs": [m for m in mtbfs], "mttr": mttr, "seed": seed,
            "jobs_per_setup": jobs_per_setup, "n_servers": n_servers,
            "mean_gap": mean_gap, "collapse_alpha": collapse_alpha,
            "series": list(series),
            "completion_quantum": completion_quantum,
            "rpc_timeout": rpc_timeout, "rpc_attempts": rpc_attempts,
        },
    )


def run_faults(
    mtbfs: Sequence[Optional[float]] = DEFAULT_MTBFS,
    mttr: float = 6.0,
    seed: int = 7,
    jobs_per_setup: int = 10,
    n_servers: int = 32,
    mean_gap: float = 4.0,
    collapse_alpha: float = DEFAULT_COLLAPSE_ALPHA,
    table: Optional[SensitivityTable] = None,
    series: Sequence[str] = SERIES,
    completion_quantum: float = EXPERIMENT_QUANTUM,
    rpc_timeout: float = 0.5,
    rpc_attempts: int = 3,
    runner: Optional[SweepRunner] = None,
) -> FaultsResult:
    """Run the full fault-intensity grid; see module docstring."""
    runner = runner if runner is not None else default_runner()
    spec = faults_sweep_spec(
        mtbfs=mtbfs, mttr=mttr, seed=seed,
        jobs_per_setup=jobs_per_setup, n_servers=n_servers,
        mean_gap=mean_gap, collapse_alpha=collapse_alpha, table=table,
        series=series, completion_quantum=completion_quantum,
        rpc_timeout=rpc_timeout, rpc_attempts=rpc_attempts,
    )
    return runner.run(spec).value


def run_faults_smoke(
    seed: int = 7,
    runner: Optional[SweepRunner] = None,
) -> FaultsResult:
    """Reduced grid for CI: small cluster, three fault intensities.

    Fixed parameters by design -- the CI job diffs ``to_json()``
    against a committed golden file, so this configuration is part of
    the repo's compatibility surface.
    """
    return run_faults(
        mtbfs=SMOKE_MTBFS, mttr=5.0, seed=seed, jobs_per_setup=6,
        n_servers=16, mean_gap=3.0, runner=runner,
    )
