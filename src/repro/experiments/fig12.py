"""Figure 12: controller calculation-time overhead (Section 8.5).

"We evaluate the calculation time of a centralized controller, i.e.,
the time the controller takes to compute the bandwidth share of
applications for all switches.  We generate 30,000 scenarios, in which
the size of the active application set varies from 1 to 1,000.  In
each scenario, 32 instances of each application are randomly
distributed among nodes."

Each scenario registers ``|A|`` applications (drawn with replacement
from synthetic sensitivity models fitted with degree k), spreads 32
connection paths per application across the ports of a topology, and
times :meth:`SabaController.recompute_all_ports` with the Eq. 2 cache
disabled -- measuring raw optimiser + clustering work exactly as the
paper does.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.controller import SabaController
from repro.core.sensitivity import PROFILE_FRACTIONS, fit_sensitivity_model
from repro.core.table import SensitivityTable
from repro.simnet.fabric import FluidFabric
from repro.simnet.topology import single_switch


def synthetic_model_table(
    n_models: int, degree: int, seed: int = 0
) -> SensitivityTable:
    """A pool of distinct sensitivity models spanning the sensitivity
    range, fitted at the requested polynomial degree."""
    rng = random.Random(seed)
    table = SensitivityTable()
    for i in range(n_models):
        c = 0.05 + 0.9 * rng.random()
        samples = [
            (b, max(1.0, (1 - c) + c / b)) for b in PROFILE_FRACTIONS
        ]
        table.add(fit_sensitivity_model(f"W{i:03d}", samples, degree=degree))
    return table


@dataclass(frozen=True)
class OverheadScenario:
    """One timed controller-calculation scenario."""

    n_apps: int
    degree: int
    calc_time: float


def run_scenario(
    n_apps: int,
    degree: int,
    n_servers: Optional[int] = None,
    paths_per_app: int = 32,
    seed: int = 0,
    solver: str = "kkt",
) -> OverheadScenario:
    """Time one full-controller recomputation for ``n_apps`` apps.

    ``n_servers`` defaults to ``max(32, n_apps)``, matching the paper's
    geometry: its 1,000-application scenarios spread 32 instances per
    application over 1,944 servers, so a port serves a few dozen
    applications, not hundreds.  The KKT solver is the realistic
    choice at those counts (the ablation benchmark compares solvers).
    """
    if n_servers is None:
        n_servers = max(32, n_apps)
    table = synthetic_model_table(min(n_apps, 64), degree=degree, seed=seed)
    names = table.names()
    rng = random.Random(seed + 1)
    controller = SabaController(
        table, use_weight_cache=False, solver=solver
    )
    topo = single_switch(n_servers)
    fabric = FluidFabric(topo)
    fabric.set_policy(controller)
    servers = topo.servers
    # Register every application first (no ports are known yet, so
    # registration costs only the PL bookkeeping), then wire the
    # connection state directly; the timed call below then measures
    # exactly one full-controller recomputation, as the paper does.
    for i in range(n_apps):
        controller.app_register(f"app{i}", names[i % len(names)])
    for i in range(n_apps):
        job_id = f"app{i}"
        for _ in range(paths_per_app):
            src, dst = rng.sample(servers, 2)
            path = [f"{src}->switch0", f"switch0->{dst}"]
            for link_id in path:
                controller._port_apps.setdefault(link_id, Counter())[
                    job_id
                ] += 1
    elapsed = controller.recompute_all_ports()
    return OverheadScenario(n_apps=n_apps, degree=degree, calc_time=elapsed)


def run_fig12(
    app_set_sizes: Sequence[int] = (1, 10, 50, 100, 250, 500, 1000),
    degrees: Sequence[int] = (1, 2, 3),
    repeats: int = 3,
    seed: int = 0,
) -> Dict[int, List[OverheadScenario]]:
    """Calculation-time scenarios grouped by polynomial degree."""
    results: Dict[int, List[OverheadScenario]] = {k: [] for k in degrees}
    for k in degrees:
        for n in app_set_sizes:
            for r in range(repeats):
                results[k].append(
                    run_scenario(n, degree=k, seed=seed + r)
                )
    return results


def percentile(values: Sequence[float], q: float) -> float:
    """The paper reports the 99th percentile of calculation time."""
    return float(np.percentile(np.asarray(values, dtype=float), q))
