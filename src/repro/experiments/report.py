"""Machine-readable experiment reports.

Dumps each experiment's paper-style rows as JSON so results can be
archived, diffed across runs, or plotted externally::

    python -m repro report --out results/           # quick experiments
    python -m repro report --out results/ --heavy   # + fig8/10/11/12

Every artifact carries the experiment id, the parameters used, and the
result payload; ``load_report`` restores it.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Union


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of result payloads to JSON types."""
    if is_dataclass(value) and not isinstance(value, type):
        return _jsonable(asdict(value))
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


def write_report(
    experiment: str,
    payload: Any,
    out_dir: Union[str, Path],
    parameters: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write one experiment's result; returns the artifact path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"{experiment}.json"
    document = {
        "experiment": experiment,
        "parameters": _jsonable(parameters or {}),
        "result": _jsonable(payload),
        "generated_unix": time.time(),
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True))
    return path


def load_report(path: Union[str, Path]) -> Dict[str, Any]:
    return json.loads(Path(path).read_text())


#: Quick experiments: each entry is (id, runner, parameters).
def _quick_runners() -> List[tuple]:
    from repro.experiments.fig1 import run_fig1a, run_fig1b
    from repro.experiments.fig2 import run_fig2
    from repro.experiments.fig5_fig6 import (
        run_fig5, run_fig6a, run_fig6b, run_fig6c,
    )

    def fig5_payload():
        return {
            name: {"r2": panel.r2, "samples": list(panel.samples)}
            for name, panel in run_fig5().items()
        }

    def fig2_payload():
        return {
            f"{w}@{int(f * 100)}%": {
                "completion_time": panel.completion_time,
                "mean_cpu": panel.mean_cpu(),
                "mean_network": panel.mean_network(),
            }
            for (w, f), panel in run_fig2().items()
        }

    return [
        ("fig1a", run_fig1a, {}),
        ("fig1b", lambda: asdict(run_fig1b()), {}),
        ("fig2", fig2_payload, {}),
        ("fig5", fig5_payload, {}),
        ("fig6a", run_fig6a, {}),
        ("fig6b", run_fig6b, {}),
        ("fig6c", run_fig6c, {}),
    ]


def _heavy_runners() -> List[tuple]:
    from repro.experiments.fig8 import run_fig8
    from repro.experiments.fig9 import run_fig9a, run_fig9b, run_fig9c
    from repro.experiments.fig10_fig11 import (
        run_fig10, run_fig11a, run_fig11b,
    )
    from repro.experiments.fig12 import run_fig12

    def fig8_payload():
        result = run_fig8(n_setups=4)
        return {
            "per_workload_speedup": result.per_workload_speedup,
            "average_speedup": result.average_speedup,
            "setup_averages": result.setup_averages,
        }

    def fig10_payload():
        result = run_fig10()
        return {
            "speedups": result.speedups,
            "averages": {p: result.average(p) for p in result.speedups},
        }

    def fig12_payload():
        results = run_fig12(app_set_sizes=(1, 10, 50, 100), repeats=1)
        return {
            str(k): [asdict(s) for s in scenarios]
            for k, scenarios in results.items()
        }

    return [
        ("fig8", fig8_payload, {"n_setups": 4}),
        ("fig9a", run_fig9a, {}),
        ("fig9b", run_fig9b, {}),
        ("fig9c", run_fig9c, {}),
        ("fig10", fig10_payload, {}),
        ("fig11a", run_fig11a, {}),
        ("fig11b", run_fig11b, {}),
        ("fig12", fig12_payload, {"sizes": [1, 10, 50, 100]}),
    ]


def generate_reports(
    out_dir: Union[str, Path],
    heavy: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Path]:
    """Run experiments and write one JSON artifact each."""
    runners = _quick_runners()
    if heavy:
        runners += _heavy_runners()
    paths = []
    for experiment, runner, parameters in runners:
        if progress is not None:
            progress(experiment)
        paths.append(
            write_report(experiment, runner(), out_dir, parameters)
        )
    return paths
