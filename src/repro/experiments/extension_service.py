"""Extension study: the allocation service under link flaps.

The paper's evaluation assumes a static fabric: the controller
programs switch queues once per connection event and the topology
never changes underneath it.  This extension runs the control plane
as a *service* (:mod:`repro.service`) on a k=4 fat-tree and measures
what dynamic topology costs: scripted ``link_down`` windows
(:class:`~repro.faults.links.LinkFaultDriver`) take aggregation-core
links down and bring them back mid-run while staggered jobs co-run
through the service's admitted API.

Three claims are pinned by the golden file
(``GOLDEN_service.json``, diffed in CI):

* **identity** -- with zero faults and no quota pressure, driving the
  co-run through the service produces byte-identical completion times
  to the static :class:`~repro.core.library.SabaLibrary` harness (the
  service adds admission accounting, not behaviour);
* **availability** -- under N flapped links the service keeps
  admitting (zero rejections, bounded same-instant burst depth) and
  every affected flow is rerouted and its connection re-announced, so
  the pipeline reallocates the ports it left and joined;
* **recovery** -- after the last link recovers, a scheduled probe
  verifies every active flow is back on the path a *fresh* router
  would assign (link-up re-hashes all flows to the canonical ECMP
  assignment), i.e. allocation quality returns to the no-fault
  baseline rather than drifting.

Everything is deterministic in ``seed``; flow ids are reset per run
point (:func:`~repro.simnet.flows.reset_flow_ids`) because ECMP
hashes them, so two runs of one point -- and the harness/service
identity pair -- share byte-identical path assignments.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.infiniband import DEFAULT_COLLAPSE_ALPHA
from repro.cluster.setups import generate_setups
from repro.core.table import SensitivityTable
from repro.experiments.common import (
    EXPERIMENT_QUANTUM,
    ScenarioSpec,
    build_catalog_table,
    build_scenario,
    geomean,
    make_policy,
)
from repro.faults import FaultPlan, FaultSpec
from repro.service import AllocationService, ServiceConnections, ServiceQuotas
from repro.simnet.flows import reset_flow_ids
from repro.simnet.routing import Router
from repro.simnet.topology import fat_tree
from repro.sweep import SweepRunner, SweepSpec, Task, default_runner
from repro.units import GBPS_56

#: Aggregation-core duplex pairs flapped, in order, as the flap count
#: grows.  Spread across pods so each flap stresses a different ECMP
#: group; every pair always leaves an alternate path (2 aggs x 2
#: cores per pod), so no flow is ever stranded in this study.
FLAP_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("pod0-agg0", "core0"),
    ("pod1-agg1", "core3"),
    ("pod2-agg0", "core1"),
    ("pod3-agg1", "core2"),
)

#: Outage windows applied to flap i, phase-shifted by ``_PHASE * i``
#: so transitions interleave rather than synchronise.
BASE_WINDOWS: Tuple[Tuple[float, float], ...] = ((6.0, 11.0), (18.0, 22.0))
_PHASE = 2.0

#: Flap-count grid (0 = the identity/static point).
DEFAULT_FLAP_COUNTS: Tuple[int, ...] = (0, 1, 2, 3, 4)
SMOKE_FLAP_COUNTS: Tuple[int, ...] = (0, 1, 3)

#: Admission limits used for the faulted runs: generous enough that
#: this workload never hits them (the study measures topology churn,
#: not quota pressure) while still exercising the bounded-queue
#: accounting the golden file pins via ``max_burst``.
SERVICE_QUOTAS = ServiceQuotas(
    max_apps_per_tenant=64,
    max_conns_per_app=512,
    max_conns_per_tenant=2048,
    max_queue_depth=256,
)


def flap_plan(flaps: int, seed: int) -> FaultPlan:
    """Scripted ``link_down`` schedule for the first ``flaps`` pairs
    (both directions of each duplex pair flap together)."""
    if not 0 < flaps <= len(FLAP_PAIRS):
        raise ValueError(
            f"flaps must be in 1..{len(FLAP_PAIRS)}, got {flaps}"
        )
    specs: List[FaultSpec] = []
    for i, (a, b) in enumerate(FLAP_PAIRS[:flaps]):
        windows = tuple(
            (start + _PHASE * i, end + _PHASE * i)
            for start, end in BASE_WINDOWS
        )
        for link_id in (f"{a}->{b}", f"{b}->{a}"):
            specs.append(FaultSpec.link_flap(link_id, windows))
    return FaultPlan(tuple(specs), seed=seed)


def last_recovery(plan: FaultPlan) -> float:
    """When the final scripted window ends (all links back up)."""
    return max(end for spec in plan.specs for _, end in spec.windows)


def run_service_point(
    mode: str,
    table: SensitivityTable,
    flaps: int = 0,
    seed: int = 7,
    jobs_per_setup: int = 6,
    mean_gap: float = 3.0,
    collapse_alpha: float = DEFAULT_COLLAPSE_ALPHA,
    completion_quantum: float = EXPERIMENT_QUANTUM,
) -> Dict[str, object]:
    """One staggered co-run on the fat-tree.

    ``mode`` is ``"harness"`` (static SabaLibrary harness, the
    identity reference) or ``"service"`` (everything through the
    :class:`~repro.service.AllocationService`; ``flaps`` > 0 adds the
    scripted link schedule).  Module-level and driven by picklable
    arguments: the unit of work the sweep fans out.
    """
    reset_flow_ids()
    spec = ScenarioSpec(
        topology="fat_tree",
        topology_kwargs={"k": 4},
        policy="saba",
        collapse_alpha=collapse_alpha,
        completion_quantum=completion_quantum,
    )
    topo = spec.build_topology()
    setup_desc = next(generate_setups(
        n_setups=1, jobs_per_setup=jobs_per_setup, seed=seed,
        max_instances=len(topo.servers),
    ))
    arrival_rng = random.Random(seed + 1)
    start_times: List[float] = []
    t = 0.0
    for _ in setup_desc.jobs:
        start_times.append(t)
        t += arrival_rng.expovariate(1.0 / mean_gap)
    jobs = setup_desc.materialize(topo.servers, random.Random(seed + 2),
                                  GBPS_56)

    if mode == "harness":
        results = build_scenario(spec, table=table).run(
            jobs, start_times=list(start_times)
        )
        return {
            "times": {j: r.completion_time for j, r in results.items()},
            "counters": {},
            "recovered": True,
            "degraded_seconds": 0.0,
        }
    if mode != "service":
        raise ValueError(f"unknown mode {mode!r}")

    setup = make_policy("saba", table, collapse_alpha=collapse_alpha)
    controller = setup.controller
    services: List[AllocationService] = []

    def connections_factory(fabric):
        service = AllocationService(
            fabric, controller, quotas=SERVICE_QUOTAS,
        )
        services.append(service)
        return ServiceConnections(service)

    scenario = build_scenario(
        spec, setup=setup, connections_factory=connections_factory,
    )
    executor = scenario.executor
    service = services[0]
    probe = {"probed": False, "canonical": True, "active_flows": 0}
    driver = None
    if flaps:
        plan = flap_plan(flaps, seed=seed + 3)
        driver = service.attach_faults(plan.build())

        def run_probe() -> None:
            fresh = Router(executor.fabric.topology)
            flows = executor.fabric.active_flows
            probe["probed"] = True
            probe["active_flows"] = len(flows)
            probe["canonical"] = all(
                tuple(fresh.path_for_flow(f.src, f.dst, f.flow_id))
                == tuple(f.path)
                for f in flows
            )

        executor.fabric.sim.schedule_at(
            last_recovery(plan) + 0.5, run_probe
        )
    results = executor.run(jobs, start_times=list(start_times))
    counters: Dict[str, float] = {
        "admitted": float(service.admitted),
        "rejected": float(service.rejected),
        "max_burst": float(service.max_burst),
        "link_transitions": float(service.link_transitions),
        "flows_rerouted": float(service.flows_rerouted),
        "flows_stranded": float(service.flows_stranded),
        "conns_reannounced": float(service.conns_reannounced),
        "ports_forgotten": float(service.ports_forgotten),
        "library_rerouted_conns": float(service.library.rerouted_conns),
        "probe_active_flows": float(probe["active_flows"]),
    }
    if driver is not None:
        counters["driver_transitions"] = float(driver.transitions)
    return {
        "times": {j: r.completion_time for j, r in results.items()},
        "counters": counters,
        # A point without faults trivially recovered; a faulted point
        # recovered iff the post-recovery probe found every active
        # flow on its canonical (fresh-router) path.
        "recovered": probe["canonical"] if flaps else True,
        "degraded_seconds": service.degraded_seconds(),
    }


@dataclass(frozen=True)
class ServicePoint:
    """One flap-count cell of the study."""

    flaps: int
    #: Geometric-mean completion-time ratio vs the zero-fault service
    #: run (>= 1: flaps cost time; 1.0 at the static point).
    slowdown: float
    #: Post-recovery probe: all active flows on canonical paths.
    recovered: bool
    #: Simulated seconds with at least one link down.
    degraded_seconds: float
    counters: Dict[str, float]


@dataclass(frozen=True)
class ServiceResult:
    """Service identity + availability/recovery under link flaps."""

    #: Zero-fault service run is byte-identical to the static harness.
    identical: bool
    points: Tuple[ServicePoint, ...]
    seed: int

    def point(self, flaps: int) -> ServicePoint:
        for p in self.points:
            if p.flaps == flaps:
                return p
        raise KeyError(flaps)

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, floats rounded to 4 decimals)
        -- the representation the CI golden file diffs against."""

        def _round(x: float) -> float:
            return round(float(x), 4)

        payload = {
            "identical": self.identical,
            "seed": self.seed,
            "points": [
                {
                    "flaps": p.flaps,
                    "slowdown": _round(p.slowdown),
                    "recovered": p.recovered,
                    "degraded_seconds": _round(p.degraded_seconds),
                    "counters": {
                        k: _round(v) for k, v in sorted(p.counters.items())
                    },
                }
                for p in self.points
            ],
        }
        return json.dumps(payload, sort_keys=True, indent=2)


def service_sweep_spec(
    flap_counts: Sequence[int] = DEFAULT_FLAP_COUNTS,
    seed: int = 7,
    jobs_per_setup: int = 6,
    mean_gap: float = 3.0,
    collapse_alpha: float = DEFAULT_COLLAPSE_ALPHA,
    table: Optional[SensitivityTable] = None,
    completion_quantum: float = EXPERIMENT_QUANTUM,
) -> SweepSpec:
    """The service study as a sweep: one task per flap count, plus the
    static-harness identity reference."""
    if table is None:
        table = build_catalog_table(method="analytic")
    flap_counts = tuple(sorted(set(flap_counts)))
    if 0 not in flap_counts:
        flap_counts = (0,) + flap_counts
    common = {
        "table": table,
        "seed": seed,
        "jobs_per_setup": jobs_per_setup,
        "mean_gap": mean_gap,
        "collapse_alpha": collapse_alpha,
        "completion_quantum": completion_quantum,
    }
    tasks = [
        Task(name="service:harness", fn=run_service_point,
             params=dict(common, mode="harness")),
    ]
    for flaps in flap_counts:
        tasks.append(Task(
            name=f"service:flaps={flaps}",
            fn=run_service_point,
            params=dict(common, mode="service", flaps=flaps),
        ))

    def reduce_to_result(results: Dict[str, Dict]) -> ServiceResult:
        harness_times = results["service:harness"]["times"]
        static = results["service:flaps=0"]
        identical = static["times"] == harness_times
        points: List[ServicePoint] = []
        for flaps in flap_counts:
            point = results[f"service:flaps={flaps}"]
            slowdown = geomean([
                t / static["times"][j]
                for j, t in point["times"].items()
            ])
            points.append(ServicePoint(
                flaps=flaps,
                slowdown=slowdown,
                recovered=bool(point["recovered"]),
                degraded_seconds=float(point["degraded_seconds"]),
                counters=dict(point["counters"]),
            ))
        return ServiceResult(
            identical=identical, points=tuple(points), seed=seed,
        )

    return SweepSpec(
        name="service",
        tasks=tuple(tasks),
        reduce=reduce_to_result,
        config={
            "flap_counts": list(flap_counts), "seed": seed,
            "jobs_per_setup": jobs_per_setup, "mean_gap": mean_gap,
            "collapse_alpha": collapse_alpha,
            "completion_quantum": completion_quantum,
        },
    )


def run_service(
    flap_counts: Sequence[int] = DEFAULT_FLAP_COUNTS,
    seed: int = 7,
    jobs_per_setup: int = 6,
    mean_gap: float = 3.0,
    collapse_alpha: float = DEFAULT_COLLAPSE_ALPHA,
    table: Optional[SensitivityTable] = None,
    completion_quantum: float = EXPERIMENT_QUANTUM,
    runner: Optional[SweepRunner] = None,
) -> ServiceResult:
    """Run the full flap-count grid; see module docstring."""
    runner = runner if runner is not None else default_runner()
    spec = service_sweep_spec(
        flap_counts=flap_counts, seed=seed,
        jobs_per_setup=jobs_per_setup, mean_gap=mean_gap,
        collapse_alpha=collapse_alpha, table=table,
        completion_quantum=completion_quantum,
    )
    return runner.run(spec).value


def run_service_smoke(
    seed: int = 7,
    runner: Optional[SweepRunner] = None,
) -> ServiceResult:
    """Reduced grid for CI.

    Fixed parameters by design -- the CI job diffs ``to_json()``
    against ``GOLDEN_service.json``, so this configuration is part of
    the repo's compatibility surface.
    """
    return run_service(
        flap_counts=SMOKE_FLAP_COUNTS, seed=seed, runner=runner,
    )
