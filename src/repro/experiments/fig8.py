"""Figure 8: the main testbed results (Section 8.2).

500 randomized cluster setups of 16 jobs on 32 servers; each setup
runs twice -- once under the InfiniBand baseline, once under Saba --
and per-job speedups are aggregated per workload (Figure 8a) and per
setup (the CDF of Figure 8b).

Scale parameters default to the paper's values; CI and the benchmark
harness pass smaller ``n_setups`` (the distribution of setup averages
stabilises far below 500).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.infiniband import DEFAULT_COLLAPSE_ALPHA
from repro.cluster.setups import ClusterSetup, generate_setups
from repro.core.table import SensitivityTable
from repro.experiments.common import (
    EXPERIMENT_QUANTUM,
    ScenarioSpec,
    build_catalog_table,
    build_scenario,
    geomean,
)
from repro.sweep import SweepRunner, SweepSpec, Task, default_runner
from repro.units import GBPS_56
from repro.workloads.catalog import CATALOG


@dataclass
class Fig8Result:
    """Aggregated outcome of the testbed experiment."""

    per_workload_speedup: Dict[str, float]
    setup_averages: List[float]
    per_job_speedups: Dict[str, List[float]] = field(repr=False, default_factory=dict)

    @property
    def average_speedup(self) -> float:
        """Geometric mean across workloads (the paper's 1.88x)."""
        return geomean(list(self.per_workload_speedup.values()))

    def cdf(self) -> List[tuple]:
        """(speedup, cumulative fraction) points for Figure 8b."""
        values = sorted(self.setup_averages)
        n = len(values)
        return [(v, (i + 1) / n) for i, v in enumerate(values)]


def run_setup_pair(
    setup: ClusterSetup,
    table: SensitivityTable,
    n_servers: int = 32,
    collapse_alpha: float = DEFAULT_COLLAPSE_ALPHA,
    placement_seed: int = 0,
    saba_kwargs: Optional[dict] = None,
    completion_quantum: float = EXPERIMENT_QUANTUM,
) -> Dict[str, float]:
    """Run one cluster setup under baseline and Saba; per-job speedups.

    Module-level and driven entirely by its (picklable) arguments: one
    setup is the unit of work the Figure 8 sweep fans out.
    """

    def materialize(topology):
        rng = random.Random(placement_seed + setup.setup_id)
        return setup.materialize(topology.servers, rng, GBPS_56)

    common = dict(
        topology="single_switch",
        topology_kwargs={"n_servers": n_servers},
        collapse_alpha=collapse_alpha,
        completion_quantum=completion_quantum,
    )

    base = build_scenario(ScenarioSpec(policy="baseline", **common))
    baseline = base.run(materialize(base.topology))

    saba_scn = build_scenario(
        ScenarioSpec(policy="saba", policy_kwargs=saba_kwargs or {}, **common),
        table=table,
    )
    saba = saba_scn.run(materialize(saba_scn.topology))

    return {
        job_id: baseline[job_id].completion_time / saba[job_id].completion_time
        for job_id in baseline
    }


def fig8_sweep_spec(
    n_setups: int = 500,
    jobs_per_setup: int = 16,
    n_servers: int = 32,
    seed: int = 2023,
    collapse_alpha: float = DEFAULT_COLLAPSE_ALPHA,
    table: Optional[SensitivityTable] = None,
    degree: int = 3,
    completion_quantum: float = EXPERIMENT_QUANTUM,
) -> SweepSpec:
    """The Figure 8 grid as a sweep: one task per cluster setup."""
    if table is None:
        table = build_catalog_table(degree=degree, method="analytic")
    setups = list(generate_setups(
        n_setups=n_setups, jobs_per_setup=jobs_per_setup, seed=seed,
        max_instances=n_servers,
    ))
    tasks = [
        Task(
            name=f"fig8:setup{setup.setup_id}",
            fn=run_setup_pair,
            params={
                "setup": setup,
                "table": table,
                "n_servers": n_servers,
                "collapse_alpha": collapse_alpha,
                "completion_quantum": completion_quantum,
            },
        )
        for setup in setups
    ]

    def reduce_to_result(results: Dict[str, Dict[str, float]]) -> Fig8Result:
        per_job: Dict[str, List[float]] = {name: [] for name in CATALOG}
        setup_averages: List[float] = []
        for setup in setups:
            speedups = results[f"fig8:setup{setup.setup_id}"]
            for desc in setup.jobs:
                per_job[desc.workload].append(speedups[desc.job_id])
            setup_averages.append(geomean(list(speedups.values())))
        per_workload = {
            name: geomean(values)
            for name, values in per_job.items() if values
        }
        return Fig8Result(
            per_workload_speedup=per_workload,
            setup_averages=setup_averages,
            per_job_speedups=per_job,
        )

    return SweepSpec(
        name="fig8",
        tasks=tuple(tasks),
        reduce=reduce_to_result,
        config={
            "n_setups": n_setups, "jobs_per_setup": jobs_per_setup,
            "n_servers": n_servers, "seed": seed,
            "collapse_alpha": collapse_alpha, "degree": degree,
            "completion_quantum": completion_quantum,
        },
    )


def run_fig8(
    n_setups: int = 500,
    jobs_per_setup: int = 16,
    n_servers: int = 32,
    seed: int = 2023,
    collapse_alpha: float = DEFAULT_COLLAPSE_ALPHA,
    table: Optional[SensitivityTable] = None,
    degree: int = 3,
    completion_quantum: float = EXPERIMENT_QUANTUM,
    runner: Optional[SweepRunner] = None,
) -> Fig8Result:
    """The full Figure 8 experiment."""
    runner = runner if runner is not None else default_runner()
    spec = fig8_sweep_spec(
        n_setups=n_setups, jobs_per_setup=jobs_per_setup,
        n_servers=n_servers, seed=seed, collapse_alpha=collapse_alpha,
        table=table, degree=degree, completion_quantum=completion_quantum,
    )
    return runner.run(spec).value
