"""Extension study: online sensitivity estimation (not a paper figure).

Saba's allocation quality rests on an *offline* profiling run per
workload (Section 4) -- a dedicated pod, one run per bandwidth
fraction, before the application may even register.  This extension
measures how close the :mod:`repro.online` stack gets *without* any of
that: applications register cold, the controller allocates them on a
conservative prior, a :class:`~repro.online.StageSampler` harvests
(achieved fraction, observed slowdown) pairs from the live run, and
the :class:`~repro.online.OnlineSensitivityEstimator` re-fits Eq. 1
models that replace the prior as soon as they earn trust.

Three modes share one staggered-arrival co-run (identical jobs,
placements, and arrival times):

* ``baseline`` -- InfiniBand FECN, the speedup denominator;
* ``offline``  -- classic Saba with the full profiled table: the
  quality ceiling the online stack is judged against;
* ``online``   -- Saba with *no* table, run for ``waves`` consecutive
  co-runs sharing one estimator.  Wave 1 starts from the prior; later
  waves register the same applications against whatever the estimator
  learned, so the wave-over-wave speedup trend *is* the convergence
  curve.

The headline number is the convergence gap: the relative difference
between the final online wave's geometric-mean speedup and the offline
speedup.  ``tests/online/test_experiment.py`` asserts it stays within
5 %, and CI diffs the smoke configuration's canonical JSON against
``GOLDEN_online.json``.

Everything derives deterministically from ``seed``; the online mode
deliberately does *not* warm-start from the sweep cache (cache state
varies between environments and would break golden byte-identity).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines.infiniband import DEFAULT_COLLAPSE_ALPHA
from repro.cluster.setups import generate_setups
from repro.core.table import SensitivityTable
from repro.experiments.common import (
    EXPERIMENT_QUANTUM,
    ScenarioSpec,
    build_catalog_table,
    build_scenario,
    geomean,
)
from repro.obs.events import (
    ONLINE_DRIFT,
    ONLINE_FALLBACK,
    ONLINE_REFIT,
    ONLINE_SAMPLE,
    Observer,
)
from repro.online import EstimatorConfig, OnlineSensitivityEstimator
from repro.simnet.topology import single_switch
from repro.sweep import SweepRunner, SweepSpec, Task, default_runner
from repro.units import GBPS_56

#: Consecutive co-runs the online mode learns across.
DEFAULT_WAVES = 3

#: Estimator tuning for the study.  In-situ samples pool heterogeneous
#: stages of a workload, so the fit-quality gate sits below the
#: offline profiler's pristine-grid expectation (Figure 6a reaches
#: R^2 >= 0.96 there).
STUDY_ESTIMATOR = dict(
    window=96, min_samples=6, min_spread=0.08, min_r_squared=0.55,
    refit_interval=2,
)

#: Observer-bus event types the result reports per wave.
_EVENTS = (ONLINE_SAMPLE, ONLINE_REFIT, ONLINE_DRIFT, ONLINE_FALLBACK)


def _staggered_corun(
    seed: int, jobs_per_setup: int, n_servers: int, mean_gap: float
):
    """One deterministic co-run: topology, jobs, arrival times.

    Called once per wave -- topology link state and Job objects mutate
    during a run, so each wave needs fresh instances; the fixed seeds
    make every wave's workload identical.
    """
    setup_desc = next(generate_setups(
        n_setups=1, jobs_per_setup=jobs_per_setup, seed=seed,
        max_instances=n_servers,
    ))
    arrival_rng = random.Random(seed + 1)
    start_times: List[float] = []
    t = 0.0
    for _ in setup_desc.jobs:
        start_times.append(t)
        t += arrival_rng.expovariate(1.0 / mean_gap)
    topo = single_switch(n_servers)
    jobs = setup_desc.materialize(topo.servers, random.Random(seed + 2),
                                  GBPS_56)
    return topo, jobs, start_times


def run_online_point(
    mode: str,
    table: Optional[SensitivityTable] = None,
    seed: int = 7,
    waves: int = DEFAULT_WAVES,
    jobs_per_setup: int = 6,
    n_servers: int = 16,
    mean_gap: float = 3.0,
    collapse_alpha: float = DEFAULT_COLLAPSE_ALPHA,
    completion_quantum: float = EXPERIMENT_QUANTUM,
    estimator_overrides: Optional[Dict[str, float]] = None,
) -> Dict[str, object]:
    """One mode of the study; module-level and picklable for the sweep.

    ``mode`` is ``"baseline"``, ``"offline"`` (needs ``table``), or
    ``"online"``.  Baseline and offline are single deterministic
    co-runs; online runs ``waves`` consecutive co-runs sharing one
    estimator and reports per-wave times plus estimator telemetry.
    """
    def point_spec(policy: str) -> ScenarioSpec:
        return ScenarioSpec(
            topology="single_switch",
            topology_kwargs={"n_servers": n_servers},
            policy=policy,
            collapse_alpha=collapse_alpha,
            completion_quantum=completion_quantum,
        )

    if mode == "baseline":
        _, jobs, starts = _staggered_corun(
            seed, jobs_per_setup, n_servers, mean_gap
        )
        results = build_scenario(point_spec("baseline")).run(
            jobs, start_times=list(starts)
        )
        return {
            "times": {j: r.completion_time for j, r in results.items()},
        }
    if mode == "offline":
        if table is None:
            raise ValueError("offline mode needs a sensitivity table")
        _, jobs, starts = _staggered_corun(
            seed, jobs_per_setup, n_servers, mean_gap
        )
        results = build_scenario(point_spec("saba"), table=table).run(
            jobs, start_times=list(starts)
        )
        return {
            "times": {j: r.completion_time for j, r in results.items()},
        }
    if mode != "online":
        raise ValueError(f"unknown mode {mode!r}")

    config = EstimatorConfig(
        **dict(STUDY_ESTIMATOR, **(estimator_overrides or {}))
    )
    estimator = OnlineSensitivityEstimator(config=config)
    wave_records: List[Dict[str, object]] = []
    for _ in range(waves):
        observer = Observer()
        scenario = build_scenario(
            point_spec("saba-online"), table=None, observer=observer,
            estimator=estimator,
        )
        setup = scenario.setup
        _, jobs, starts = _staggered_corun(
            seed, jobs_per_setup, n_servers, mean_gap
        )
        for job in jobs:
            setup.sampler.register_job(job)
        detach = setup.sampler.attach(observer)
        results = scenario.run(jobs, start_times=list(starts))
        detach()
        wave_records.append({
            "times": {j: r.completion_time for j, r in results.items()},
            "fallback_ratio": setup.provider.fallback_ratio,
            "stage_samples": setup.sampler.samples,
            "events": {
                e: observer.bus.counts.get(e, 0) for e in _EVENTS
            },
        })
    return {
        "waves": wave_records,
        "estimator": estimator.stats(),
    }


@dataclass(frozen=True)
class WavePoint:
    """One online wave's aggregate outcome."""

    #: Geometric-mean speedup over the InfiniBand baseline.
    speedup: float
    #: Fraction of model lookups served by a fallback (prior) model.
    fallback_ratio: float
    #: (fraction, slowdown) samples the stage sampler harvested.
    stage_samples: int
    #: ``online.*`` event counts on the wave's bus.
    events: Dict[str, int]


@dataclass(frozen=True)
class OnlineResult:
    """Convergence of cold online estimation toward offline quality."""

    #: Offline (fully profiled) Saba's speedup: the quality ceiling.
    speedup_offline: float
    #: Per-wave online speedups, in wave order.
    wave_points: Tuple[WavePoint, ...]
    #: Per-workload estimator counters after the final wave.
    estimator: Dict[str, Dict[str, object]]
    seed: int
    waves: int

    @property
    def speedup_online(self) -> float:
        """The final wave's speedup (the converged operating point)."""
        return self.wave_points[-1].speedup

    @property
    def convergence_gap(self) -> float:
        """Relative distance of the final online wave from offline
        allocation quality (the acceptance criterion bounds this)."""
        return abs(self.speedup_online - self.speedup_offline) / (
            self.speedup_offline
        )

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, floats rounded to 4 decimals)
        -- the representation the CI golden file diffs against."""

        def _round(x):
            return None if x is None else round(float(x), 4)

        payload = {
            "seed": self.seed,
            "waves": self.waves,
            "speedup_offline": _round(self.speedup_offline),
            "speedup_online": _round(self.speedup_online),
            "convergence_gap": _round(self.convergence_gap),
            "wave_points": [
                {
                    "speedup": _round(p.speedup),
                    "fallback_ratio": _round(p.fallback_ratio),
                    "stage_samples": p.stage_samples,
                    "events": {k: v for k, v in sorted(p.events.items())},
                }
                for p in self.wave_points
            ],
            "estimator": {
                workload: {
                    key: (_round(value) if key == "r_squared" else value)
                    for key, value in sorted(stats.items())
                }
                for workload, stats in sorted(self.estimator.items())
            },
        }
        return json.dumps(payload, sort_keys=True, indent=2)


def online_sweep_spec(
    seed: int = 7,
    waves: int = DEFAULT_WAVES,
    jobs_per_setup: int = 6,
    n_servers: int = 16,
    mean_gap: float = 3.0,
    collapse_alpha: float = DEFAULT_COLLAPSE_ALPHA,
    completion_quantum: float = EXPERIMENT_QUANTUM,
    table: Optional[SensitivityTable] = None,
    estimator_overrides: Optional[Dict[str, float]] = None,
) -> SweepSpec:
    """The study as a sweep: one task per mode, reduced to the
    convergence result."""
    if table is None:
        table = build_catalog_table(method="analytic")
    common = {
        "seed": seed,
        "jobs_per_setup": jobs_per_setup,
        "n_servers": n_servers,
        "mean_gap": mean_gap,
        "collapse_alpha": collapse_alpha,
        "completion_quantum": completion_quantum,
    }
    tasks = (
        Task(name="online:baseline", fn=run_online_point,
             params=dict(common, mode="baseline")),
        Task(name="online:offline", fn=run_online_point,
             params=dict(common, mode="offline", table=table)),
        Task(name="online:online", fn=run_online_point,
             params=dict(common, mode="online", waves=waves,
                         estimator_overrides=estimator_overrides)),
    )

    def reduce_to_result(results: Dict[str, Dict]) -> OnlineResult:
        baseline = results["online:baseline"]["times"]
        offline = results["online:offline"]["times"]
        online = results["online:online"]
        speedup_offline = geomean([
            baseline[j] / t for j, t in offline.items()
        ])
        wave_points = tuple(
            WavePoint(
                speedup=geomean([
                    baseline[j] / t for j, t in wave["times"].items()
                ]),
                fallback_ratio=wave["fallback_ratio"],
                stage_samples=wave["stage_samples"],
                events=dict(wave["events"]),
            )
            for wave in online["waves"]
        )
        return OnlineResult(
            speedup_offline=speedup_offline,
            wave_points=wave_points,
            estimator={
                w: dict(stats) for w, stats in online["estimator"].items()
            },
            seed=seed,
            waves=waves,
        )

    return SweepSpec(
        name="online",
        tasks=tasks,
        reduce=reduce_to_result,
        config=dict(
            common, waves=waves,
            estimator_overrides=dict(estimator_overrides or {}),
        ),
    )


def run_online(
    seed: int = 7,
    waves: int = DEFAULT_WAVES,
    jobs_per_setup: int = 6,
    n_servers: int = 16,
    mean_gap: float = 3.0,
    collapse_alpha: float = DEFAULT_COLLAPSE_ALPHA,
    completion_quantum: float = EXPERIMENT_QUANTUM,
    table: Optional[SensitivityTable] = None,
    estimator_overrides: Optional[Dict[str, float]] = None,
    runner: Optional[SweepRunner] = None,
) -> OnlineResult:
    """Run the full study; see the module docstring."""
    runner = runner if runner is not None else default_runner()
    spec = online_sweep_spec(
        seed=seed, waves=waves, jobs_per_setup=jobs_per_setup,
        n_servers=n_servers, mean_gap=mean_gap,
        collapse_alpha=collapse_alpha,
        completion_quantum=completion_quantum, table=table,
        estimator_overrides=estimator_overrides,
    )
    return runner.run(spec).value


def run_online_smoke(
    seed: int = 7,
    runner: Optional[SweepRunner] = None,
) -> OnlineResult:
    """Fixed CI configuration -- part of the golden-file surface."""
    return run_online(seed=seed, runner=runner)
