"""Figures 10 and 11: the large-scale simulation studies (Section 8.4).

The paper simulates a 1,944-server three-tier spine-leaf cluster with
20 synthetic workloads; instances of every workload are distributed
randomly, one job instance set per workload.  The builders here are
parametric -- ``spine_leaf()`` defaults reproduce the full topology,
while benchmarks run a proportionally scaled-down fabric with the same
three-tier shape.

* :func:`run_fig10` -- speedup of Saba, ideal max-min, Homa, and
  Sincronia over the InfiniBand baseline (studies 4-6).
* :func:`run_fig11a` -- centralized vs distributed controller
  (study 7).
* :func:`run_fig11b` -- number of per-port queues in
  {2, 4, 8, 16, unlimited} (study 8).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cluster.jobs import Job
from repro.cluster.placement import random_placement
from repro.core.profiler import OfflineProfiler
from repro.core.table import SensitivityTable
from repro.experiments.common import (
    EXPERIMENT_QUANTUM,
    ScenarioSpec,
    build_scenario,
    geomean,
    make_policy,
)
from repro.simnet.topology import Topology, spine_leaf
from repro.sweep import SweepRunner, SweepSpec, Task, default_runner
from repro.workloads.model import ApplicationSpec
from repro.workloads.synthetic import synthetic_workloads

#: Scaled-down simulation defaults: the same three-tier shape as the
#: paper's 54/102/108 x 18 topology, with the paper's key statistical
#: properties preserved -- one workload instance per server, an
#: overprovisioned core (contention concentrates at ToR uplinks, as at
#: full scale), and ~1 flow per application per contended port.  Pass
#: the paper's values for a full-scale run.
DEFAULT_TOPOLOGY = dict(n_spine=8, n_leaf=8, n_tor=8, servers_per_tor=10)

#: Congestion-control loss used in the *simulation* studies.  The
#: paper's OMNeT++ InfiniBand model keeps its baseline within 1.14x of
#: ideal max-min (Figure 10), far gentler than the real switch, whose
#: measured collapse the testbed experiments model with
#: ``DEFAULT_COLLAPSE_ALPHA``.  This value reproduces that gap.
SIM_COLLAPSE_ALPHA = 0.015


def build_simulation(
    n_workloads: int = 20,
    instances_per_workload: Optional[int] = None,
    topology_kwargs: Optional[dict] = None,
    seed: int = 11,
    num_queues: int = 8,
):
    """Topology + placed jobs for the simulation studies.

    Mirrors §8.1: every server runs one workload instance; each of the
    ``n_workloads`` synthetic workloads gets an equal number of
    instances, randomly distributed.
    """
    kwargs = dict(DEFAULT_TOPOLOGY)
    if topology_kwargs:
        kwargs.update(topology_kwargs)
    kwargs["num_queues"] = num_queues

    def make_topology() -> Topology:
        return spine_leaf(**kwargs)

    topo = make_topology()
    n_servers = len(topo.servers)
    if instances_per_workload is None:
        # One workload instance per server, as in the paper ("each
        # server runs one workload").
        instances_per_workload = max(2, n_servers // n_workloads)
    specs = synthetic_workloads(count=n_workloads,
                                n_instances=instances_per_workload)
    rng = random.Random(seed)
    placements = random_placement(
        [spec.n_instances for spec in specs], topo.servers, rng,
        max_jobs_per_server=n_workloads,
    )

    def make_jobs() -> List[Job]:
        return [
            Job(job_id=spec.name, spec=spec, workload=spec.name,
                placement=list(placement))
            for spec, placement in zip(specs, placements)
        ]

    return make_topology, make_jobs, specs


def profile_synthetic(
    specs: Sequence[ApplicationSpec],
    degree: int = 3,
    rack_nodes: int = 18,
) -> SensitivityTable:
    """Profile each synthetic workload on a rack-scale pod (§8.4:
    'the profiler deploys instances of the workload on a rack-scale
    simulated system with 18 nodes')."""
    profiler = OfflineProfiler(degree=degree, method="analytic",
                               n_nodes=rack_nodes)
    table = SensitivityTable()
    for spec in specs:
        rack_spec = ApplicationSpec(
            name=spec.name, stages=spec.stages,
            n_instances=rack_nodes, fanout=spec.fanout,
            barrier=spec.barrier,
        )
        table.add(profiler.profile_spec(rack_spec).model)
    return table


@dataclass(frozen=True)
class Fig10Result:
    """Per-policy, per-workload speedups over the baseline."""

    speedups: Dict[str, Dict[str, float]]

    def average(self, policy: str) -> float:
        return geomean(list(self.speedups[policy].values()))


def sim_scenario_spec(
    policy: str,
    collapse_alpha: float = SIM_COLLAPSE_ALPHA,
    topology_kwargs: Optional[dict] = None,
    num_queues: int = 8,
    completion_quantum: float = EXPERIMENT_QUANTUM,
    **policy_kwargs,
) -> ScenarioSpec:
    """:class:`ScenarioSpec` for a simulation-study run.

    Merges ``topology_kwargs`` over :data:`DEFAULT_TOPOLOGY` exactly
    as :func:`build_simulation` does, so the spec's topology matches
    the one the placement was computed for.
    """
    kwargs = dict(DEFAULT_TOPOLOGY)
    if topology_kwargs:
        kwargs.update(topology_kwargs)
    kwargs["num_queues"] = num_queues
    return ScenarioSpec(
        topology="spine_leaf",
        topology_kwargs=kwargs,
        policy=policy,
        collapse_alpha=collapse_alpha,
        policy_kwargs=policy_kwargs,
        completion_quantum=completion_quantum,
    )


def run_policy_point(
    policy_name: str,
    table: SensitivityTable,
    collapse_alpha: float = SIM_COLLAPSE_ALPHA,
    seed: int = 11,
    topology_kwargs: Optional[dict] = None,
    n_workloads: int = 20,
    num_queues: int = 8,
    completion_quantum: float = EXPERIMENT_QUANTUM,
) -> Dict[str, float]:
    """Completion time per job for one policy on the simulated fabric.

    The per-policy unit of work of the Figure 10 sweep: module-level,
    driven only by picklable arguments, and deterministic in ``seed``
    (``build_simulation`` re-derives the same placement in every
    worker process).
    """
    _, make_jobs, _ = build_simulation(
        n_workloads=n_workloads, topology_kwargs=topology_kwargs,
        seed=seed, num_queues=num_queues,
    )
    spec = sim_scenario_spec(
        policy_name, collapse_alpha=collapse_alpha,
        topology_kwargs=topology_kwargs, num_queues=num_queues,
        completion_quantum=completion_quantum,
    )
    results = build_scenario(spec, table=table).run(make_jobs())
    return {job_id: res.completion_time for job_id, res in results.items()}


def fig10_sweep_spec(
    policies: Sequence[str] = ("saba", "ideal-maxmin", "homa", "sincronia"),
    collapse_alpha: float = SIM_COLLAPSE_ALPHA,
    table: Optional[SensitivityTable] = None,
    seed: int = 11,
    topology_kwargs: Optional[dict] = None,
    n_workloads: int = 20,
    completion_quantum: float = EXPERIMENT_QUANTUM,
) -> SweepSpec:
    """Figure 10 as a sweep: one simulator run per policy.

    The baseline is a task like any other, so all five simulator runs
    proceed in parallel; the reduction divides per-job completion
    times to produce the speedup table.
    """
    if table is None:
        _, _, specs = build_simulation(
            n_workloads=n_workloads, topology_kwargs=topology_kwargs,
            seed=seed,
        )
        table = profile_synthetic(specs)
    policies = tuple(policies)
    common = {
        "table": table,
        "collapse_alpha": collapse_alpha,
        "seed": seed,
        "topology_kwargs": topology_kwargs,
        "n_workloads": n_workloads,
        "completion_quantum": completion_quantum,
    }
    tasks = [
        Task(name=f"fig10:{name}", fn=run_policy_point,
             params=dict(common, policy_name=name))
        for name in ("baseline",) + policies
    ]

    def reduce_to_result(results: Dict[str, Dict[str, float]]) -> Fig10Result:
        baseline = results["fig10:baseline"]
        return Fig10Result(speedups={
            name: {
                job_id: baseline[job_id] / t
                for job_id, t in results[f"fig10:{name}"].items()
            }
            for name in policies
        })

    return SweepSpec(
        name="fig10",
        tasks=tuple(tasks),
        reduce=reduce_to_result,
        config={
            "policies": list(policies), "seed": seed,
            "collapse_alpha": collapse_alpha,
            "n_workloads": n_workloads,
            "topology_kwargs": dict(topology_kwargs or {}),
            "completion_quantum": completion_quantum,
        },
    )


def run_fig10(
    policies: Sequence[str] = ("saba", "ideal-maxmin", "homa", "sincronia"),
    collapse_alpha: float = SIM_COLLAPSE_ALPHA,
    table: Optional[SensitivityTable] = None,
    seed: int = 11,
    topology_kwargs: Optional[dict] = None,
    n_workloads: int = 20,
    completion_quantum: float = EXPERIMENT_QUANTUM,
    runner: Optional[SweepRunner] = None,
) -> Fig10Result:
    """Speedup of each policy over the InfiniBand baseline (Figure 10).

    The paper's simulator models InfiniBand end to end, so every
    priority-based policy (Saba, Homa, Sincronia) runs on the same
    congestion-controlled transport as the baseline; the congestion-
    control loss applies per queue/class.  Ideal max-min is the
    explicit upper bound and stays loss-free (per-flow round-robin
    queues).

    Validation of unknown policy names happens eagerly here (before
    any simulator run), then the per-policy runs execute as a sweep.
    """
    for name in policies:
        make_policy(name, table=SensitivityTable(),
                    collapse_alpha=collapse_alpha)
    runner = runner if runner is not None else default_runner()
    spec = fig10_sweep_spec(
        policies=policies, collapse_alpha=collapse_alpha, table=table,
        seed=seed, topology_kwargs=topology_kwargs,
        n_workloads=n_workloads, completion_quantum=completion_quantum,
    )
    return runner.run(spec).value


def run_fig11a(
    n_shards: int = 4,
    collapse_alpha: float = SIM_COLLAPSE_ALPHA,
    seed: int = 11,
    topology_kwargs: Optional[dict] = None,
    completion_quantum: float = EXPERIMENT_QUANTUM,
) -> Dict[str, float]:
    """Centralized vs distributed controller (Figure 11a).

    Returns average speedup over the baseline for both designs.
    """
    _, make_jobs, specs = build_simulation(
        topology_kwargs=topology_kwargs, seed=seed
    )
    table = profile_synthetic(specs)

    def run_point(policy: str, **policy_kwargs):
        spec = sim_scenario_spec(
            policy, collapse_alpha=collapse_alpha,
            topology_kwargs=topology_kwargs,
            completion_quantum=completion_quantum, **policy_kwargs,
        )
        return build_scenario(spec, table=table).run(make_jobs())

    baseline = run_point("baseline")
    central_res = run_point("saba")
    dist_res = run_point("saba-distributed", n_shards=n_shards)

    def avg(results):
        return geomean([
            baseline[j].completion_time / r.completion_time
            for j, r in results.items()
        ])

    return {
        "centralized": avg(central_res),
        "distributed": avg(dist_res),
    }


def run_fig11b(
    queue_counts: Sequence[Optional[int]] = (2, 4, 8, 16, None),
    collapse_alpha: float = SIM_COLLAPSE_ALPHA,
    seed: int = 11,
    topology_kwargs: Optional[dict] = None,
    completion_quantum: float = EXPERIMENT_QUANTUM,
) -> Dict[str, float]:
    """Average speedup vs number of per-port queues (Figure 11b).

    ``None`` means unlimited queues (one per workload -- the upper
    bound configuration of study 8); it is simulated with one queue
    per priority level.
    """
    results: Dict[str, float] = {}
    for q in queue_counts:
        n_queues = q if q is not None else 20
        _, make_jobs, specs = build_simulation(
            topology_kwargs=topology_kwargs, seed=seed, num_queues=n_queues
        )
        table = profile_synthetic(specs)

        def run_point(policy: str, **policy_kwargs):
            spec = sim_scenario_spec(
                policy, collapse_alpha=collapse_alpha,
                topology_kwargs=topology_kwargs, num_queues=n_queues,
                completion_quantum=completion_quantum, **policy_kwargs,
            )
            return build_scenario(spec, table=table).run(make_jobs())

        baseline = run_point("baseline")
        saba = run_point("saba", num_pls=max(16, n_queues))
        label = "unlimited" if q is None else str(q)
        results[label] = geomean([
            baseline[j].completion_time / r.completion_time
            for j, r in saba.items()
        ])
    return results
