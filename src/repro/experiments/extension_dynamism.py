"""Extension study: dynamism (not a paper figure).

Section 2.4 names *dynamism* -- applications arriving, terminating and
migrating over time -- as a core challenge, and Section 6's software
interface exists precisely so the controller can re-allocate on every
registration and connection event.  The paper's evaluation, however,
starts all jobs simultaneously.  This extension staggers job arrivals
with exponential gaps and verifies that Saba's advantage survives a
constantly-changing application mix -- exercising the full
(de)registration path at steady churn.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.baselines.infiniband import DEFAULT_COLLAPSE_ALPHA, InfiniBandBaseline
from repro.cluster.runtime import CoRunExecutor
from repro.cluster.setups import generate_setups
from repro.core.controller import SabaController
from repro.core.library import SabaLibrary
from repro.core.table import SensitivityTable
from repro.experiments.common import EXPERIMENT_QUANTUM, build_catalog_table, geomean
from repro.simnet.topology import single_switch
from repro.units import GBPS_56


@dataclass(frozen=True)
class DynamismResult:
    """Speedups under staggered arrivals."""

    per_job_speedup: Dict[str, float]
    controller_registrations: int
    controller_conn_events: int

    @property
    def average_speedup(self) -> float:
        return geomean(list(self.per_job_speedup.values()))


def run_dynamism(
    jobs_per_setup: int = 12,
    n_servers: int = 32,
    mean_gap: float = 5.0,
    seed: int = 99,
    collapse_alpha: float = DEFAULT_COLLAPSE_ALPHA,
    table: Optional[SensitivityTable] = None,
    completion_quantum: float = EXPERIMENT_QUANTUM,
) -> DynamismResult:
    """One staggered-arrival co-run, baseline vs Saba.

    Jobs arrive with exponential inter-arrival gaps (mean ``mean_gap``
    seconds), so registrations, PL assignments and port re-enforcement
    happen continuously rather than once at t=0.
    """
    if table is None:
        table = build_catalog_table(method="analytic")
    setup = next(
        generate_setups(
            n_setups=1, jobs_per_setup=jobs_per_setup, seed=seed,
            max_instances=n_servers,
        )
    )
    arrival_rng = random.Random(seed + 1)
    start_times: List[float] = []
    t = 0.0
    for _ in setup.jobs:
        start_times.append(t)
        t += arrival_rng.expovariate(1.0 / mean_gap)

    def run(policy, connections_factory=None):
        topo = single_switch(n_servers)
        jobs = setup.materialize(
            topo.servers, random.Random(seed + 2), GBPS_56
        )
        executor = CoRunExecutor(
            topo, policy=policy, connections_factory=connections_factory,
            completion_quantum=completion_quantum,
        )
        return executor.run(jobs, start_times=list(start_times))

    baseline = run(InfiniBandBaseline(collapse_alpha=collapse_alpha))
    controller = SabaController(table, collapse_alpha=collapse_alpha)
    saba = run(controller, SabaLibrary.factory(controller))

    return DynamismResult(
        per_job_speedup={
            job_id: baseline[job_id].completion_time
            / saba[job_id].completion_time
            for job_id in baseline
        },
        controller_registrations=controller.stats.registrations,
        controller_conn_events=(
            controller.stats.conn_creates + controller.stats.conn_destroys
        ),
    )
