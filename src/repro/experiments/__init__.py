"""Experiment harnesses: one module per table/figure of the paper.

Each module exposes ``run_*`` functions returning plain dataclasses /
dicts with the same rows or series the paper reports, so the
``benchmarks/`` tree (and the examples) can print paper-style output.
Scale parameters default to CI-friendly values where noted; pass the
paper's numbers (500 setups, 1,944 servers, 30,000 scenarios, ...)
for a full-scale run.

Experiment index (see DESIGN.md section 4 for the full mapping):

====== =====================================================
Figure Harness
====== =====================================================
1a     :func:`repro.experiments.fig1.run_fig1a`
1b     :func:`repro.experiments.fig1.run_fig1b`
2      :func:`repro.experiments.fig2.run_fig2`
5      :func:`repro.experiments.fig5_fig6.run_fig5`
6a-c   :func:`repro.experiments.fig5_fig6.run_fig6a` (b, c)
8a/8b  :func:`repro.experiments.fig8.run_fig8`
9a-c   :func:`repro.experiments.fig9.run_fig9a` (b, c)
10     :func:`repro.experiments.fig10_fig11.run_fig10`
11a    :func:`repro.experiments.fig10_fig11.run_fig11a`
11b    :func:`repro.experiments.fig10_fig11.run_fig11b`
12     :func:`repro.experiments.fig12.run_fig12`
====== =====================================================
"""

from repro.experiments import common
from repro.experiments import fig1, fig2, fig5_fig6, fig8, fig9
from repro.experiments import fig10_fig11, fig12

__all__ = [
    "common",
    "fig1",
    "fig2",
    "fig5_fig6",
    "fig8",
    "fig9",
    "fig10_fig11",
    "fig12",
]
