"""Figures 5 and 6: sensitivity-model accuracy (Section 4.2).

* :func:`run_fig5` -- profiling samples plus fitted models of degree
  1..3 for SQL and LR (the paper's contrast between a non-linear and a
  near-linear workload).
* :func:`run_fig6a` -- R^2 of each workload's model vs polynomial
  degree (goodness of fit).
* :func:`run_fig6b` -- *predictive* R^2 when the runtime dataset size
  differs from the profiled one (0.1x / 1x / 10x).
* :func:`run_fig6c` -- predictive R^2 across runtime node counts
  (0.5x .. 4x of the 8-node profiling pod).

Predictive R^2 follows the paper's method: the model is fitted at the
reference configuration (1x dataset, 8 nodes, k as given) and scored
against slowdown samples *measured* at the runtime configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.profiler import OfflineProfiler
from repro.core.sensitivity import SensitivityModel, fit_sensitivity_model, r_squared
from repro.sweep import SweepRunner, SweepSpec, default_runner
from repro.workloads.catalog import CATALOG, PROFILER_NODES

DATASET_SCALES = (0.1, 1.0, 10.0)
NODE_MULTIPLIERS = (0.5, 1.0, 2.0, 3.0, 4.0)


@dataclass(frozen=True)
class Fig5Panel:
    workload: str
    samples: Tuple[Tuple[float, float], ...]
    models: Dict[int, SensitivityModel]
    r2: Dict[int, float]


def _profile_grid_tasks(
    profiler: OfflineProfiler, workloads: Sequence[str]
) -> List:
    """One measurement task per (workload, fraction) at the reference
    shape.  Task names (and therefore cache keys) are shared with the
    catalog-profiling sweep, so a warm profile cache serves Figure 5/6
    for free."""
    return [
        profiler.point_task(CATALOG[name].instantiate(), fraction)
        for name in workloads
        for fraction in profiler.fractions
    ]


def _samples_of(
    results: Dict[str, float],
    name: str,
    fractions: Sequence[float],
) -> List[Tuple[float, float]]:
    times = [(f, results[f"profile:{name}:b={f:g}"]) for f in fractions]
    baseline = dict(times)[1.0]
    return [(f, t / baseline) for f, t in times]


def fig5_sweep_spec(
    workloads: Sequence[str] = ("SQL", "LR"),
    degrees: Sequence[int] = (1, 2, 3),
    method: str = "analytic",
) -> SweepSpec:
    """Figure 5's measurement grid as a sweep."""
    profiler = OfflineProfiler(method=method)
    workloads = tuple(workloads)
    degrees = tuple(degrees)

    def reduce_to_panels(results: Dict[str, float]) -> Dict[str, Fig5Panel]:
        panels: Dict[str, Fig5Panel] = {}
        for name in workloads:
            samples = _samples_of(results, name, profiler.fractions)
            models = {
                k: fit_sensitivity_model(name, samples, degree=k)
                for k in degrees
            }
            panels[name] = Fig5Panel(
                workload=name,
                samples=tuple(samples),
                models=models,
                r2={k: r_squared(m, samples) for k, m in models.items()},
            )
        return panels

    return SweepSpec(
        name="fig5",
        tasks=tuple(_profile_grid_tasks(profiler, workloads)),
        reduce=reduce_to_panels,
        config={"workloads": list(workloads), "degrees": list(degrees),
                "method": method},
    )


def run_fig5(
    workloads: Sequence[str] = ("SQL", "LR"),
    degrees: Sequence[int] = (1, 2, 3),
    method: str = "analytic",
    runner: Optional[SweepRunner] = None,
) -> Dict[str, Fig5Panel]:
    """Samples and fitted models for the Figure 5 panels."""
    runner = runner if runner is not None else default_runner()
    return runner.run(fig5_sweep_spec(workloads, degrees, method)).value


def fig6a_sweep_spec(
    degrees: Sequence[int] = (1, 2, 3),
    method: str = "analytic",
) -> SweepSpec:
    """Figure 6a's measurement grid as a sweep."""
    profiler = OfflineProfiler(method=method)
    degrees = tuple(degrees)
    names = tuple(CATALOG)

    def reduce_to_scores(
        results: Dict[str, float]
    ) -> Dict[str, Dict[int, float]]:
        scores: Dict[str, Dict[int, float]] = {}
        for name in names:
            samples = _samples_of(results, name, profiler.fractions)
            scores[name] = {
                k: r_squared(
                    fit_sensitivity_model(name, samples, degree=k), samples
                )
                for k in degrees
            }
        return scores

    return SweepSpec(
        name="fig6a",
        tasks=tuple(_profile_grid_tasks(profiler, names)),
        reduce=reduce_to_scores,
        config={"degrees": list(degrees), "method": method},
    )


def run_fig6a(
    degrees: Sequence[int] = (1, 2, 3),
    method: str = "analytic",
    runner: Optional[SweepRunner] = None,
) -> Dict[str, Dict[int, float]]:
    """R^2 per workload per polynomial degree (Figure 6a)."""
    runner = runner if runner is not None else default_runner()
    return runner.run(fig6a_sweep_spec(degrees, method)).value


def _predictive_r2(
    template,
    model: SensitivityModel,
    profiler: OfflineProfiler,
    dataset_scale: float = 1.0,
    n_instances: int = PROFILER_NODES,
) -> float:
    spec = template.instantiate(
        dataset_scale=dataset_scale, n_instances=n_instances
    )
    samples, _ = profiler.measure_samples(spec)
    return r_squared(model, samples)


def run_fig6b(
    scales: Sequence[float] = DATASET_SCALES,
    degree: int = 3,
    method: str = "analytic",
) -> Dict[str, Dict[float, float]]:
    """Predictive R^2 across runtime dataset sizes (Figure 6b)."""
    profiler = OfflineProfiler(method=method, degree=degree)
    scores: Dict[str, Dict[float, float]] = {}
    for name, template in CATALOG.items():
        model = profiler.profile(template).model
        scores[name] = {
            s: _predictive_r2(template, model, profiler, dataset_scale=s)
            for s in scales
        }
    return scores


def run_fig6c(
    multipliers: Sequence[float] = NODE_MULTIPLIERS,
    degree: int = 3,
    method: str = "analytic",
) -> Dict[str, Dict[float, float]]:
    """Predictive R^2 across runtime node counts (Figure 6c)."""
    profiler = OfflineProfiler(method=method, degree=degree)
    scores: Dict[str, Dict[float, float]] = {}
    for name, template in CATALOG.items():
        model = profiler.profile(template).model
        scores[name] = {}
        for m in multipliers:
            n = max(2, round(m * PROFILER_NODES))
            scores[name][m] = _predictive_r2(
                template, model, profiler, n_instances=n
            )
    return scores
