"""Figure 1: the motivation experiments (Section 2).

* :func:`run_fig1a` -- slowdown of each Table-1 workload at 75 % and
  25 % of link bandwidth, profiled in isolation on an 8-server pod.
* :func:`run_fig1b` -- LR and PR co-running under (1) per-flow max-min
  (the InfiniBand baseline) and (2) the *skewed* allocation that gives
  LR 75 % and PR 25 % of every port, implemented with two statically
  weighted queues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.baselines.infiniband import DEFAULT_COLLAPSE_ALPHA, InfiniBandBaseline
from repro.cluster.jobs import Job
from repro.cluster.runtime import CoRunExecutor, PolicySetup
from repro.core.profiler import OfflineProfiler
from repro.simnet.fabric import FluidFabric
from repro.simnet.fairness import LinkScheduler, WFQScheduler, fecn_collapse
from repro.simnet.flows import Flow
from repro.simnet.topology import single_switch
from repro.workloads.catalog import CATALOG, PROFILER_NODES


def run_fig1a(
    fractions: Sequence[float] = (0.75, 0.25),
    method: str = "simulate",
) -> Dict[str, Dict[float, float]]:
    """Slowdown per workload per bandwidth fraction (Figure 1a).

    Returns ``{workload: {fraction: slowdown}}``.
    """
    profiler = OfflineProfiler(fractions=fractions, method=method, degree=1)
    rows: Dict[str, Dict[float, float]] = {}
    for name, template in CATALOG.items():
        result = profiler.profile(template)
        rows[name] = {f: result.slowdown_at(f) for f in fractions}
    return rows


class _StaticSkewPolicy:
    """Two statically weighted queues (the Section 2.2 'Skewed' scheme)."""

    name = "skewed"

    def __init__(self, weights: Dict[str, float],
                 collapse_alpha: float = DEFAULT_COLLAPSE_ALPHA) -> None:
        self._weights = dict(weights)
        self._apps = sorted(self._weights)
        efficiency = fecn_collapse(collapse_alpha) if collapse_alpha else None
        self._scheduler = WFQScheduler(
            queue_of=self._queue_of,
            weight_of=self._weight_of,
            efficiency_fn=efficiency,
        )

    def _queue_of(self, flow: Flow) -> int:
        try:
            return self._apps.index(str(flow.app))
        except ValueError:
            return 0

    def _weight_of(self, queue: int) -> float:
        if queue >= len(self._apps):
            return 0.0
        return self._weights[self._apps[queue]]

    def attach(self, fabric: FluidFabric) -> None:
        for state in fabric.topology.link_states.values():
            state.efficiency_fn = None

    def scheduler_of(self, link_id: str) -> LinkScheduler:
        return self._scheduler

    def on_flow_started(self, flow: Flow) -> None:  # noqa: D102
        pass

    def on_flow_finished(self, flow: Flow) -> None:  # noqa: D102
        pass


@dataclass(frozen=True)
class Fig1bResult:
    """Slowdowns vs stand-alone execution under both schemes.

    ``standalone`` carries the absolute stand-alone completion times so
    callers can compare *average completion time* (the paper's actual
    objective) rather than the unweighted sum of slowdowns.
    """

    maxmin: Dict[str, float]
    skewed: Dict[str, float]
    standalone: Dict[str, float]

    def average_completion(self, scheme: str) -> float:
        ratios = self.maxmin if scheme == "maxmin" else self.skewed
        times = [ratios[n] * self.standalone[n] for n in ratios]
        return sum(times) / len(times)


def run_fig1b(
    skew: Tuple[float, float] = (0.75, 0.25),
    n_servers: int = PROFILER_NODES,
    collapse_alpha: float = DEFAULT_COLLAPSE_ALPHA,
) -> Fig1bResult:
    """LR + PR co-run: max-min vs the skewed allocation (Figure 1b)."""

    def jobs(topology):
        servers = topology.servers[:n_servers]
        return [
            Job("LR", CATALOG["LR"].instantiate(n_instances=n_servers),
                "LR", list(servers)),
            Job("PR", CATALOG["PR"].instantiate(n_instances=n_servers),
                "PR", list(servers)),
        ]

    def standalone(name: str) -> float:
        topo = single_switch(n_servers)
        spec = CATALOG[name].instantiate(n_instances=n_servers)
        job = Job(name, spec, name, topo.servers[:n_servers])
        executor = CoRunExecutor(
            topo,
            policy=PolicySetup(
                policy=InfiniBandBaseline(collapse_alpha=collapse_alpha)
            ),
        )
        return executor.run([job])[name].completion_time

    alone = {name: standalone(name) for name in ("LR", "PR")}

    def corun(setup: PolicySetup) -> Dict[str, float]:
        topo = single_switch(n_servers)
        executor = CoRunExecutor(topo, policy=setup)
        results = executor.run(jobs(topo))
        return {
            name: results[name].completion_time / alone[name]
            for name in ("LR", "PR")
        }

    return Fig1bResult(
        maxmin=corun(PolicySetup(
            policy=InfiniBandBaseline(collapse_alpha=collapse_alpha)
        )),
        skewed=corun(PolicySetup(
            policy=_StaticSkewPolicy({"LR": skew[0], "PR": skew[1]},
                                     collapse_alpha=collapse_alpha)
        )),
        standalone=alone,
    )
