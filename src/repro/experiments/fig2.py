"""Figure 2: CPU/network utilization timelines (Section 2.3).

Runs LR or PR in isolation at a given bandwidth fraction and returns
the per-server utilization series that the paper plots: LR alternates
clean computation and communication phases whose communication part
stretches as bandwidth shrinks, while PR overlaps transmission with
computation and stays compute-dominated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.baselines.maxmin import IdealMaxMin
from repro.cluster.jobs import Job
from repro.cluster.runtime import CoRunExecutor
from repro.simnet.telemetry import UtilizationRecorder
from repro.simnet.topology import single_switch
from repro.workloads.catalog import CATALOG, PROFILER_NODES


@dataclass(frozen=True)
class TimelineResult:
    """One Figure-2 panel."""

    workload: str
    bandwidth_fraction: float
    completion_time: float
    times: Tuple[float, ...]
    cpu: Tuple[float, ...]
    network: Tuple[float, ...]

    def mean_cpu(self) -> float:
        return sum(self.cpu) / len(self.cpu) if self.cpu else 0.0

    def mean_network(self) -> float:
        return sum(self.network) / len(self.network) if self.network else 0.0


def run_timeline(
    workload: str,
    bandwidth_fraction: float,
    n_servers: int = PROFILER_NODES,
    resolution: float = 0.5,
    server_index: int = 0,
) -> TimelineResult:
    """Utilization timeline of one server during an isolated run."""
    template = CATALOG[workload]
    topo = single_switch(n_servers)
    servers = topo.servers[:n_servers]
    topo.set_uniform_throttle(servers, bandwidth_fraction)
    recorder = UtilizationRecorder()
    executor = CoRunExecutor(topo, policy=IdealMaxMin(), recorder=recorder)
    spec = template.instantiate(n_instances=n_servers)
    job = Job(workload, spec, workload, list(servers))
    results = executor.run([job])
    completion = results[workload].completion_time
    server = servers[server_index]
    times, cpu = recorder.series(server, "cpu", t_end=completion,
                                 resolution=resolution)
    _, network = recorder.series(server, "network", t_end=completion,
                                 resolution=resolution)
    # Normalise network utilization to the *throttled* line rate, like
    # the paper's figure (which plots utilization of available BW).
    network = [min(1.0, u / bandwidth_fraction) for u in network]
    return TimelineResult(
        workload=workload,
        bandwidth_fraction=bandwidth_fraction,
        completion_time=completion,
        times=tuple(times),
        cpu=tuple(cpu),
        network=tuple(network),
    )


def run_fig2(
    workloads: Tuple[str, ...] = ("LR", "PR"),
    fractions: Tuple[float, ...] = (0.75, 0.25),
) -> Dict[Tuple[str, float], TimelineResult]:
    """All four panels of Figure 2."""
    return {
        (w, f): run_timeline(w, f) for w in workloads for f in fractions
    }
