"""Flow-size and popularity distributions for the storm generator.

Datacenter flow sizes are heavy-tailed: most transfers are short
RPC-style messages while a small fraction of elephants carries most of
the bytes (the regime fig10's Homa/Sincronia comparisons assume).  We
model sizes with a bounded Pareto -- a power law truncated to
``[lo, hi]`` so a single sample can never exceed what a scenario can
drain in bounded time.

App popularity is Zipf-skewed: a handful of hot applications originate
most connections.  ``ZipfPicker`` turns a Zipf(``s``) weight vector
over ``n`` apps into O(log n) deterministic draws via bisection on the
cumulative weights.
"""

from __future__ import annotations

import bisect
import itertools
import math
from dataclasses import dataclass
from random import Random
from typing import List


@dataclass(frozen=True)
class BoundedPareto:
    """Pareto(``alpha``) truncated to ``[lo, hi]`` via inverse CDF.

    >>> dist = BoundedPareto(alpha=1.2, lo=1e3, hi=1e6)
    >>> rng = Random(3)
    >>> all(1e3 <= dist.sample(rng) <= 1e6 for _ in range(100))
    True
    """

    alpha: float
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.alpha <= 0.0:
            raise ValueError(f"alpha must be > 0, got {self.alpha}")
        if not 0.0 < self.lo < self.hi:
            raise ValueError(
                f"need 0 < lo < hi, got lo={self.lo}, hi={self.hi}"
            )

    def sample(self, rng: Random) -> float:
        u = rng.random()
        la = self.lo ** self.alpha
        ha = self.hi ** self.alpha
        # Inverse CDF of the truncated Pareto.
        return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / self.alpha)

    def mean(self) -> float:
        """Closed-form mean of the truncated distribution."""
        a, lo, hi = self.alpha, self.lo, self.hi
        if a == 1.0:
            return lo * hi / (hi - lo) * math.log(hi / lo)
        num = (lo ** a) / (1.0 - (lo / hi) ** a)
        return num * (a / (a - 1.0)) * (lo ** (1.0 - a) - hi ** (1.0 - a))


def zipf_weights(n: int, s: float) -> List[float]:
    """Normalized Zipf(``s``) weights over ranks ``1..n``."""
    if n <= 0:
        raise ValueError(f"n must be > 0, got {n}")
    if s < 0.0:
        raise ValueError(f"s must be >= 0, got {s}")
    raw = [1.0 / (rank ** s) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


class ZipfPicker:
    """Draw indices ``0..n-1`` with Zipf(``s``) popularity.

    >>> picker = ZipfPicker(4, s=1.0)
    >>> rng = Random(11)
    >>> counts = [0] * 4
    >>> for _ in range(1000):
    ...     counts[picker.pick(rng)] += 1
    >>> counts[0] > counts[3]
    True
    """

    def __init__(self, n: int, s: float = 1.0) -> None:
        self.n = n
        self.s = s
        self.weights = zipf_weights(n, s)
        self._cum = list(itertools.accumulate(self.weights))
        self._cum[-1] = 1.0  # close the interval against rounding

    def pick(self, rng: Random) -> int:
        return bisect.bisect_left(self._cum, rng.random())
