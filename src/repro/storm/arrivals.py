"""Arrival processes for the storm generator.

Connections arrive open-loop: the arrival clock never waits for the
network, so a congested fabric sees queueing pressure exactly as a
production frontend would.  The process is a non-homogeneous Poisson
process whose instantaneous rate combines three ingredients:

* a **base rate** ``base_rate`` (arrivals per simulated second);
* an optional **diurnal modulation** -- a raised cosine with
  amplitude ``diurnal_amplitude`` in ``[0, 1)`` and period
  ``diurnal_period``, mimicking the day/night swing of datacenter
  traffic;
* zero or more scripted **flash crowds** -- multiplicative surges
  ``[start, start + duration)`` with factor ``multiplier``, the
  correlated-burst pattern that breaks allocators tuned on smooth
  averages.

Sampling uses Lewis & Shedler thinning against the peak rate: draw
candidate gaps from an exponential at ``peak_rate`` and accept each
candidate ``t`` with probability ``rate(t) / peak_rate``.  This is
exact for any bounded rate function and keeps the draw count (hence
determinism) a pure function of the RNG stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from random import Random
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class FlashCrowd:
    """A scripted arrival surge: rate is multiplied by ``multiplier``
    over ``[start, start + duration)``."""

    start: float
    duration: float
    multiplier: float

    def __post_init__(self) -> None:
        if self.start < 0.0:
            raise ValueError(f"flash crowd start must be >= 0, got {self.start}")
        if self.duration <= 0.0:
            raise ValueError(
                f"flash crowd duration must be > 0, got {self.duration}"
            )
        if self.multiplier < 1.0:
            raise ValueError(
                f"flash crowd multiplier must be >= 1, got {self.multiplier}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass(frozen=True)
class ArrivalSchedule:
    """Deterministic description of a non-homogeneous Poisson process.

    >>> sched = ArrivalSchedule(base_rate=100.0)
    >>> sched.rate(0.0)
    100.0
    >>> rng = Random(7)
    >>> t = sched.next_after(0.0, rng)
    >>> t > 0.0
    True
    """

    base_rate: float
    diurnal_amplitude: float = 0.0
    diurnal_period: float = 1.0
    flash_crowds: Tuple[FlashCrowd, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.base_rate <= 0.0:
            raise ValueError(f"base_rate must be > 0, got {self.base_rate}")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError(
                "diurnal_amplitude must be in [0, 1), got"
                f" {self.diurnal_amplitude}"
            )
        if self.diurnal_period <= 0.0:
            raise ValueError(
                f"diurnal_period must be > 0, got {self.diurnal_period}"
            )
        # Tuple-ify so configs built with lists stay hashable/frozen.
        object.__setattr__(self, "flash_crowds", tuple(self.flash_crowds))

    # -- rate function -----------------------------------------------------

    def diurnal_factor(self, t: float) -> float:
        """Raised-cosine day/night swing; 1.0 when amplitude is zero.

        The phase starts at the peak (t=0 is "noon") so short runs with
        modulation enabled still see above-base load.
        """
        if self.diurnal_amplitude == 0.0:
            return 1.0
        phase = 2.0 * math.pi * t / self.diurnal_period
        return 1.0 + self.diurnal_amplitude * math.cos(phase)

    def crowd_factor(self, t: float) -> float:
        factor = 1.0
        for crowd in self.flash_crowds:
            if crowd.active(t):
                factor *= crowd.multiplier
        return factor

    def rate(self, t: float) -> float:
        """Instantaneous arrival rate at simulated time ``t``."""
        return self.base_rate * self.diurnal_factor(t) * self.crowd_factor(t)

    @property
    def peak_rate(self) -> float:
        """Upper bound on ``rate`` over all t (thinning envelope)."""
        peak = self.base_rate * (1.0 + self.diurnal_amplitude)
        for crowd in self.flash_crowds:
            # Conservative: assume every crowd can overlap every other.
            peak *= crowd.multiplier
        return peak

    # -- sampling ----------------------------------------------------------

    def next_after(self, t: float, rng: Random) -> float:
        """Next arrival strictly after ``t`` (thinning against peak)."""
        peak = self.peak_rate
        while True:
            t += rng.expovariate(peak)
            if rng.random() * peak <= self.rate(t):
                return t

    def sample(self, until: float, rng: Random) -> List[float]:
        """All arrival times in ``(0, until]``, in order."""
        times: List[float] = []
        t = self.next_after(0.0, rng)
        while t <= until:
            times.append(t)
            t = self.next_after(t, rng)
        return times

    def expected_count(self, until: float, steps: int = 1024) -> float:
        """Trapezoidal estimate of the mean arrival count over
        ``(0, until]``; used for sizing sanity checks in tests."""
        if until <= 0.0:
            return 0.0
        h = until / steps
        total = 0.5 * (self.rate(0.0) + self.rate(until))
        for i in range(1, steps):
            total += self.rate(i * h)
        return total * h


def crowds_in_window(
    crowds: Sequence[FlashCrowd], start: float, end: float
) -> List[FlashCrowd]:
    """The crowds whose active window intersects ``[start, end)``."""
    return [c for c in crowds if c.start < end and c.end > start]
