"""Storm: open-loop production traffic + property-based fuzzing.

The evaluation grids (fig8/fig10, the extension studies) are fixed
and small; the paper's claims are about sustained, adversarial,
large-scale churn.  ``repro.storm`` supplies that stress surface:

* an **open-loop trace-style generator** (:mod:`repro.storm.scenario`)
  -- Poisson and diurnal-modulated connection arrivals, heavy-tailed
  flow sizes, Zipf-skewed app popularity, and scripted flash crowds --
  driving short connections through the coalescing fabric path and,
  in service mode, the :class:`~repro.service.AllocationService`
  front-end;
* **invariant checkers** (:mod:`repro.storm.invariants`) asserting
  physical and accounting properties of a live run: per-link rate sums
  within usable capacity, no starved flows, work conservation, and
  service-quota conservation (``admitted + rejected == offered``, no
  state leaked by rejected or failed requests);
* a **property-based scenario fuzzer** (:mod:`repro.storm.fuzz`) that
  samples thousands of random :class:`StormConfig` scenarios from a
  seed, runs each through the same
  :func:`~repro.experiments.common.build_scenario` path the pinned
  experiments use, checks every invariant, and (for small scenarios)
  re-runs with full solves and with the vectorized backend to assert
  solver equivalence.  Campaigns are :mod:`repro.sweep` sweeps:
  per-task seeds derive from the campaign seed, verdicts are
  picklable, and the content-addressed cache makes re-runs free.

Every scenario is deterministic in its seed: ``python -m repro storm
fuzz --seed S --count N`` always produces the same scenarios and the
same verdicts, and any failure reproduces from its printed seed alone.
"""

from repro.storm.arrivals import ArrivalSchedule, FlashCrowd
from repro.storm.sizes import BoundedPareto, ZipfPicker, zipf_weights
from repro.storm.scenario import (
    PRESETS,
    StormConfig,
    StormReport,
    run_storm,
)
from repro.storm.invariants import (
    InvariantViolation,
    check_fabric,
    check_service,
)
from repro.storm.fuzz import (
    fuzz_one,
    fuzz_sweep_spec,
    run_fuzz_campaign,
    sample_config,
)

__all__ = [
    "ArrivalSchedule",
    "FlashCrowd",
    "BoundedPareto",
    "ZipfPicker",
    "zipf_weights",
    "PRESETS",
    "StormConfig",
    "StormReport",
    "run_storm",
    "InvariantViolation",
    "check_fabric",
    "check_service",
    "fuzz_one",
    "fuzz_sweep_spec",
    "run_fuzz_campaign",
    "sample_config",
]
