"""Property-based scenario fuzzing over :class:`StormConfig`.

:func:`sample_config` maps a single integer seed to one random storm
scenario -- topology, policy, fabric solver path, arrival process,
size/skew distributions, teardown races, and (in service mode)
admission quotas are all drawn from a :class:`random.Random` seeded by
that integer alone, so any failing scenario reproduces from its
printed seed.

:func:`fuzz_one` runs one sampled scenario and returns a picklable
verdict: the invariant violations its probes recorded, plus -- for
scenarios small enough -- a solver-equivalence audit that re-runs the
identical traffic with full (non-incremental) solves and with the
alternate solver backend and requires per-flow completion times to
agree to 1e-9 relative.

Campaigns are :mod:`repro.sweep` sweeps (:func:`fuzz_sweep_spec`):
per-scenario seeds derive from the campaign seed via
:func:`~repro.sweep.derive_seed`, tasks fan out over worker processes,
results land in the content-addressed cache, and the reduction
aggregates verdicts in task order -- ``--jobs 8`` and ``--jobs 1``
produce the same campaign report.
"""

from __future__ import annotations

import dataclasses
from random import Random
from typing import Any, Dict, List, Mapping, Optional

from repro.baselines.infiniband import DEFAULT_COLLAPSE_ALPHA
from repro.experiments.common import ScenarioSpec
from repro.storm.arrivals import FlashCrowd
from repro.storm.invariants import (
    InvariantViolation,
    check_completions_agree,
)
from repro.storm.scenario import (
    StormConfig,
    equivalence_configs,
    run_storm,
)
from repro.storm.sizes import BoundedPareto
from repro.sweep import SweepSpec, Task, derive_seed
from repro.units import GBPS_56

#: Scenarios whose base run injected more flows than this skip the
#: solver-equivalence re-runs (which triple a scenario's cost); the
#: campaign report counts how many were skipped.
EQUIV_MAX_FLOWS = 350

#: Raw-fabric policies the fuzzer samples.  Strict-priority policies
#: may legitimately gate flows to zero rate, so the starvation probe
#: is disabled for them (work conservation still applies).
_FABRIC_POLICIES = ("baseline", "ideal", "homa", "sincronia")
_PRIORITY_POLICIES = ("homa", "sincronia")


def _sample_topology(rng: Random, mode: str) -> Dict[str, Any]:
    roll = rng.random()
    if mode == "service" or roll < 0.5:
        return {
            "topology": "single_switch",
            "topology_kwargs": {"n_servers": rng.randint(4, 16)},
        }
    if roll < 0.8:
        return {"topology": "fat_tree", "topology_kwargs": {"k": 4}}
    return {
        "topology": "spine_leaf",
        "topology_kwargs": {
            "n_spine": 2, "n_leaf": 4, "n_tor": 4,
            "servers_per_tor": rng.randint(2, 4),
        },
    }


def _server_count(topo: Mapping[str, Any]) -> int:
    kwargs = topo["topology_kwargs"]
    if topo["topology"] == "single_switch":
        return int(kwargs["n_servers"])
    if topo["topology"] == "fat_tree":
        return int(kwargs["k"]) ** 3 // 4
    return int(kwargs["n_tor"]) * int(kwargs["servers_per_tor"])


def _sample_sizes(
    rng: Random, topo: Mapping[str, Any], base_rate: float,
) -> Dict[str, float]:
    """Flow-size distribution scaled to a target per-link load.

    Absolute sizes mean nothing on their own: what stresses the
    allocator is the *offered load* relative to link capacity.  We
    sample a utilization target and back out the mean flow size that
    produces it at the sampled arrival rate, then shape the
    heavy-tailed distribution around that mean.
    """
    rho = rng.uniform(0.3, 1.2)
    alpha = rng.uniform(1.05, 1.9)
    ratio = rng.uniform(20.0, 300.0)
    mean_target = rho * GBPS_56 * _server_count(topo) / base_rate
    unit_mean = BoundedPareto(alpha, 1.0, ratio).mean()
    lo = mean_target / unit_mean
    return {"size_alpha": alpha, "size_lo": lo, "size_hi": lo * ratio}


def sample_config(seed: int) -> StormConfig:
    """One random storm scenario, a pure function of ``seed``."""
    rng = Random(f"storm-fuzz:{seed}")
    mode = "service" if rng.random() < 0.4 else "fabric"
    topo = _sample_topology(rng, mode)
    if mode == "service":
        policy = "saba"
        collapse_alpha = DEFAULT_COLLAPSE_ALPHA
        base_rate = rng.uniform(20.0, 90.0)
    else:
        policy = rng.choice(_FABRIC_POLICIES)
        collapse_alpha = (
            DEFAULT_COLLAPSE_ALPHA if rng.random() < 0.5 else None
        )
        base_rate = rng.uniform(40.0, 220.0)
    spec = ScenarioSpec(
        policy=policy,
        collapse_alpha=collapse_alpha,
        completion_quantum=0.0,
        incremental=rng.random() < 0.7,
        solver_backend=rng.choice(("object", "vector")),
        **topo,
    )
    duration = rng.uniform(0.3, 1.0)
    sizes = _sample_sizes(rng, topo, base_rate)
    diurnal = rng.random() < 0.5
    crowds: List[FlashCrowd] = []
    for _ in range(rng.randint(0, 2)):
        crowds.append(FlashCrowd(
            start=rng.uniform(0.0, 0.7) * duration,
            duration=rng.uniform(0.05, 0.25) * duration,
            multiplier=rng.uniform(2.0, 5.0),
        ))
    quotas: Dict[str, Optional[int]] = {
        "quota_apps_per_tenant": None,
        "quota_conns_per_app": None,
        "quota_conns_per_tenant": None,
        "quota_queue_depth": None,
    }
    destroy_fraction = 0.0
    destroy_delay = 0.05
    if mode == "service":
        if rng.random() < 0.3:
            quotas["quota_apps_per_tenant"] = rng.randint(2, 8)
        if rng.random() < 0.5:
            quotas["quota_conns_per_app"] = rng.randint(4, 40)
        if rng.random() < 0.5:
            quotas["quota_conns_per_tenant"] = rng.randint(16, 120)
        if rng.random() < 0.5:
            quotas["quota_queue_depth"] = rng.randint(8, 64)
    if rng.random() < 0.6:
        destroy_fraction = rng.uniform(0.05, 0.35)
        destroy_delay = rng.uniform(0.01, 0.15)
    # Sampled last so every pre-existing fuzz seed still maps to the
    # scenario it always did (pinned regression seeds stay valid), now
    # crossed with an incidence backend.  "auto" resolves to the array
    # index under the vector solver, so the array path is exercised
    # both explicitly and through the default dispatch.
    spec = dataclasses.replace(
        spec, incidence_backend=rng.choice(("auto", "array", "object")),
    )
    return StormConfig(
        spec=spec,
        mode=mode,
        seed=seed,
        duration=duration,
        base_rate=base_rate,
        diurnal_amplitude=rng.uniform(0.2, 0.8) if diurnal else 0.0,
        diurnal_period=rng.uniform(0.5, 1.0) * duration if diurnal else 1.0,
        flash_crowds=tuple(crowds),
        zipf_s=rng.uniform(0.0, 1.5),
        **sizes,
        n_apps=rng.randint(2, 10),
        n_tenants=rng.randint(1, 3),
        destroy_fraction=destroy_fraction,
        destroy_delay=destroy_delay,
        n_probes=rng.randint(2, 5),
        check_starvation=policy not in _PRIORITY_POLICIES,
        **quotas,
    )


def fuzz_one(seed: int, equivalence: bool = True) -> Dict[str, Any]:
    """Run the scenario ``seed`` samples; returns a picklable verdict.

    Module-level (sweep workers import it by name).  Never raises on a
    finding -- violations, including solver disagreement, land in the
    verdict so the campaign completes and aggregates them.
    """
    config = sample_config(seed)
    report = run_storm(config)
    violations = list(report.violations)
    equiv: Dict[str, Any] = {}
    run_equiv = (
        equivalence
        and report.injected <= EQUIV_MAX_FLOWS
        and not any(
            v["invariant"] == "simulation_error" for v in violations
        )
    )
    if run_equiv:
        for name, variant in sorted(equivalence_configs(config).items()):
            try:
                other = run_storm(variant, check=False)
                equiv[name] = check_completions_agree(
                    report.completions, other.completions,
                    names=f"base/{name}",
                )
            except InvariantViolation as exc:
                equiv[name] = None
                violations.append({
                    "invariant": exc.name,
                    "detail": f"{name}: {exc.detail}",
                    "time": report.horizon,
                })
    return {
        "seed": seed,
        "mode": config.mode,
        "policy": config.spec.policy,
        "topology": config.spec.topology,
        "offered": report.offered,
        "injected": report.injected,
        "completed": report.completed,
        "cancelled": report.cancelled,
        "max_active": report.max_active,
        "equivalence": equiv if run_equiv else None,
        "violations": violations,
        "ok": not violations,
    }


def _reduce_campaign(values: Mapping[str, Any]) -> Dict[str, Any]:
    """Aggregate per-scenario verdicts into the campaign report."""
    verdicts = list(values.values())
    failures = [v for v in verdicts if not v["ok"]]
    by_invariant: Dict[str, int] = {}
    by_mode: Dict[str, int] = {}
    equiv_checked = 0
    for v in verdicts:
        by_mode[v["mode"]] = by_mode.get(v["mode"], 0) + 1
        if v["equivalence"] is not None:
            equiv_checked += 1
        for violation in v["violations"]:
            name = violation["invariant"]
            by_invariant[name] = by_invariant.get(name, 0) + 1
    return {
        "scenarios": len(verdicts),
        "passed": len(verdicts) - len(failures),
        "failed": len(failures),
        "by_mode": dict(sorted(by_mode.items())),
        "equivalence_checked": equiv_checked,
        "by_invariant": dict(sorted(by_invariant.items())),
        "failures": failures[:50],
        "failing_seeds": [v["seed"] for v in failures],
    }


def fuzz_sweep_spec(
    count: int,
    base_seed: int = 0,
    equivalence: bool = True,
) -> SweepSpec:
    """The fuzz campaign as a sweep: one task per scenario.

    Scenario seeds derive from ``(base_seed, index)`` via SHA-256, so
    the campaign is reproducible and each scenario independently
    cacheable.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    tasks = tuple(
        Task(
            name=f"storm:fuzz:{base_seed}:{i}",
            fn=fuzz_one,
            params={"equivalence": equivalence},
            seed=derive_seed(base_seed, f"storm:{i}"),
        )
        for i in range(count)
    )
    return SweepSpec(
        name="storm-fuzz",
        tasks=tasks,
        reduce=_reduce_campaign,
        config={
            "count": count, "base_seed": base_seed,
            "equivalence": equivalence,
        },
    )


def run_fuzz_campaign(
    count: int,
    base_seed: int = 0,
    runner=None,
    equivalence: bool = True,
) -> Dict[str, Any]:
    """Run a fuzz campaign; returns the aggregated campaign report."""
    from repro.sweep import default_runner

    if runner is None:
        runner = default_runner()
    spec = fuzz_sweep_spec(count, base_seed=base_seed,
                           equivalence=equivalence)
    return runner.run(spec).value


__all__ = [
    "EQUIV_MAX_FLOWS",
    "fuzz_one",
    "fuzz_sweep_spec",
    "run_fuzz_campaign",
    "sample_config",
]
