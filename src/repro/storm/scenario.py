"""The storm scenario: one open-loop traffic run plus its probes.

A :class:`StormConfig` is a frozen, picklable description of one
generated-traffic run: the :class:`~repro.experiments.common.
ScenarioSpec` it is built on (topology, policy, fabric configuration),
the arrival process (Poisson base rate, diurnal modulation, flash
crowds), the size/popularity distributions, the teardown race knobs,
and -- in service mode -- admission quotas.  :func:`run_storm` builds
the scenario through the same :func:`~repro.experiments.common.
build_scenario` path the pinned experiments use, drives connections
through it open-loop, probes the fabric invariants at evenly spaced
instants, and returns a :class:`StormReport`.

Two modes:

* ``"fabric"`` -- flows are injected straight into the fabric
  (:meth:`FluidFabric.start_flow`), exercising the data-plane solver
  under any raw :class:`FabricPolicy` (baseline, ideal max-min, Homa,
  Sincronia);
* ``"service"`` -- connections go through a full Saba control plane
  fronted by an :class:`~repro.service.AllocationService`: apps
  register (Zipf-popular), every ``conn_create``/``conn_destroy`` is
  admission-controlled against quotas, and the client counts every
  request it issues so the service's admission accounting can be
  audited (``admitted + rejected == offered``).

Teardowns are scheduled ``destroy_delay`` after creation for a random
``destroy_fraction`` of connections, *without* checking whether the
connection is still alive -- exactly the race a real client loses when
its transfer finishes while the teardown RPC is in flight.  The
service must account such requests like any other.

Determinism: every random stream is seeded from ``config.seed`` alone
and consumed in simulated-event order, and flow ids are reset per run,
so two runs of one config are bit-identical -- including across solver
backends, which is what the fuzzer's equivalence check relies on.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass, field
from functools import lru_cache
from random import Random
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.core.profiler import OfflineProfiler
from repro.core.table import SensitivityTable
from repro.errors import RegistrationError, ServiceError, SimulationError
from repro.experiments.common import ScenarioSpec, build_scenario, make_policy
from repro.obs.events import (
    NULL_OBSERVER,
    Observer,
    STORM_FINISHED,
    STORM_FLASH_CROWD,
    STORM_STARTED,
    STORM_VIOLATION,
)
from repro.service import AllocationService, ServiceConnections, ServiceQuotas
from repro.simnet.flows import Flow, reset_flow_ids
from repro.storm.arrivals import ArrivalSchedule, FlashCrowd
from repro.storm.invariants import (
    InvariantViolation,
    check_fabric,
    check_service,
    completions_of,
    violation_record,
)
from repro.storm.sizes import BoundedPareto, ZipfPicker
from repro.units import GB, MB
from repro.workloads.catalog import CATALOG, PROFILER_NODES

#: Workloads storm apps register as (service mode).  A small fixed
#: subset of Table 1 keeps the memoized sensitivity table cheap while
#: covering the sensitivity spectrum (NW-bound LR/SQL, insensitive PR,
#: shuffle-heavy Sort).
STORM_WORKLOADS: Tuple[str, ...] = ("LR", "SQL", "PR", "Sort")


@lru_cache(maxsize=1)
def storm_table() -> SensitivityTable:
    """Sensitivity table for :data:`STORM_WORKLOADS`.

    Profiled with the cheap analytic method and memoized per process:
    the fuzzer builds thousands of scenarios and must not re-profile
    (or hit the sweep cache) for each one.
    """
    profiler = OfflineProfiler(degree=3, method="analytic")
    table = SensitivityTable()
    for name in STORM_WORKLOADS:
        spec = CATALOG[name].instantiate(n_instances=PROFILER_NODES)
        table.add(profiler.profile_spec(spec).model)
    return table


@dataclass(frozen=True)
class StormConfig:
    """One storm run, fully determined by its fields (see module doc).

    ``spec`` supplies topology/policy/fabric configuration; in service
    mode its ``policy`` must be ``"saba"`` (the control plane under
    test).  Quota fields follow :class:`ServiceQuotas` (``None`` =
    unlimited) and only apply in service mode.
    """

    spec: ScenarioSpec = field(
        default_factory=lambda: ScenarioSpec(
            topology_kwargs={"n_servers": 8}, completion_quantum=0.0,
        )
    )
    mode: str = "fabric"
    seed: int = 0
    duration: float = 1.0
    base_rate: float = 100.0
    diurnal_amplitude: float = 0.0
    diurnal_period: float = 1.0
    flash_crowds: Tuple[FlashCrowd, ...] = ()
    size_alpha: float = 1.3
    size_lo: float = 32 * MB
    size_hi: float = 2 * GB
    zipf_s: float = 1.0
    n_apps: int = 8
    n_tenants: int = 2
    destroy_fraction: float = 0.0
    destroy_delay: float = 0.05
    n_probes: int = 4
    quota_apps_per_tenant: Optional[int] = None
    quota_conns_per_app: Optional[int] = None
    quota_conns_per_tenant: Optional[int] = None
    quota_queue_depth: Optional[int] = None
    check_conservation: bool = True
    check_starvation: bool = True

    def __post_init__(self) -> None:
        if self.mode not in ("fabric", "service"):
            raise ValueError(f"unknown storm mode {self.mode!r}")
        if self.mode == "service" and self.spec.policy != "saba":
            raise ValueError(
                "service mode drives the saba control plane; got policy "
                f"{self.spec.policy!r}"
            )
        if self.duration <= 0.0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if self.n_apps < 1:
            raise ValueError(f"n_apps must be >= 1, got {self.n_apps}")
        if self.n_tenants < 1:
            raise ValueError(f"n_tenants must be >= 1, got {self.n_tenants}")
        if not 0.0 <= self.destroy_fraction <= 1.0:
            raise ValueError(
                f"destroy_fraction must be in [0, 1], got "
                f"{self.destroy_fraction}"
            )
        if self.destroy_delay <= 0.0:
            raise ValueError(
                f"destroy_delay must be > 0, got {self.destroy_delay}"
            )
        if self.n_probes < 0:
            raise ValueError(f"n_probes must be >= 0, got {self.n_probes}")
        object.__setattr__(self, "flash_crowds", tuple(self.flash_crowds))

    def schedule(self) -> ArrivalSchedule:
        return ArrivalSchedule(
            base_rate=self.base_rate,
            diurnal_amplitude=self.diurnal_amplitude,
            diurnal_period=self.diurnal_period,
            flash_crowds=self.flash_crowds,
        )

    def quotas(self) -> ServiceQuotas:
        return ServiceQuotas(
            max_apps_per_tenant=self.quota_apps_per_tenant,
            max_conns_per_app=self.quota_conns_per_app,
            max_conns_per_tenant=self.quota_conns_per_tenant,
            max_queue_depth=self.quota_queue_depth,
        )

    def app_ids(self) -> List[str]:
        """Tenant-prefixed app identities, Zipf rank order."""
        return [
            f"t{i % self.n_tenants}/app{i:02d}" for i in range(self.n_apps)
        ]

    def config(self) -> Dict[str, object]:
        """JSON-friendly form (sweep configs, reports)."""
        out: Dict[str, object] = {"spec": self.spec.config()}
        for f in dataclasses.fields(self):
            if f.name == "spec":
                continue
            value = getattr(self, f.name)
            if f.name == "flash_crowds":
                value = [dataclasses.asdict(c) for c in value]
            out[f.name] = value
        return out


@dataclass
class StormReport:
    """What one storm run offered, what survived, and what broke.

    ``offered``/``admitted``/``rejected`` are the *client-side* counts
    of admission-controlled requests (service mode; zero in fabric
    mode, where ``injected`` counts raw flow starts).  ``completed``
    counts flows the fabric finished (teardowns included);
    ``cancelled`` counts successful early teardowns.  ``violations``
    holds one record per failed invariant probe; an empty list is a
    passing run.  ``completions`` (finish time per flow id) is carried
    for equivalence checks and is not serialized; ``wall_seconds`` is
    host wall-clock time and is likewise left out of the JSON so
    reports stay byte-stable across machines.
    """

    config: Dict[str, object]
    offered: int
    admitted: int
    rejected: int
    injected: int
    completed: int
    cancelled: int
    max_active: int
    horizon: float
    violations: List[Dict[str, object]]
    accounting: Optional[Dict[str, int]] = None
    completions: Dict[int, float] = field(default_factory=dict, repr=False)
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def flows_per_sec(self) -> float:
        """Completed flows per host wall-clock second (generator
        throughput; the open-loop analogue of the hyperscale bench's
        figure)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.completed / self.wall_seconds

    def to_json(self) -> Dict[str, object]:
        return {
            "config": self.config,
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "injected": self.injected,
            "completed": self.completed,
            "cancelled": self.cancelled,
            "max_active": self.max_active,
            "horizon": round(self.horizon, 4),
            "ok": self.ok,
            "violations": self.violations,
            "accounting": self.accounting,
        }

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)


def equivalence_configs(config: StormConfig) -> Dict[str, StormConfig]:
    """The solver-path variants a run must agree with bit-for-bit.

    ``full_solve`` disables incremental (per-component) solving;
    ``alt_backend`` flips between the object and vectorized kernels;
    ``alt_incidence`` flips the flow<->link index between the object
    ``FlowIncidence`` and the array-native ``ArrayIncidence`` (pinning
    the persistent-CSR maintenance -- slot recycling, adjacency
    compaction, remap -- against the reference implementation under
    real churn).  Everything else -- seeds, arrivals, teardowns -- is
    unchanged, so per-flow completion times must match to 1e-9
    relative.
    """
    spec = config.spec
    alt = "object" if spec.solver_backend == "vector" else "vector"
    # Mirror FluidFabric's "auto" dispatch to find what the base run
    # resolved to, then force the other index.
    resolved_array = spec.incidence_backend == "array" or (
        spec.incidence_backend == "auto"
        and spec.solver_backend in ("auto", "vector")
    )
    alt_incidence = "object" if resolved_array else "array"
    return {
        "full_solve": dataclasses.replace(
            config,
            spec=dataclasses.replace(spec, incremental=not spec.incremental),
        ),
        "alt_backend": dataclasses.replace(
            config, spec=dataclasses.replace(spec, solver_backend=alt),
        ),
        "alt_incidence": dataclasses.replace(
            config,
            spec=dataclasses.replace(
                spec, incidence_backend=alt_incidence,
            ),
        ),
    }


def run_storm(
    config: StormConfig,
    observer: Optional[Observer] = None,
    check: bool = True,
) -> StormReport:
    """Run one storm scenario to completion; never raises on an
    invariant violation -- probes record violations in the report so a
    fuzz campaign can keep going (and so one scenario can accumulate
    several findings)."""
    reset_flow_ids()
    spec = config.spec
    obs = observer if observer is not None else NULL_OBSERVER
    violations: List[Dict[str, object]] = []

    service: Optional[AllocationService] = None
    if config.mode == "service":
        setup = make_policy(
            spec.policy, table=storm_table(),
            collapse_alpha=spec.collapse_alpha, observer=observer,
            **dict(spec.policy_kwargs),
        )
        services: List[AllocationService] = []

        def factory(fabric):
            svc = AllocationService(
                fabric, setup.controller, quotas=config.quotas(),
                observer=fabric.observer,
            )
            services.append(svc)
            return ServiceConnections(svc)

        scenario = build_scenario(
            spec, setup=setup, connections_factory=factory,
            observer=observer,
        )
        service = services[0]
    else:
        table = (
            storm_table() if spec.policy.startswith("saba") else None
        )
        scenario = build_scenario(spec, table=table, observer=observer)

    fabric = scenario.fabric
    sim = fabric.sim
    servers = list(scenario.topology.servers)
    if len(servers) < 2:
        raise ValueError("storm needs a topology with >= 2 servers")

    schedule = config.schedule()
    sizes = BoundedPareto(config.size_alpha, config.size_lo, config.size_hi)
    picker = ZipfPicker(config.n_apps, config.zipf_s)
    # Independent streams: the arrival clock must not shift when a
    # body knob (sizes, destroy fraction) changes, and vice versa.
    arr_rng = Random(f"storm:{config.seed}:arrivals")
    body_rng = Random(f"storm:{config.seed}:body")

    state = {
        "offered": 0, "admitted": 0, "rejected": 0, "injected": 0,
        "active": 0, "max_active": 0, "cancelled": 0,
    }
    live: Set[int] = set()
    app_ids = config.app_ids()
    workload_of = {
        app: STORM_WORKLOADS[i % len(STORM_WORKLOADS)]
        for i, app in enumerate(app_ids)
    }

    if obs.enabled:
        obs.emit(
            STORM_STARTED, 0.0, mode=config.mode, policy=spec.policy,
            seed=config.seed, duration=config.duration,
            base_rate=config.base_rate,
        )
        for crowd in schedule.flash_crowds:
            def mark(c: FlashCrowd = crowd) -> None:
                obs.emit(
                    STORM_FLASH_CROWD, sim.now, duration=c.duration,
                    multiplier=c.multiplier,
                )
            sim.schedule_at(crowd.start, mark)

    if service is not None:
        for app in app_ids:
            state["offered"] += 1
            try:
                service.register_app(app, workload_of[app])
                state["admitted"] += 1
            except ServiceError:
                state["rejected"] += 1

    def on_complete(flow: Flow) -> None:
        state["active"] -= 1
        live.discard(flow.flow_id)

    def teardown(fid: int) -> None:
        if service is not None:
            # Open-loop: the client does not know whether the transfer
            # already finished -- the service must account the request
            # either way.
            state["offered"] += 1
            try:
                service.conn_destroy(fid)
                state["admitted"] += 1
                state["cancelled"] += 1
            except ServiceError:
                state["rejected"] += 1
        elif fid in live:
            fabric.cancel_flow(fid)
            state["cancelled"] += 1

    def inject() -> None:
        now = sim.now
        app = app_ids[picker.pick(body_rng)]
        src_i = body_rng.randrange(len(servers))
        dst_i = body_rng.randrange(len(servers) - 1)
        if dst_i >= src_i:
            dst_i += 1
        size = sizes.sample(body_rng)
        destroy = body_rng.random() < config.destroy_fraction
        flow: Optional[Flow] = None
        if service is not None:
            state["offered"] += 1
            try:
                flow = service.conn_create(
                    app, servers[src_i], servers[dst_i], size,
                    on_complete=on_complete,
                )
                state["admitted"] += 1
            except (RegistrationError, ServiceError):
                # RegistrationError: the app's own registration was
                # quota-rejected earlier; the service admitted this
                # request before the library refused it, which is the
                # documented accounting (admitted, no state change).
                state["rejected"] += 1
        else:
            flow = fabric.start_flow(
                Flow(src=servers[src_i], dst=servers[dst_i], size=size,
                     app=app),
                on_complete=on_complete,
            )
        if flow is not None:
            state["injected"] += 1
            state["active"] += 1
            state["max_active"] = max(state["max_active"], state["active"])
            live.add(flow.flow_id)
            if destroy:
                sim.schedule_at(
                    now + config.destroy_delay,
                    lambda fid=flow.flow_id: teardown(fid),
                )
        t_next = schedule.next_after(now, arr_rng)
        if t_next <= config.duration:
            sim.schedule_at(t_next, inject)

    t0 = schedule.next_after(0.0, arr_rng)
    if t0 <= config.duration:
        sim.schedule_at(t0, inject)

    def record(exc: InvariantViolation) -> None:
        violations.append(violation_record(exc, sim.now))
        if obs.enabled:
            obs.emit(
                STORM_VIOLATION, sim.now, invariant=exc.name,
                detail=exc.detail,
            )

    def probe_fabric() -> None:
        try:
            check_fabric(
                fabric,
                conservation=config.check_conservation,
                no_starvation=config.check_starvation,
            )
        except InvariantViolation as exc:
            record(exc)

    horizon = 0.0
    probe_times = [
        config.duration * (i + 1) / config.n_probes
        for i in range(config.n_probes)
    ]
    wall_start = time.perf_counter()
    try:
        for t in probe_times:
            horizon = fabric.run(until=t)
            if check:
                probe_fabric()
                if service is not None:
                    try:
                        check_service(service, state["offered"])
                    except InvariantViolation as exc:
                        record(exc)
        horizon = fabric.run()
    except SimulationError as exc:
        record(InvariantViolation("simulation_error", str(exc)))

    if check and service is not None:
        try:
            check_service(service, state["offered"], expect_idle=True)
        except InvariantViolation as exc:
            record(exc)

    report = StormReport(
        config=config.config(),
        offered=state["offered"],
        admitted=state["admitted"],
        rejected=state["rejected"],
        injected=state["injected"],
        completed=len(fabric.completed),
        cancelled=state["cancelled"],
        max_active=state["max_active"],
        horizon=horizon,
        violations=violations,
        accounting=service.accounting() if service is not None else None,
        completions=completions_of(fabric),
        wall_seconds=time.perf_counter() - wall_start,
    )
    if obs.enabled:
        obs.emit(
            STORM_FINISHED, horizon, offered=report.offered,
            injected=report.injected, completed=report.completed,
            cancelled=report.cancelled, ok=report.ok,
            violations=len(report.violations),
        )
    return report


#: Named storm scenarios for ``python -m repro storm run``.
PRESETS: Mapping[str, StormConfig] = {
    # Steady Poisson load through the raw fabric path.
    "smoke": StormConfig(
        spec=ScenarioSpec(
            topology_kwargs={"n_servers": 8}, completion_quantum=0.0,
        ),
        seed=1, duration=0.5, base_rate=150.0,
        size_lo=56 * MB, size_hi=3 * GB,
    ),
    # Diurnal swing with two flash crowds on a fat-tree under Homa.
    "flash": StormConfig(
        spec=ScenarioSpec(
            topology="fat_tree", topology_kwargs={"k": 4},
            policy="homa", completion_quantum=0.0,
        ),
        seed=2, duration=1.0, base_rate=120.0,
        size_lo=160 * MB, size_hi=6 * GB, size_alpha=1.4,
        diurnal_amplitude=0.5, diurnal_period=1.0,
        flash_crowds=(
            FlashCrowd(start=0.25, duration=0.15, multiplier=4.0),
            FlashCrowd(start=0.7, duration=0.1, multiplier=3.0),
        ),
        check_starvation=False,
    ),
    # The full control plane: quotas, teardown races, admission audit.
    "service": StormConfig(
        spec=ScenarioSpec(
            topology_kwargs={"n_servers": 12}, policy="saba",
            completion_quantum=0.0,
        ),
        mode="service", seed=3, duration=1.0, base_rate=60.0,
        size_lo=200 * MB, size_hi=6 * GB,
        n_apps=6, n_tenants=2, destroy_fraction=0.25, destroy_delay=0.03,
        quota_conns_per_app=24, quota_conns_per_tenant=64,
        quota_queue_depth=32,
    ),
}


__all__ = [
    "PRESETS",
    "STORM_WORKLOADS",
    "StormConfig",
    "StormReport",
    "equivalence_configs",
    "run_storm",
    "storm_table",
]
