"""Run-time invariants a healthy allocation stack must uphold.

These checkers read live state through the fabric's read-only hooks
(:meth:`~repro.simnet.fabric.FluidFabric.link_members` /
``link_used_rate`` / ``link_usable_capacity``) and the service's
:meth:`~repro.service.AllocationService.accounting` snapshot; none of
them mutates anything, so a probe mid-run cannot perturb the run it
is checking.

Fabric invariants (checked at every storm probe point):

* **sane rates** -- no flow has a negative or NaN rate, and no flow
  exceeds its application ``rate_cap``;
* **capacity** -- on every link, the sum of member-flow rates equals
  the fabric's cached accumulator and stays within the scheduler's
  usable capacity;
* **work conservation** -- every flow below its demand limit is
  bottlenecked: some link on its path is saturated.  Leftover
  bandwidth with an unsatisfied flow means the allocator left work on
  the table;
* **no starvation** (weight-fair policies only) -- every in-flight
  flow makes progress.  Strict-priority baselines (Homa, Sincronia)
  legitimately gate low-priority flows to zero behind a saturated
  link, so the storm fuzzer disables this probe for them and relies
  on work conservation instead.

For *component-unsafe* policies (``fabric._component_safe`` False:
Homa, Sincronia), a link's usable capacity depends on the flows'
*remaining* bytes, which drain continuously between events while
rates are held piecewise-constant -- so usable capacity read at a
probe instant legitimately differs from its value at the last solve
(verified: a forced re-solve at the probe instant is exactly
work-conserving).  The usable-capacity-relative checks (over-capacity
and work conservation) would report that drift as violations, so for
those policies they degrade to a line-rate bound; the drift-free
checks (rate sanity, accumulator consistency, starvation) still
apply.

Service invariants (checked once per run against a client-side
request count):

* **conservation of requests** -- every request the client issued was
  counted exactly once: ``admitted + rejected == offered``;
* **index agreement** -- the per-app, per-tenant, and per-flow open
  connection indexes agree (a rejected or failed request must leak no
  state into any of them);
* **quiescence** -- after the run drains, no connection remains open.

Solver equivalence re-runs a scenario with full (non-incremental)
solves and with the vectorized backend and requires identical
completion sets with per-flow finish times agreeing to ``1e-9``
relative -- the same threshold the solver bench enforces.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.simnet.fabric import FluidFabric

#: Relative tolerance for the physical checks; matches the fabric's
#: internal ``validate`` slack.
REL_TOL = 1e-6

#: Slack (relative to the link's line rate) below usable capacity at
#: which a link still counts as *saturated* for the work-conservation
#: probe.  Progressive residual filling stops once a round adds less
#: than ``tol=1e-4`` of the component's largest link capacity
#: (:func:`repro.simnet.fairness.network_rates`), so a bottleneck link
#: can legitimately sit up to that far below its usable capacity at
#: convergence; 10x margin keeps the probe quiet on solver slack while
#: still flagging real leftover bandwidth, which shows up at the scale
#: of whole flow demands.
SATURATION_SLACK = 1e-3

#: Relative tolerance for cross-solver completion agreement; matches
#: the solver bench's equivalence threshold.
EQUIV_REL_TOL = 1e-9


class InvariantViolation(ReproError):
    """A storm invariant probe failed.

    ``name`` is the stable machine-readable invariant id (e.g.
    ``"link_over_capacity"``); ``detail`` the human-readable evidence.
    """

    def __init__(self, name: str, detail: str) -> None:
        super().__init__(f"{name}: {detail}")
        self.name = name
        self.detail = detail


def check_fabric(
    fabric: FluidFabric,
    rel_tol: float = REL_TOL,
    conservation: bool = True,
    no_starvation: bool = True,
) -> None:
    """Check the physical invariants of a fabric's current allocation.

    Call only at a consistent instant -- after :meth:`FluidFabric.run`
    returns (rates are recomputed before the loop yields), never from
    inside a simulation callback where a recompute may be pending.
    """
    flows = fabric.active_flows

    for flow in flows:
        rate = flow.rate
        if not math.isfinite(rate) or rate < 0.0:
            raise InvariantViolation(
                "negative_rate",
                f"flow {flow.flow_id} ({flow.src}->{flow.dst}) has rate "
                f"{rate!r}",
            )
        cap = flow.demand_limit
        if rate > cap * (1.0 + rel_tol):
            raise InvariantViolation(
                "rate_cap_excess",
                f"flow {flow.flow_id} rate {rate:g} exceeds its rate_cap "
                f"{cap:g}",
            )

    link_ids: Dict[str, None] = {}
    for flow in flows:
        for lid in flow.path:
            link_ids[lid] = None

    # Usable capacity is a stable reference only for component-safe
    # policies; see the module docstring for why remaining-dependent
    # schedulers fall back to the line-rate bound.
    stable_usable = getattr(fabric, "_component_safe", True)

    saturated: Dict[str, None] = {}
    for lid in sorted(link_ids):
        members = fabric.link_members(lid)
        used = fabric.link_used_rate(lid)
        member_sum = sum(f.rate for f in members)
        scale = max(abs(used), abs(member_sum), 1.0)
        if abs(used - member_sum) > rel_tol * scale:
            raise InvariantViolation(
                "link_accumulator_drift",
                f"link {lid}: cached used rate {used:g} != member sum "
                f"{member_sum:g} over {len(members)} flows",
            )
        line_rate = fabric.topology.link_states[lid].link.capacity
        if stable_usable:
            limit = fabric.link_usable_capacity(lid)
            kind = "usable capacity"
        else:
            limit = line_rate
            kind = "line rate"
        if used > limit * (1.0 + rel_tol):
            raise InvariantViolation(
                "link_over_capacity",
                f"link {lid}: used {used:g} exceeds {kind} "
                f"{limit:g} ({len(members)} flows)",
            )
        if stable_usable and limit - used <= SATURATION_SLACK * line_rate:
            saturated[lid] = None

    for flow in flows:
        bottlenecked = any(lid in saturated for lid in flow.path)
        if no_starvation and flow.drain_rate <= 0.0:
            raise InvariantViolation(
                "starved_flow",
                f"flow {flow.flow_id} ({flow.src}->{flow.dst}, app "
                f"{flow.app!r}) makes no progress",
            )
        if not conservation or not stable_usable:
            continue
        demand_limited = flow.rate >= flow.demand_limit * (1.0 - rel_tol)
        if not demand_limited and not bottlenecked:
            raise InvariantViolation(
                "work_conservation",
                f"flow {flow.flow_id} ({flow.src}->{flow.dst}) runs at "
                f"{flow.rate:g} below its demand limit with no saturated "
                "link on its path",
            )


def check_service(
    service,
    offered: int,
    expect_idle: bool = False,
) -> None:
    """Check service admission accounting against the client's count.

    ``offered`` is the number of requests the *client* issued through
    the admission-controlled API (``health`` is exempt).  Every one of
    them must have been counted exactly once as admitted or rejected.
    """
    acct = service.accounting()
    counted = acct["admitted"] + acct["rejected"]
    if counted != offered:
        raise InvariantViolation(
            "request_conservation",
            f"admitted ({acct['admitted']}) + rejected "
            f"({acct['rejected']}) = {counted} != offered ({offered}); "
            "a request was dropped from the admission accounting",
        )
    open_flows = acct["open_flows"]
    if not (
        open_flows == acct["open_conns_app_total"]
        == acct["open_conns_tenant_total"]
    ):
        raise InvariantViolation(
            "open_conn_index_drift",
            f"open connection indexes disagree: per-flow {open_flows}, "
            f"per-app {acct['open_conns_app_total']}, per-tenant "
            f"{acct['open_conns_tenant_total']}",
        )
    if expect_idle and open_flows != 0:
        raise InvariantViolation(
            "leaked_connections",
            f"{open_flows} connection(s) still open after the run "
            "drained",
        )


def completions_of(fabric: FluidFabric) -> Dict[int, float]:
    """Finish time per completed flow id (cancelled flows included)."""
    out: Dict[int, float] = {}
    for flow in fabric.completed:
        assert flow.finish_time is not None
        out[flow.flow_id] = flow.finish_time
    return out


def check_completions_agree(
    reference: Dict[int, float],
    other: Dict[int, float],
    names: str = "reference/other",
    rel_tol: float = EQUIV_REL_TOL,
) -> float:
    """Require identical completion sets with matching finish times.

    Returns the maximum relative finish-time difference observed.
    """
    if set(reference) != set(other):
        only_ref = sorted(set(reference) - set(other))[:5]
        only_other = sorted(set(other) - set(reference))[:5]
        raise InvariantViolation(
            "completion_set_mismatch",
            f"{names}: flow sets differ (only-first {only_ref}, "
            f"only-second {only_other})",
        )
    worst = 0.0
    worst_fid: Optional[int] = None
    for fid, t_ref in reference.items():
        t_other = other[fid]
        diff = abs(t_ref - t_other) / max(abs(t_ref), abs(t_other), 1e-12)
        if diff > worst:
            worst = diff
            worst_fid = fid
    if worst > rel_tol:
        raise InvariantViolation(
            "solver_disagreement",
            f"{names}: flow {worst_fid} finish times differ by "
            f"{worst:.3e} relative (> {rel_tol:g})",
        )
    return worst


def violation_record(exc: InvariantViolation, time: float) -> Dict[str, object]:
    """JSON-ready record of one violation for storm reports."""
    return {"invariant": exc.name, "detail": exc.detail, "time": time}


__all__ = [
    "EQUIV_REL_TOL",
    "REL_TOL",
    "SATURATION_SLACK",
    "InvariantViolation",
    "check_completions_agree",
    "check_fabric",
    "check_service",
    "completions_of",
    "violation_record",
]
