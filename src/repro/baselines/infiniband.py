"""The testbed baseline: InfiniBand congestion control.

"We use InfiniBand as our baseline, which approximates max-min
fairness for each queue in its end-to-end congestion management via
Forward Explicit Congestion Notification" (§8.1).

Two properties matter:

1. *Per-flow max-min within one queue*: with no Saba configuration,
   every flow shares a single VL per port, and FECN marking plus
   source throttling approximates an equal split -- modelled by
   :class:`~repro.simnet.fairness.FairScheduler`.
2. *Throughput collapse under fan-in*: sources hunting for the fair
   rate under FECN lose goodput, and the loss grows with the number of
   flows sharing the control loop.  The authors measured this on the
   exact testbed switch in their ISPASS'20 study ("Evaluation of an
   InfiniBand Switch: Choose Latency or Bandwidth, but Not Both"); we
   model it as ``efficiency(n) = 1 / (1 + alpha (n - 1))`` per queue
   (:func:`~repro.simnet.fairness.fecn_collapse`).

Because the loss is per *congestion-control domain* (per VL), policies
that spread flows across queues -- Saba's WFQ enforcement, Homa's and
Sincronia's priority classes, and ideal max-min's per-flow queues --
suffer proportionally less of it.  That is a real effect of VL
separation, and it is what lets every queue-using scheme in Figure 10
beat this baseline even before any sensitivity awareness kicks in.
"""

from __future__ import annotations

from repro.simnet.fabric import FluidFabric
from repro.simnet.fairness import FairScheduler, LinkScheduler, fecn_collapse
from repro.simnet.flows import Flow

#: Default FECN rate-hunting loss per extra flow in a queue.  At the
#: testbed's typical fan-in (~24 flows per port under 8 co-located
#: jobs) this yields ~35 % efficiency -- severe, but in line with the
#: ISPASS'20 measurements of the SX6036 family under many-to-one
#: traffic, and the single biggest reason every queue-separating
#: policy in Figure 10 beats this baseline.  EXPERIMENTS.md records
#: how the headline speedups scale with this knob.
DEFAULT_COLLAPSE_ALPHA = 0.08


class InfiniBandBaseline:
    """Per-flow max-min with FECN-style congestion-control losses."""

    name = "infiniband"

    def __init__(self, collapse_alpha: float = DEFAULT_COLLAPSE_ALPHA) -> None:
        if collapse_alpha < 0:
            raise ValueError(f"collapse_alpha must be >= 0: {collapse_alpha}")
        self.collapse_alpha = collapse_alpha
        self._scheduler = FairScheduler(
            efficiency_fn=fecn_collapse(collapse_alpha) if collapse_alpha else None
        )

    def attach(self, fabric: FluidFabric) -> None:
        """Links themselves are ideal; the losses live in the transport."""
        for state in fabric.topology.link_states.values():
            state.efficiency_fn = None

    def scheduler_of(self, link_id: str) -> LinkScheduler:
        return self._scheduler

    def on_flow_started(self, flow: Flow) -> None:  # noqa: D102
        pass

    def on_flow_finished(self, flow: Flow) -> None:  # noqa: D102
        pass
