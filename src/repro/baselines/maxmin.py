"""Ideal per-flow max-min fairness.

Section 8.4, study 4: "In the ideal implementation of max-min
fairness, each workload is assigned to a dedicated queue, and packets
from queues are serviced using the Round-Robin algorithm. [...] it
achieves the upper bound of max-min fairness."

In the fluid limit, per-packet round-robin across per-flow queues *is*
max-min fairness with no congestion-control losses, so this policy is
simply the fair scheduler on ideal links.
"""

from __future__ import annotations

from repro.simnet.fabric import FluidFabric
from repro.simnet.fairness import FairScheduler, LinkScheduler
from repro.simnet.flows import Flow


class IdealMaxMin:
    """Exact per-flow max-min fairness (simulation upper bound)."""

    name = "ideal-maxmin"

    def __init__(self) -> None:
        self._scheduler = FairScheduler()

    def attach(self, fabric: FluidFabric) -> None:
        """Ensure links are ideal (no congestion-control inefficiency)."""
        for state in fabric.topology.link_states.values():
            state.efficiency_fn = None

    def scheduler_of(self, link_id: str) -> LinkScheduler:
        return self._scheduler

    def on_flow_started(self, flow: Flow) -> None:  # noqa: D102
        pass

    def on_flow_finished(self, flow: Flow) -> None:  # noqa: D102
        pass
