"""Allocation-policy baselines used in the paper's evaluation.

* :class:`InfiniBandBaseline` -- the testbed baseline: per-flow
  max-min approximated by FECN-style end-to-end congestion management,
  including its throughput inefficiency under high fan-in.
* :class:`IdealMaxMin` -- the simulation upper bound for any
  congestion-control protocol targeting max-min fairness (§8.4
  study 4).
* :class:`HomaPolicy` -- receiver-driven size-priority transport,
  approximated in the fluid limit by strict priority on remaining flow
  size (§8.4 study 5).
* :class:`SincroniaPolicy` -- clairvoyant coflow scheduling via the
  BSSI greedy ordering with priority enforcement (§8.4 study 6).
"""

from repro.baselines.infiniband import InfiniBandBaseline
from repro.baselines.maxmin import IdealMaxMin
from repro.baselines.homa import HomaPolicy
from repro.baselines.sincronia import SincroniaPolicy

__all__ = [
    "InfiniBandBaseline",
    "IdealMaxMin",
    "HomaPolicy",
    "SincroniaPolicy",
]
