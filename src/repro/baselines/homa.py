"""Homa, approximated in the fluid limit (§8.4, study 5).

Homa (Montazeri et al., SIGCOMM'18) is a receiver-driven transport
that "prioritizes short flows to achieve optimal flow-level completion
time" using the priority queues of network switches.  Its behaviour in
the fluid limit is shortest-remaining-processing-time-style strict
priority: flows with less remaining data preempt flows with more.

The real protocol maps message sizes to eight switch priorities with
cutoffs learned from the workload; the paper notes "Homa assigns all
flows longer than a certain size (10KB) to the same priority queue".
Our shuffles are orders of magnitude larger than 10 KB, so we keep the
eight-queue structure but place the cutoffs on a logarithmic grid
spanning the sizes our workloads actually produce; this preserves the
property the paper's comparison hinges on: Homa differentiates flows
*by size only*, never by the owning application's bandwidth
sensitivity.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from typing import Optional

from repro.simnet.fabric import FluidFabric
from repro.simnet.fairness import LinkScheduler, PriorityScheduler, fecn_collapse
from repro.simnet.flows import Flow
from repro.units import MB, GB

#: Log-spaced remaining-size cutoffs for the 8 switch priorities.
DEFAULT_CUTOFFS = (
    1 * MB,
    10 * MB,
    100 * MB,
    1 * GB,
    10 * GB,
    100 * GB,
    1000 * GB,
)


class HomaPolicy:
    """Strict priority by remaining flow size (fluid Homa)."""

    name = "homa"
    #: Priority classes are derived from each flow's *remaining* bytes,
    #: which drain continuously -- a link's allocation is not a pure
    #: function of its own population and programming, so
    #: component-scoped solving is not exact for this policy.
    component_safe = False

    def __init__(
        self,
        cutoffs: Sequence[float] = DEFAULT_CUTOFFS,
        collapse_alpha: Optional[float] = None,
    ) -> None:
        """``collapse_alpha`` optionally applies the same per-queue
        congestion-control loss as the InfiniBand baseline (Homa's
        receiver-driven grants avoid most of FECN's rate hunting, so
        the default is an ideal transport)."""
        if list(cutoffs) != sorted(cutoffs):
            raise ValueError("cutoffs must be sorted ascending")
        self._cutoffs = list(cutoffs)
        efficiency = fecn_collapse(collapse_alpha) if collapse_alpha else None
        self._scheduler = PriorityScheduler(
            self._priority_of, efficiency_fn=efficiency
        )

    def _priority_of(self, flow: Flow) -> int:
        """Priority class: 0 (shortest remaining, served first) .. 7."""
        return bisect_left(self._cutoffs, flow.remaining)

    def attach(self, fabric: FluidFabric) -> None:
        """Homa replaces congestion control; links are ideal."""
        for state in fabric.topology.link_states.values():
            state.efficiency_fn = None

    def scheduler_of(self, link_id: str) -> LinkScheduler:
        return self._scheduler

    def on_flow_started(self, flow: Flow) -> None:  # noqa: D102
        pass

    def on_flow_finished(self, flow: Flow) -> None:  # noqa: D102
        pass
