"""Sincronia, approximated in the fluid limit (§8.4, study 6).

Sincronia (Agarwal et al., SIGCOMM'18) is a clairvoyant coflow
scheduler: it computes a total order over unfinished coflows with the
*Bottleneck-Sort-Scale-Iterate* (BSSI) greedy, assigns priorities to
flows according to their coflow's order, and delegates rate control to
a priority-enabled transport.  It "requires flow sizes to be known a
priori", which the simulator satisfies exactly.

BSSI, as implemented here (the unweighted case of Algorithm 1 in the
Sincronia paper):

1. compute each port's total demand (sum of remaining bytes of
   unfinished coflows' flows crossing it);
2. find the most-bottlenecked port ``b``;
3. among unordered coflows, pick the one with the *largest* demand on
   ``b`` and place it **last** in the remaining order;
4. remove it and repeat.

The order is recomputed at coflow arrival/departure epochs (each
BSP-stage shuffle of each job is one coflow, tagged by the runtime),
and flows inherit a strict priority equal to their coflow's rank
clamped to the number of switch priority classes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.simnet.fabric import FluidFabric
from repro.simnet.fairness import LinkScheduler, PriorityScheduler, fecn_collapse
from repro.simnet.flows import Flow

#: Priority classes available to coflow ranks (8-queue switches).
DEFAULT_PRIORITY_CLASSES = 8


class SincroniaPolicy:
    """BSSI coflow ordering enforced via strict priority."""

    name = "sincronia"
    #: BSSI reorders on the *remaining* bytes of every active flow at
    #: coflow arrival/departure epochs, so flow progress must stay
    #: eagerly materialised and reorders invalidate all components.
    component_safe = False

    def __init__(
        self,
        priority_classes: int = DEFAULT_PRIORITY_CLASSES,
        collapse_alpha: Optional[float] = None,
    ) -> None:
        """``collapse_alpha`` optionally applies the per-queue
        congestion-control loss of the underlying priority-enabled
        transport (Sincronia "leverages the underlying priority-enabled
        transport layer"; the default models it as ideal)."""
        if priority_classes < 1:
            raise ValueError(f"priority_classes must be >= 1: {priority_classes}")
        self.priority_classes = priority_classes
        self._flows_of: Dict[str, Set[int]] = {}
        self._flow_objs: Dict[int, Flow] = {}
        self._rank: Dict[str, int] = {}
        efficiency = fecn_collapse(collapse_alpha) if collapse_alpha else None
        self._scheduler = PriorityScheduler(
            self._priority_of, efficiency_fn=efficiency
        )
        self._fabric: Optional[FluidFabric] = None

    # -- FabricPolicy interface ------------------------------------------

    def attach(self, fabric: FluidFabric) -> None:
        """Sincronia assumes a priority-enabled ideal transport."""
        self._fabric = fabric
        for state in fabric.topology.link_states.values():
            state.efficiency_fn = None

    def scheduler_of(self, link_id: str) -> LinkScheduler:
        return self._scheduler

    def on_flow_started(self, flow: Flow) -> None:
        coflow = flow.coflow if flow.coflow is not None else str(flow.app)
        members = self._flows_of.setdefault(coflow, set())
        members.add(flow.flow_id)
        self._flow_objs[flow.flow_id] = flow
        self._reorder()

    def on_flow_finished(self, flow: Flow) -> None:
        coflow = flow.coflow if flow.coflow is not None else str(flow.app)
        members = self._flows_of.get(coflow)
        if members is None:
            return
        members.discard(flow.flow_id)
        self._flow_objs.pop(flow.flow_id, None)
        if not members:
            del self._flows_of[coflow]
            self._reorder()

    # -- BSSI -------------------------------------------------------------

    def _priority_of(self, flow: Flow) -> int:
        coflow = flow.coflow if flow.coflow is not None else str(flow.app)
        rank = self._rank.get(coflow, self.priority_classes - 1)
        return min(rank, self.priority_classes - 1)

    def _reorder(self) -> None:
        """Recompute the BSSI total order over active coflows."""
        # Port demand: remaining bytes per (coflow, link).
        demand: Dict[str, Dict[str, float]] = {}
        port_total: Dict[str, float] = {}
        for coflow, members in self._flows_of.items():
            per_port = demand.setdefault(coflow, {})
            for fid in members:
                flow = self._flow_objs[fid]
                for lid in flow.path:
                    per_port[lid] = per_port.get(lid, 0.0) + flow.remaining
                    port_total[lid] = port_total.get(lid, 0.0) + flow.remaining
        unordered = set(self._flows_of)
        order_last_to_first: List[str] = []
        totals = dict(port_total)
        while unordered:
            bottleneck = max(totals, key=lambda lid: totals[lid], default=None)
            if bottleneck is None:
                order_last_to_first.extend(sorted(unordered))
                break
            pick = max(
                unordered,
                key=lambda c: (demand[c].get(bottleneck, 0.0), c),
            )
            order_last_to_first.append(pick)
            unordered.discard(pick)
            for lid, amount in demand[pick].items():
                remaining = totals.get(lid)
                if remaining is None:
                    continue  # port already fully accounted
                remaining -= amount
                if remaining <= 0:
                    del totals[lid]
                else:
                    totals[lid] = remaining
        order = list(reversed(order_last_to_first))
        self._rank = {coflow: i for i, coflow in enumerate(order)}
        if self._fabric is not None:
            self._fabric.invalidate_rates()
