"""Exception hierarchy for the repro package.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch package-level failures without
masking programming errors (``TypeError``, ``KeyError`` from foreign
code, etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class TopologyError(ReproError):
    """A topology is malformed (unknown node, duplicate link, ...)."""


class RoutingError(ReproError):
    """No route exists between two endpoints."""


class SimulationError(ReproError):
    """The simulation reached an inconsistent state."""


class AllocationError(ReproError):
    """The weight optimiser could not produce a feasible allocation."""


class ProfilingError(ReproError):
    """The offline profiler was misconfigured or produced unusable data."""


class RegistrationError(ReproError):
    """Saba library misuse: duplicate/unknown application or connection."""


class ClusteringError(ReproError):
    """Clustering inputs are invalid (empty set, bad cluster count)."""


class SweepError(ReproError):
    """A sweep was misconfigured or a task failed under fail-fast."""


class FaultError(ReproError):
    """A fault specification is invalid or the injector is misused."""


class ServiceError(ReproError):
    """Base class for allocation-service request failures."""


class QuotaExceededError(ServiceError):
    """A tenant exceeded its admission-control quota."""


class ServiceOverloadedError(ServiceError):
    """The service's bounded request queue is full (backpressure)."""


class ServiceDrainingError(ServiceError):
    """The service is draining and no longer admits new work."""
