"""Command-line entry point: regenerate the paper's experiments.

Usage::

    python -m repro list
    python -m repro fig1a
    python -m repro fig8 --setups 20
    python -m repro fig10 --full-scale
    python -m repro fig12 --sizes 10 100 500
    python -m repro obs summarize run.jsonl
    python -m repro fabric bench --out BENCH_fabric.json
    python -m repro control bench --out BENCH_control.json

Each subcommand prints the paper-style rows/series of one table or
figure.  The pytest benchmarks (``pytest benchmarks/
--benchmark-only``) run the same harnesses with shape assertions; this
CLI is the interactive way to poke at them.
"""

from __future__ import annotations

import argparse
import sys


def add_sweep_args(
    parser: argparse.ArgumentParser,
    jobs_default: str = "1",
) -> None:
    """Register the shared sweep-runner flags on a subparser.

    Every harness that fans out through :class:`repro.sweep.SweepRunner`
    (``sweep``, ``faults``, ``online``, ``service``, ``storm``) takes
    the same runner knobs; registering them here keeps flag names,
    defaults, and help text identical across subcommands.
    """
    parser.add_argument("--jobs", default=jobs_default,
                        help="worker processes, or 'auto' "
                             f"(default {jobs_default})")
    parser.add_argument("--cache-dir", default=None,
                        help="on-disk cache directory (default: "
                             "$REPRO_SWEEP_CACHE_DIR, else memory-only)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every task")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-task wall-clock limit in seconds "
                             "(enforced with --jobs >= 2)")
    parser.add_argument("--retries", type=int, default=3,
                        help="max attempts per task (default 3)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress narration")


def runner_from_args(args):
    """Build the :class:`~repro.sweep.SweepRunner` the shared flags
    describe.  ``error_policy`` is honoured when the subparser defines
    it (only ``sweep`` exposes the collect mode)."""
    from repro.sweep import (
        RetryPolicy, SweepCache, SweepRunner, default_cache,
    )

    if args.no_cache:
        cache = None
    elif args.cache_dir:
        cache = SweepCache(dir=args.cache_dir)
    else:
        cache = default_cache()
    return SweepRunner(
        jobs=args.jobs,
        cache=cache,
        timeout=args.timeout,
        retry=RetryPolicy(max_attempts=args.retries),
        error_policy=getattr(args, "error_policy", "fail-fast"),
        progress=None if args.quiet else (
            lambda msg: print(msg, file=sys.stderr)
        ),
    )


def _fig1a(args) -> None:
    from repro.experiments.fig1 import run_fig1a

    rows = run_fig1a()
    print(f"{'Workload':9s} {'75% BW':>8s} {'25% BW':>8s}")
    for name, cells in rows.items():
        print(f"{name:9s} {cells[0.75]:8.2f} {cells[0.25]:8.2f}")


def _fig1b(args) -> None:
    from repro.experiments.fig1 import run_fig1b

    result = run_fig1b()
    print("scheme    LR    PR   (paper: max-min 2.26/1.21, skewed 1.48/1.34)")
    print(f"max-min {result.maxmin['LR']:5.2f} {result.maxmin['PR']:5.2f}")
    print(f"skewed  {result.skewed['LR']:5.2f} {result.skewed['PR']:5.2f}")


def _fig2(args) -> None:
    from repro.experiments.fig2 import run_fig2

    for (workload, fraction), panel in sorted(run_fig2().items()):
        print(f"{workload}@{int(fraction * 100)}%: completion "
              f"{panel.completion_time:.1f}s, mean CPU {panel.mean_cpu():.2f}, "
              f"mean net {panel.mean_network():.2f}")


def _fig5(args) -> None:
    from repro.experiments.fig5_fig6 import run_fig5

    for name, panel in run_fig5().items():
        cells = "  ".join(f"k={k}: R2={panel.r2[k]:.3f}"
                          for k in sorted(panel.r2))
        print(f"{name:4s} {cells}")


def _fig6(args) -> None:
    from repro.experiments.fig5_fig6 import run_fig6a, run_fig6b, run_fig6c

    print("-- 6a: R2 vs degree")
    for name, row in run_fig6a().items():
        print(f"  {name:5s} " + " ".join(f"k{k}:{v:.2f}" for k, v in row.items()))
    print("-- 6b: R2 vs dataset scale")
    for name, row in run_fig6b().items():
        print(f"  {name:5s} " + " ".join(f"{s}x:{v:.2f}" for s, v in row.items()))
    print("-- 6c: R2 vs node count")
    for name, row in run_fig6c().items():
        print(f"  {name:5s} " + " ".join(f"{m}x:{v:.2f}" for m, v in row.items()))


def _fig8(args) -> None:
    from repro.experiments.fig8 import run_fig8

    result = run_fig8(n_setups=args.setups)
    print("per-workload average speedup (paper avg: 1.88x):")
    for name, speedup in sorted(result.per_workload_speedup.items(),
                                key=lambda kv: -kv[1]):
        print(f"  {name:5s} {speedup:5.2f}")
    print(f"average: {result.average_speedup:.2f} over "
          f"{len(result.setup_averages)} setups")


def _fig9(args) -> None:
    from repro.experiments.fig9 import (
        average_speedups, run_fig9a, run_fig9b, run_fig9c,
    )

    print("-- 9a: dataset scale")
    for s, row in sorted(run_fig9a().items()):
        print(f"  {s}x: avg {average_speedups(row):.2f}")
    print("-- 9b: node count")
    for m, row in sorted(run_fig9b().items()):
        print(f"  {m}x: avg {average_speedups(row):.2f}")
    print("-- 9c: polynomial degree")
    for k, row in sorted(run_fig9c().items()):
        print(f"  k={k}: avg {average_speedups(row):.2f}")


def _fig10(args) -> None:
    from repro.experiments.fig10_fig11 import run_fig10

    kwargs = (
        dict(n_spine=54, n_leaf=102, n_tor=108, servers_per_tor=18)
        if args.full_scale else None
    )
    result = run_fig10(topology_kwargs=kwargs)
    paper = {"saba": 1.27, "sincronia": 1.19, "ideal-maxmin": 1.14,
             "homa": 1.12}
    for policy in paper:
        print(f"{policy:13s} measured {result.average(policy):5.2f} "
              f"(paper {paper[policy]:.2f})")


def _fig11(args) -> None:
    from repro.experiments.fig10_fig11 import run_fig11a, run_fig11b

    a = run_fig11a()
    print(f"centralized {a['centralized']:.2f}  distributed "
          f"{a['distributed']:.2f}  (paper 1.27 / 1.23)")
    for label, avg in run_fig11b().items():
        print(f"queues={label:>9s}: {avg:.2f}")


def _fig12(args) -> None:
    from repro.experiments.fig12 import percentile, run_fig12

    results = run_fig12(app_set_sizes=tuple(args.sizes))
    for k, scenarios in sorted(results.items()):
        times = [s.calc_time for s in scenarios]
        print(f"k={k}: p99 {percentile(times, 99):.3f}s "
              f"max {max(times):.3f}s over {len(times)} scenarios")


def _obs(args) -> None:
    import json

    from repro.obs.summary import format_summary, summarize_file

    try:
        summary = summarize_file(args.trace)
    except FileNotFoundError:
        raise SystemExit(f"error: no such trace: {args.trace}")
    except json.JSONDecodeError as exc:
        raise SystemExit(
            f"error: {args.trace} is not a JSONL event trace ({exc})"
        )
    if args.json:
        print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_summary(summary))


def _sweep(args) -> None:
    import json

    from repro.sweep import SweepError
    from repro.sweep.registry import REGISTRY, get_experiment

    if args.experiment == "list":
        for name, exp in REGISTRY.items():
            print(f"{name:16s} {exp.help}")
        print(f"{'bench':16s} serial-vs-parallel wall-time benchmark")
        return

    if args.experiment == "bench":
        from repro.sweep.bench import run_bench, write_bench

        progress = None if args.quiet else print
        payload = run_bench(
            workloads=args.workloads,
            fractions=args.fractions,
            n_nodes=args.nodes if args.nodes is not None else 32,
            jobs=args.jobs,
            progress=progress,
        )
        print(json.dumps(payload, indent=2, sort_keys=True))
        if args.out:
            write_bench(payload, args.out)
            print(f"wrote {args.out}", file=sys.stderr)
        if not payload["identical_results"]:
            raise SystemExit("error: serial and parallel tables differ")
        return

    try:
        experiment = get_experiment(args.experiment)
        runner = runner_from_args(args)
        options = {
            "setups": args.setups, "method": args.method,
            "workloads": args.workloads, "nodes": args.nodes,
            "degree": args.degree,
        }
        result = runner.run(experiment.build(options))
    except SweepError as exc:
        raise SystemExit(f"error: {exc}")
    if result.failures:
        for outcome in result.failures:
            print(f"FAILED {outcome.name}: {outcome.error}",
                  file=sys.stderr)
        raise SystemExit(
            f"error: {len(result.failures)} task(s) failed; "
            "no result to render"
        )
    print(experiment.render(result.value))
    if args.manifest:
        with open(args.manifest, "w") as handle:
            json.dump(result.manifest.to_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote manifest to {args.manifest}", file=sys.stderr)


def _faults(args) -> None:
    import json

    from repro.experiments.extension_faults import (
        run_faults, run_faults_smoke,
    )
    from repro.sweep.registry import get_experiment

    runner = runner_from_args(args)
    if args.smoke:
        result = run_faults_smoke(seed=args.seed, runner=runner)
    else:
        series = ("saba",) if args.no_failover else (
            "saba", "saba-failover"
        )
        mtbfs = (
            tuple(None if m <= 0 else m for m in args.mtbf)
            if args.mtbf else None
        )
        kwargs = dict(mttr=args.mttr, seed=args.seed, series=series,
                      runner=runner)
        if mtbfs is not None:
            kwargs["mtbfs"] = mtbfs
        result = run_faults(**kwargs)
    payload = result.to_json()
    if args.json:
        print(payload)
    else:
        print(get_experiment("faults").render(result))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(payload)
            handle.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)


def _online(args) -> None:
    from repro.experiments.extension_online import (
        run_online, run_online_smoke,
    )
    from repro.sweep.registry import get_experiment

    runner = runner_from_args(args)
    if args.smoke:
        result = run_online_smoke(seed=args.seed, runner=runner)
    else:
        result = run_online(seed=args.seed, waves=args.waves,
                            runner=runner)
    payload = result.to_json()
    if args.json:
        print(payload)
    else:
        print(get_experiment("online").render(result))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(payload)
            handle.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)


def _service(args) -> None:
    from repro.experiments.extension_service import (
        run_service, run_service_smoke,
    )
    from repro.sweep.registry import get_experiment

    runner = runner_from_args(args)
    if args.smoke:
        result = run_service_smoke(seed=args.seed, runner=runner)
    else:
        kwargs = dict(seed=args.seed, runner=runner)
        if args.flaps:
            kwargs["flap_counts"] = tuple(args.flaps)
        result = run_service(**kwargs)
    payload = result.to_json()
    if args.json:
        print(payload)
    else:
        print(get_experiment("service").render(result))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(payload)
            handle.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if not result.identical:
        raise SystemExit(
            "error: zero-fault service run diverged from the static "
            "harness"
        )
    if not all(p.recovered for p in result.points):
        raise SystemExit(
            "error: flows were left off their canonical paths after "
            "the last recovery"
        )


def _storm(args) -> None:
    import json
    from dataclasses import replace

    from repro.storm import PRESETS, run_fuzz_campaign, run_storm

    if args.action == "list":
        for name, preset in PRESETS.items():
            spec = preset.spec
            print(f"{name:8s} mode={preset.mode:7s} policy={spec.policy:8s} "
                  f"topology={spec.topology:13s} rate={preset.base_rate:g}/s "
                  f"duration={preset.duration:g}s seed={preset.seed}")
        return

    if args.action == "run":
        try:
            preset = PRESETS[args.preset]
        except KeyError:
            raise SystemExit(
                f"error: unknown preset {args.preset!r} "
                f"(have: {', '.join(PRESETS)})"
            )
        config = preset
        if args.seed is not None:
            config = replace(config, seed=args.seed)
        report = run_storm(config)
        payload = report.dumps()
        print(payload)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(payload)
                handle.write("\n")
            print(f"wrote {args.out}", file=sys.stderr)
        if not report.ok:
            raise SystemExit(
                f"error: {len(report.violations)} invariant "
                "violation(s); see the report above"
            )
        print(f"generator throughput: {report.flows_per_sec:.0f} "
              f"flows/s ({report.completed} flows in "
              f"{report.wall_seconds:.2f}s)", file=sys.stderr)
        if args.min_flows_per_sec > 0 and (
            report.flows_per_sec < args.min_flows_per_sec
        ):
            raise SystemExit(
                f"error: generator throughput {report.flows_per_sec:.0f} "
                f"flows/s is below the required "
                f"{args.min_flows_per_sec:.0f}"
            )
        return

    # fuzz
    runner = runner_from_args(args)
    report = run_fuzz_campaign(
        args.count,
        base_seed=args.seed if args.seed is not None else 0,
        runner=runner,
        equivalence=not args.no_equivalence,
    )
    payload = json.dumps(report, indent=2, sort_keys=True)
    print(payload)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(payload)
            handle.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if report["failed"]:
        raise SystemExit(
            f"error: {report['failed']} of {report['scenarios']} "
            f"scenario(s) violated an invariant; reproduce with "
            f"repro.storm.fuzz.fuzz_one(seed) for seed in "
            f"{report['failing_seeds'][:10]}"
        )


def _fabric(args) -> None:
    import json

    from repro.simnet.bench import (
        run_bench, run_fig10_smoke, run_hyperscale, write_bench,
    )

    progress = None if args.quiet else (
        lambda msg: print(msg, file=sys.stderr)
    )
    if args.scenario == "hyperscale":
        payload = run_hyperscale(
            scenario={
                "n_spine": args.spine, "n_leaf": args.leaf,
                "n_tor": args.tor,
                "servers_per_tor": args.servers_per_tor,
                "waves": args.waves, "seed": args.seed,
            },
            progress=progress, backend=args.backend, profile=args.profile,
        )
    elif args.scenario == "fig10":
        payload = run_fig10_smoke(
            scenario={
                "n_spine": args.spine, "n_leaf": args.leaf,
                "n_tor": args.tor,
                "servers_per_tor": args.servers_per_tor, "apps": args.apps,
                "fanout": args.fanout, "waves": args.waves,
                "seed": args.seed,
            },
            progress=progress, backend=args.backend, profile=args.profile,
        )
    else:
        payload = run_bench(
            scenario={
                "n_spine": args.spine, "n_leaf": args.leaf,
                "n_tor": args.tor,
                "servers_per_tor": args.servers_per_tor, "apps": args.apps,
                "fanout": args.fanout, "waves": args.waves,
                "seed": args.seed,
            },
            progress=progress, backend=args.backend, profile=args.profile,
        )
    print(json.dumps(payload, indent=2, sort_keys=True))
    if args.out:
        write_bench(payload, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    if not payload["identical_results"]:
        raise SystemExit(
            "error: solver backends disagree on completion times "
            f"(max rel {payload['max_rel_completion_diff']:.2e})"
        )
    if args.scenario == "corun":
        if not payload["vector_identical_results"]:
            raise SystemExit(
                "error: vectorized run diverged from the object solver "
                f"(max rel {payload['vector_max_rel_completion_diff']:.2e})"
            )
        if payload["speedup"] < args.min_speedup:
            raise SystemExit(
                f"error: incremental speedup {payload['speedup']:.2f}x is "
                f"below the required {args.min_speedup:.2f}x"
            )
    if args.scenario == "hyperscale" and args.min_flows_per_sec > 0:
        fps = payload["vector"]["flows_per_sec"] or 0.0
        if fps < args.min_flows_per_sec:
            raise SystemExit(
                f"error: hyperscale throughput {fps:.0f} flows/s is "
                f"below the required {args.min_flows_per_sec:.0f}"
            )


def _control(args) -> None:
    import json

    from repro.core.bench import run_bench, write_bench

    progress = None if args.quiet else (
        lambda msg: print(msg, file=sys.stderr)
    )
    payload = run_bench(
        scenario={
            "n_spine": args.spine, "n_leaf": args.leaf, "n_tor": args.tor,
            "servers_per_tor": args.servers_per_tor, "apps": args.apps,
            "conns_per_app": args.conns_per_app, "rounds": args.rounds,
            "seed": args.seed,
        },
        progress=progress,
    )
    print(json.dumps(payload, indent=2, sort_keys=True))
    if args.out:
        write_bench(payload, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    if not payload["identical_tables"]:
        raise SystemExit(
            "error: signature-cached run programmed different port tables"
        )
    if not payload["identical_coalesced_tables"]:
        raise SystemExit(
            "error: coalesced run converged to different port tables"
        )
    skips = payload["signatures_on"]["signature_skips"]
    if skips < args.min_skips:
        raise SystemExit(
            f"error: signature cache skipped only {skips} port updates "
            f"(required {args.min_skips})"
        )
    if payload["signature_speedup"] < args.min_speedup:
        raise SystemExit(
            f"error: signature-cache speedup "
            f"{payload['signature_speedup']:.2f}x is below the required "
            f"{args.min_speedup:.2f}x"
        )


def _report(args) -> None:
    from repro.experiments.report import generate_reports

    paths = generate_reports(
        args.out, heavy=args.heavy,
        progress=lambda name: print(f"running {name} ..."),
    )
    print(f"wrote {len(paths)} artifacts to {args.out}")


COMMANDS = {
    "report": _report,
    "obs": _obs,
    "sweep": _sweep,
    "fabric": _fabric,
    "control": _control,
    "faults": _faults,
    "online": _online,
    "service": _service,
    "storm": _storm,
    "fig1a": _fig1a,
    "fig1b": _fig1b,
    "fig2": _fig2,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Saba paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    for name in COMMANDS:
        if name == "obs":
            p = sub.add_parser(
                name, help="observability tools (trace summaries)"
            )
            p.add_argument("action", choices=["summarize"],
                           help="what to do with the trace")
            p.add_argument("trace", help="JSONL event trace path")
            p.add_argument("--json", action="store_true",
                           help="machine-readable output")
            continue
        if name == "sweep":
            p = sub.add_parser(
                name,
                help="run an experiment as a cached, parallel sweep",
            )
            p.add_argument(
                "experiment",
                help="experiment name, 'list', or 'bench'",
            )
            add_sweep_args(p)
            p.add_argument("--error-policy", default="fail-fast",
                           choices=["fail-fast", "collect"])
            p.add_argument("--manifest", default=None,
                           help="write the run manifest JSON here")
            p.add_argument("--setups", type=int, default=None,
                           help="fig8: number of cluster setups")
            p.add_argument("--method", default=None,
                           choices=["simulate", "analytic"],
                           help="profiling method override")
            p.add_argument("--workloads", nargs="+", default=None,
                           help="restrict to these catalog workloads")
            p.add_argument("--nodes", type=int, default=None,
                           help="profiling pod size override")
            p.add_argument("--degree", type=int, default=None,
                           help="polynomial degree override")
            p.add_argument("--fractions", type=float, nargs="+",
                           default=None,
                           help="bench: bandwidth fractions to profile")
            p.add_argument("--out", default=None,
                           help="bench: also write the JSON payload here")
            continue
        if name == "faults":
            p = sub.add_parser(
                name,
                help="controller fault injection: speedup vs downtime",
            )
            p.add_argument("--smoke", action="store_true",
                           help="reduced CI grid (fixed parameters; "
                                "golden-file compatible)")
            p.add_argument("--mtbf", type=float, nargs="+", default=None,
                           help="mean time between controller failures, "
                                "seconds (<= 0 means no faults)")
            p.add_argument("--mttr", type=float, default=6.0,
                           help="mean time to recovery, seconds "
                                "(default 6)")
            p.add_argument("--seed", type=int, default=7,
                           help="master seed (default 7)")
            p.add_argument("--no-failover", action="store_true",
                           help="skip the saba-failover series")
            add_sweep_args(p)
            p.add_argument("--json", action="store_true",
                           help="print canonical JSON instead of the table")
            p.add_argument("--out", default=None,
                           help="also write the canonical JSON here")
            continue
        if name == "online":
            p = sub.add_parser(
                name,
                help="cold-start online sensitivity estimation vs "
                     "offline profiling",
            )
            p.add_argument("--smoke", action="store_true",
                           help="fixed CI configuration "
                                "(golden-file compatible)")
            p.add_argument("--waves", type=int, default=3,
                           help="consecutive learning co-runs "
                                "(default 3)")
            p.add_argument("--seed", type=int, default=7,
                           help="master seed (default 7)")
            add_sweep_args(p)
            p.add_argument("--json", action="store_true",
                           help="print canonical JSON instead of the table")
            p.add_argument("--out", default=None,
                           help="also write the canonical JSON here")
            continue
        if name == "service":
            p = sub.add_parser(
                name,
                help="allocation service under link flaps: identity, "
                     "availability, recovery",
            )
            p.add_argument("--smoke", action="store_true",
                           help="reduced CI grid (fixed parameters; "
                                "golden-file compatible)")
            p.add_argument("--flaps", type=int, nargs="+", default=None,
                           help="link flap counts to sweep "
                                "(default 0 1 2 3 4)")
            p.add_argument("--seed", type=int, default=7,
                           help="master seed (default 7)")
            add_sweep_args(p)
            p.add_argument("--json", action="store_true",
                           help="print canonical JSON instead of the table")
            p.add_argument("--out", default=None,
                           help="also write the canonical JSON here")
            continue
        if name == "storm":
            p = sub.add_parser(
                name,
                help="open-loop traffic generator and scenario fuzzer",
            )
            p.add_argument("action", choices=["run", "fuzz", "list"],
                           help="run a preset storm, fuzz random "
                                "scenarios, or list presets")
            p.add_argument("preset", nargs="?", default="smoke",
                           help="preset name for 'run' (default smoke)")
            p.add_argument("--seed", type=int, default=None,
                           help="override the preset seed (run) or set "
                                "the campaign base seed (fuzz; default 0)")
            p.add_argument("--count", type=int, default=100,
                           help="fuzz: scenarios to sample (default 100)")
            p.add_argument("--no-equivalence", action="store_true",
                           help="fuzz: skip the solver-equivalence "
                                "re-runs (3x cheaper)")
            p.add_argument("--min-flows-per-sec", type=float, default=0.0,
                           help="run: fail below this completed-flows/s "
                                "generator throughput (default off)")
            add_sweep_args(p)
            p.add_argument("--out", default=None,
                           help="also write the JSON report here")
            continue
        if name == "fabric":
            p = sub.add_parser(
                name,
                help="fluid-fabric tools (incremental-solver benchmark)",
            )
            p.add_argument("action", choices=["bench"],
                           help="benchmark full vs incremental solving")
            p.add_argument("--scenario", choices=["corun", "hyperscale",
                                                  "fig10"],
                           default="corun",
                           help="benchmark scenario (default corun; "
                                "hyperscale = 100k-server incast, "
                                "fig10 = full-scale 1,944-server smoke)")
            p.add_argument("--backend", choices=["auto", "vector", "object"],
                           default="auto",
                           help="solver backend for the vectorized run "
                                "(default auto)")
            p.add_argument("--spine", type=int, default=None,
                           help="spine switches (scenario-specific default)")
            p.add_argument("--leaf", type=int, default=None,
                           help="leaf switches (scenario-specific default)")
            p.add_argument("--tor", type=int, default=None,
                           help="top-of-rack switches "
                                "(scenario-specific default)")
            p.add_argument("--servers-per-tor", type=int, default=None,
                           help="servers per rack "
                                "(scenario-specific default)")
            p.add_argument("--apps", type=int, default=None,
                           help="co-running applications (corun/fig10)")
            p.add_argument("--fanout", type=int, default=None,
                           help="concurrent flows per wave (corun/fig10)")
            p.add_argument("--waves", type=int, default=None,
                           help="waves per application / per rack")
            p.add_argument("--seed", type=int, default=None,
                           help="scenario seed (default 7)")
            p.add_argument("--out", default=None,
                           help="also write the JSON payload here")
            p.add_argument("--min-speedup", type=float, default=1.0,
                           help="fail below this incremental speedup "
                                "(corun only; default 1.0)")
            p.add_argument("--min-flows-per-sec", type=float, default=0.0,
                           help="fail below this completed-flows/sec "
                                "throughput (hyperscale only; default off)")
            p.add_argument("--profile", action="store_true",
                           help="cProfile the vectorized run and report "
                                "the top-25 cumulative entries")
            p.add_argument("--quiet", action="store_true",
                           help="suppress progress narration")
            continue
        if name == "control":
            p = sub.add_parser(
                name,
                help="control-plane tools (allocation-pipeline benchmark)",
            )
            p.add_argument("action", choices=["bench"],
                           help="benchmark signature caching and "
                                "event coalescing")
            p.add_argument("--spine", type=int, default=None,
                           help="spine switches (default 8)")
            p.add_argument("--leaf", type=int, default=None,
                           help="leaf switches (default 8)")
            p.add_argument("--tor", type=int, default=None,
                           help="top-of-rack switches (default 8)")
            p.add_argument("--servers-per-tor", type=int, default=None,
                           help="servers per rack (default 10)")
            p.add_argument("--apps", type=int, default=None,
                           help="registered applications (default 10)")
            p.add_argument("--conns-per-app", type=int, default=None,
                           help="standing connections per app (default 4)")
            p.add_argument("--rounds", type=int, default=None,
                           help="churn rounds (default 20)")
            p.add_argument("--seed", type=int, default=None,
                           help="scenario seed (default 7)")
            p.add_argument("--out", default=None,
                           help="also write the JSON payload here")
            p.add_argument("--min-speedup", type=float, default=1.0,
                           help="fail below this signature-cache speedup "
                                "(default 1.0)")
            p.add_argument("--min-skips", type=int, default=1,
                           help="fail when the signature cache skips "
                                "fewer port updates (default 1)")
            p.add_argument("--quiet", action="store_true",
                           help="suppress progress narration")
            continue
        p = sub.add_parser(name, help=f"run the {name} experiment")
        if name == "fig8":
            p.add_argument("--setups", type=int, default=10)
        if name == "fig10":
            p.add_argument("--full-scale", action="store_true")
        if name == "fig12":
            p.add_argument("--sizes", type=int, nargs="+",
                           default=[1, 10, 100, 250])
        if name == "report":
            p.add_argument("--out", default="results")
            p.add_argument("--heavy", action="store_true",
                           help="include fig8/9/10/11/12 (slow)")
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        print("available experiments:", ", ".join(COMMANDS))
        return 0
    COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
