"""The Saba library: connection manager + software interface (Section 6).

Applications that wish to be Saba-compliant register through this
library and open every connection through it.  The library implements
the interaction diagram of Figure 7:

* ``saba_app_register``   -> controller assigns a PL (1)-(3);
* ``saba_conn_create``    -> the connection manager creates the flow
  carrying the PL and informs the controller, which re-allocates and
  re-enforces the switches on the path (4)-(7);
* ``saba_conn_destroy``   -> implicit on flow completion here (the
  fluid model has no half-open connections); triggers a new
  allocation (8)-(11);
* ``saba_app_deregister`` -> (12)-(13).

The library also satisfies the cluster runtime's
:class:`~repro.cluster.runtime.ConnectionAPI`, so materialised jobs
become Saba-compliant simply by constructing their executor with
``connections_factory=SabaLibrary.factory(controller)`` -- matching
the paper's claim that "the individual workloads required no
modification to support Saba" (the framework shim does the work).

All control-plane traffic goes through an :class:`RpcBus` ("the
connection manager uses RPC operations for all control-plane
activities", Section 7.3).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import RegistrationError
from repro.obs.events import (
    LIB_CONN_OPENED,
    LIB_DEREGISTERED,
    LIB_REGISTERED,
    NULL_OBSERVER,
    Observer,
)
from repro.cluster.jobs import Job
from repro.core.controller import SabaController
from repro.core.rpc import RpcBus
from repro.simnet.fabric import FluidFabric
from repro.simnet.flows import Flow

CONTROLLER_ENDPOINT = "controller"


class SabaLibrary:
    """Per-fabric connection manager + software interface."""

    def __init__(
        self,
        fabric: FluidFabric,
        controller: SabaController,
        bus: Optional[RpcBus] = None,
        multipath: bool = False,
        fail_open: bool = False,
        observer: Optional[Observer] = None,
    ) -> None:
        """``multipath`` announces *every* equal-cost path of a new
        connection to the controller, not just the one its flow takes:
        "If the underlying network layer supports multipathing, the
        controller determines switches along all paths between the
        source and destination" (Section 5, footnote 2).  Ports on
        alternate paths are then weighted before any traffic shifts
        onto them.

        ``fail_open`` makes the connection manager tolerate a dead
        controller: Saba's data plane is just switch queue state, so
        when the control plane is unreachable (the §5.4 single point
        of failure), connections proceed under the last-programmed
        weights instead of erroring.  Registration-time failures leave
        the application unmanaged (PL ``None`` -> the port's default
        queue), matching the non-compliant co-existence path."""
        self._fabric = fabric
        self._bus = bus if bus is not None else RpcBus()
        self._multipath = multipath
        self._fail_open = fail_open
        # Default to the fabric's observer so one Observer wired into
        # the executor also sees the library's view of the control
        # plane.
        self._observer = (
            observer if observer is not None
            else getattr(fabric, "observer", NULL_OBSERVER)
        )
        self.dropped_control_messages = 0
        if not self._bus.has_endpoint(CONTROLLER_ENDPOINT):
            self._bus.register(CONTROLLER_ENDPOINT, controller.rpc_methods())
        self._pl_of: Dict[str, Optional[int]] = {}

    def _call_controller(self, method: str, **kwargs):
        """One control-plane RPC, honouring ``fail_open``."""
        from repro.core.rpc import RpcError

        try:
            return self._bus.call(CONTROLLER_ENDPOINT, method, **kwargs)
        except RpcError:
            if not self._fail_open:
                raise
            self.dropped_control_messages += 1
            return None

    @classmethod
    def factory(
        cls,
        controller: SabaController,
        bus: Optional[RpcBus] = None,
        multipath: bool = False,
        observer: Optional[Observer] = None,
    ) -> Callable[[FluidFabric], "SabaLibrary"]:
        """Connections-factory for :class:`CoRunExecutor`."""
        return lambda fabric: cls(fabric, controller, bus=bus,
                                  multipath=multipath, observer=observer)

    @property
    def bus(self) -> RpcBus:
        return self._bus

    # -- software interface ----------------------------------------------------

    def saba_app_register(
        self, job_id: str, workload: str
    ) -> Optional[int]:
        """Register the application; caches and returns its PL
        (``None`` when a fail-open registration could not reach the
        controller -- the application runs unmanaged)."""
        if job_id in self._pl_of:
            raise RegistrationError(f"{job_id!r} already registered")
        pl = self._call_controller(
            "app_register", job_id=job_id, workload=workload
        )
        self._pl_of[job_id] = pl
        obs = self._observer
        if obs.enabled:
            obs.metrics.counter("library.registrations").inc()
            obs.emit(
                LIB_REGISTERED, self._fabric.sim.now, job=job_id,
                workload=workload, pl=pl,
            )
        return pl

    def saba_app_deregister(self, job_id: str) -> None:
        if job_id not in self._pl_of:
            raise RegistrationError(f"{job_id!r} is not registered")
        if self._pl_of[job_id] is not None:
            self._call_controller("app_deregister", job_id=job_id)
        del self._pl_of[job_id]
        obs = self._observer
        if obs.enabled:
            obs.emit(LIB_DEREGISTERED, self._fabric.sim.now, job=job_id)

    def saba_conn_create(
        self,
        job_id: str,
        src: str,
        dst: str,
        size: float,
        on_complete: Optional[Callable[[Flow], None]] = None,
        coflow: Optional[str] = None,
        rate_cap: Optional[float] = None,
        aux_rate: float = 0.0,
    ) -> Flow:
        """Create a connection carrying the application's PL.

        The PL was acquired at registration, so "setting up the
        connection does not introduce any additional overhead"
        (Section 6) -- no extra round trip happens here beyond the
        path announcement.
        """
        if job_id not in self._pl_of:
            raise RegistrationError(
                f"{job_id!r} must register before creating connections"
            )
        pl = self._pl_of[job_id]  # None = unmanaged (fail-open register)
        flow = Flow(src=src, dst=dst, size=size, app=job_id, pl=pl,
                    coflow=coflow, rate_cap=rate_cap, aux_rate=aux_rate)
        flow.path = tuple(
            self._fabric.router.path_for_flow(src, dst, flow.flow_id)
        )
        if self._multipath:
            announced = sorted(
                {
                    lid
                    for path in self._fabric.router.equal_cost_paths(src, dst)
                    for lid in path
                }
            )
        else:
            announced = list(flow.path)

        managed = pl is not None

        def _teardown(done_flow: Flow) -> None:
            if managed:
                self._call_controller(
                    "conn_destroy", job_id=job_id, path=announced
                )
            if on_complete is not None:
                on_complete(done_flow)

        if managed:
            self._call_controller(
                "conn_create", job_id=job_id, path=announced
            )
        obs = self._observer
        if obs.enabled:
            obs.metrics.counter("library.conns_opened").inc()
            obs.emit(
                LIB_CONN_OPENED, self._fabric.sim.now, job=job_id,
                flow_id=flow.flow_id, src=src, dst=dst, size=size, pl=pl,
                managed=managed,
            )
        return self._fabric.start_flow(flow, on_complete=_teardown)

    # -- ConnectionAPI (cluster runtime integration) ------------------------------

    def create(
        self,
        job_id: str,
        src: str,
        dst: str,
        size: float,
        on_complete: Callable[[Flow], None],
        coflow: Optional[str] = None,
        rate_cap: Optional[float] = None,
        aux_rate: float = 0.0,
    ) -> Flow:
        return self.saba_conn_create(
            job_id, src, dst, size, on_complete=on_complete, coflow=coflow,
            rate_cap=rate_cap, aux_rate=aux_rate,
        )

    def job_started(self, job: Job) -> None:
        self.saba_app_register(job.job_id, job.workload)

    def job_finished(self, job: Job) -> None:
        self.saba_app_deregister(job.job_id)
