"""The Saba library: connection manager + software interface (Section 6).

Applications that wish to be Saba-compliant register through this
library and open every connection through it.  The library implements
the interaction diagram of Figure 7:

* ``saba_app_register``   -> controller assigns a PL (1)-(3);
* ``saba_conn_create``    -> the connection manager creates the flow
  carrying the PL and informs the controller, which re-allocates and
  re-enforces the switches on the path (4)-(7);
* ``saba_conn_destroy``   -> implicit on flow completion here (the
  fluid model has no half-open connections); triggers a new
  allocation (8)-(11);
* ``saba_app_deregister`` -> (12)-(13).

The library also satisfies the cluster runtime's
:class:`~repro.cluster.runtime.ConnectionAPI`, so materialised jobs
become Saba-compliant simply by constructing their executor with
``connections_factory=SabaLibrary.factory(controller)`` -- matching
the paper's claim that "the individual workloads required no
modification to support Saba" (the framework shim does the work).

All control-plane traffic goes through an :class:`RpcBus` ("the
connection manager uses RPC operations for all control-plane
activities", Section 7.3).

Graceful degradation (the §5.4 single point of failure, measured by
``python -m repro faults``): with ``fail_open=True`` a transport
failure (:class:`RpcUnavailable`, :class:`RpcTimeout`) never reaches
the application.  Saba's data plane is just switch queue state, so
connections proceed under the last-programmed weights; meanwhile the
library queues the failed control messages -- registrations to
re-register, connection announcements to replay, teardowns to
re-deliver -- and drains the queue when the controller returns
(scheduled at the outage's known end when the fault model provides
``recover_at``, opportunistically on the next successful call
otherwise).  With a ``failover`` controller configured, a run of
consecutive transport failures promotes the standby instead: the
library re-registers every application and replays every open
connection against it, reusing the Section 5.4 distributed design as
the warm spare.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import RegistrationError
from repro.obs.events import (
    LIB_CONN_OPENED,
    LIB_DEREGISTERED,
    LIB_FAILOVER,
    LIB_REGISTERED,
    LIB_REREGISTERED,
    NULL_OBSERVER,
    Observer,
)
from repro.cluster.jobs import Job
from repro.core.controller import SabaController
from repro.core.rpc import RpcBus, RpcTimeout, RpcUnavailable
from repro.simnet.fabric import FluidFabric
from repro.simnet.flows import Flow

CONTROLLER_ENDPOINT = "controller"
#: Endpoint name the promoted standby registers under -- distinct from
#: the primary's, so fault schedules targeting ``"controller"`` do not
#: follow the traffic to the standby.
FAILOVER_ENDPOINT = "controller-failover"

#: Sentinel distinguishing "the RPC was dropped fail-open" from a
#: legitimate ``None`` result.
_DROPPED = object()


class SabaLibrary:
    """Per-fabric connection manager + software interface."""

    def __init__(
        self,
        fabric: FluidFabric,
        controller: SabaController,
        bus: Optional[RpcBus] = None,
        multipath: bool = False,
        fail_open: bool = False,
        observer: Optional[Observer] = None,
        failover: Optional[object] = None,
        failover_threshold: int = 3,
    ) -> None:
        """``multipath`` announces *every* equal-cost path of a new
        connection to the controller, not just the one its flow takes:
        "If the underlying network layer supports multipathing, the
        controller determines switches along all paths between the
        source and destination" (Section 5, footnote 2).  Ports on
        alternate paths are then weighted before any traffic shifts
        onto them.

        ``fail_open`` makes the connection manager tolerate a dead
        controller: when the control plane is unreachable (the §5.4
        single point of failure), connections proceed under the
        last-programmed weights instead of erroring, and the missed
        control messages are queued for replay on recovery.
        Registration-time failures leave the application unmanaged
        (PL ``None`` -> the port's default queue, the non-compliant
        co-existence path) until a recovery drain re-registers it.

        ``failover`` is an optional standby controller (anything with
        ``rpc_methods()`` and the fabric-policy protocol, e.g. a
        :class:`~repro.core.distributed.DistributedControllerGroup`).
        After ``failover_threshold`` *consecutive* transport failures
        the library promotes it: the dead primary is torn down, the
        standby becomes the fabric policy, and registrations plus all
        open connections are replayed against it.  There is no
        automatic failback."""
        self._fabric = fabric
        self._bus = bus if bus is not None else RpcBus()
        self._multipath = multipath
        self._fail_open = fail_open
        self._failover = failover
        self._failover_threshold = max(1, failover_threshold)
        # Default to the fabric's observer so one Observer wired into
        # the executor also sees the library's view of the control
        # plane.
        self._observer = (
            observer if observer is not None
            else getattr(fabric, "observer", NULL_OBSERVER)
        )
        self.dropped_control_messages = 0
        self.reregistrations = 0
        self.replayed_conns = 0
        self.rerouted_conns = 0
        self._endpoint = CONTROLLER_ENDPOINT
        self._failed_over = False
        self._failures_in_row = 0
        if not self._bus.has_endpoint(CONTROLLER_ENDPOINT):
            self._bus.register(CONTROLLER_ENDPOINT, controller.rpc_methods())
        self._pl_of: Dict[str, Optional[int]] = {}
        self._workload_of: Dict[str, str] = {}
        # -- recovery state (fail-open bookkeeping) ---------------------
        #: job_id -> workload for registrations the controller missed.
        self._pending_registrations: Dict[str, str] = {}
        #: flow_id -> (job_id, announced path) for open managed conns.
        self._open_conns: Dict[int, Tuple[str, Tuple[str, ...]]] = {}
        #: Open managed conns whose conn_create never reached the
        #: controller (replayed on recovery; their teardown sends no
        #: conn_destroy while still unacked -- nothing to undo).
        self._unacked: Set[int] = set()
        #: conn_destroy messages the controller missed.
        self._undelivered_destroys: List[Tuple[str, Tuple[str, ...]]] = []
        self._drain_scheduled = False
        self._draining = False

    def _call_controller(self, method: str, **kwargs):
        """One control-plane RPC, honouring ``fail_open``/failover.

        Returns the handler's result, or the module-private
        ``_DROPPED`` sentinel when the call was swallowed fail-open
        (so callers can queue compensating work without confusing a
        drop with a legitimate ``None`` reply)."""
        try:
            result = self._bus.call(self._endpoint, method, **kwargs)
        except (RpcUnavailable, RpcTimeout) as exc:
            self._failures_in_row += 1
            if (
                self._failover is not None
                and not self._failed_over
                and self._failures_in_row >= self._failover_threshold
            ):
                self._promote_failover()
                # The standby is live: re-issue the triggering call.
                return self._bus.call(self._endpoint, method, **kwargs)
            if not self._fail_open:
                raise
            self.dropped_control_messages += 1
            recover_at = getattr(exc, "recover_at", None)
            if recover_at is not None:
                self._schedule_drain(recover_at)
            return _DROPPED
        else:
            self._failures_in_row = 0
            if self._has_backlog() and not self._draining:
                # The controller is reachable again but we never saw
                # an explicit recovery signal: drain opportunistically.
                self.reconcile()
            return result

    @classmethod
    def factory(
        cls,
        controller: SabaController,
        bus: Optional[RpcBus] = None,
        multipath: bool = False,
        observer: Optional[Observer] = None,
        fail_open: bool = False,
        failover: Optional[object] = None,
        failover_threshold: int = 3,
    ) -> Callable[[FluidFabric], "SabaLibrary"]:
        """Connections-factory for :class:`CoRunExecutor`."""
        return lambda fabric: cls(
            fabric, controller, bus=bus, multipath=multipath,
            observer=observer, fail_open=fail_open, failover=failover,
            failover_threshold=failover_threshold,
        )

    @property
    def bus(self) -> RpcBus:
        return self._bus

    @property
    def failed_over(self) -> bool:
        """Whether the standby controller has been promoted."""
        return self._failed_over

    @property
    def pending_registrations(self) -> int:
        """Applications waiting to be re-registered on recovery."""
        return len(self._pending_registrations)

    # -- software interface ----------------------------------------------------

    def saba_app_register(
        self, job_id: str, workload: str
    ) -> Optional[int]:
        """Register the application; caches and returns its PL
        (``None`` when a fail-open registration could not reach the
        controller -- the application runs unmanaged until a recovery
        drain re-registers it)."""
        if job_id in self._pl_of:
            raise RegistrationError(f"{job_id!r} already registered")
        pl = self._call_controller(
            "app_register", job_id=job_id, workload=workload
        )
        if pl is _DROPPED:
            pl = None
            self._pending_registrations[job_id] = workload
        self._pl_of[job_id] = pl
        self._workload_of[job_id] = workload
        obs = self._observer
        if obs.enabled:
            obs.metrics.counter("library.registrations").inc()
            obs.emit(
                LIB_REGISTERED, self._fabric.sim.now, job=job_id,
                workload=workload, pl=pl,
            )
        return pl

    def saba_app_deregister(self, job_id: str) -> None:
        if job_id not in self._pl_of:
            raise RegistrationError(f"{job_id!r} is not registered")
        if self._pending_registrations.pop(job_id, None) is not None:
            # The controller never saw this application: nothing to
            # deregister remotely.
            pass
        elif self._pl_of[job_id] is not None:
            self._call_controller("app_deregister", job_id=job_id)
        del self._pl_of[job_id]
        del self._workload_of[job_id]
        obs = self._observer
        if obs.enabled:
            obs.emit(LIB_DEREGISTERED, self._fabric.sim.now, job=job_id)

    def saba_conn_create(
        self,
        job_id: str,
        src: str,
        dst: str,
        size: float,
        on_complete: Optional[Callable[[Flow], None]] = None,
        coflow: Optional[str] = None,
        rate_cap: Optional[float] = None,
        aux_rate: float = 0.0,
    ) -> Flow:
        """Create a connection carrying the application's PL.

        The PL was acquired at registration, so "setting up the
        connection does not introduce any additional overhead"
        (Section 6) -- no extra round trip happens here beyond the
        path announcement.
        """
        if job_id not in self._pl_of:
            raise RegistrationError(
                f"{job_id!r} must register before creating connections"
            )
        pl = self._pl_of[job_id]  # None = unmanaged (fail-open register)
        flow = Flow(src=src, dst=dst, size=size, app=job_id, pl=pl,
                    coflow=coflow, rate_cap=rate_cap, aux_rate=aux_rate)
        flow.path = tuple(
            self._fabric.router.path_for_flow(src, dst, flow.flow_id)
        )
        if self._multipath:
            announced = sorted(
                {
                    lid
                    for path in self._fabric.router.equal_cost_paths(src, dst)
                    for lid in path
                }
            )
        else:
            announced = list(flow.path)

        managed = pl is not None

        def _teardown(done_flow: Flow) -> None:
            if managed:
                self._open_conns.pop(done_flow.flow_id, None)
                if done_flow.flow_id in self._unacked:
                    # The create never landed: there is nothing for
                    # the controller to undo.
                    self._unacked.discard(done_flow.flow_id)
                elif job_id not in self._pl_of:
                    # The application deregistered while the flow ran;
                    # the controller already purged its port state and
                    # would (rightly) reject the teardown.
                    pass
                else:
                    result = self._call_controller(
                        "conn_destroy", job_id=job_id, path=announced
                    )
                    if result is _DROPPED:
                        self._undelivered_destroys.append(
                            (job_id, tuple(announced))
                        )
            if on_complete is not None:
                on_complete(done_flow)

        if managed:
            result = self._call_controller(
                "conn_create", job_id=job_id, path=announced
            )
            self._open_conns[flow.flow_id] = (job_id, tuple(announced))
            if result is _DROPPED:
                self._unacked.add(flow.flow_id)
        obs = self._observer
        if obs.enabled:
            obs.metrics.counter("library.conns_opened").inc()
            obs.emit(
                LIB_CONN_OPENED, self._fabric.sim.now, job=job_id,
                flow_id=flow.flow_id, src=src, dst=dst, size=size, pl=pl,
                managed=managed,
            )
        return self._fabric.start_flow(flow, on_complete=_teardown)

    def conn_rerouted(self, flow: Flow, old_path: Tuple[str, ...]) -> bool:
        """Re-announce a managed connection after the fabric moved it.

        A link transition (:meth:`FluidFabric.set_link_state`) re-hashes
        the ECMP choice of affected flows; the controller's port state
        still reflects the path announced at creation time.  This
        tears down the old announcement and announces the new one, so
        the pipeline reallocates exactly the ports the flow left and
        joined -- the "reallocated within one sim quantum" step of the
        dynamic-topology story.  Returns ``True`` when an announcement
        was actually re-issued (unmanaged or already-closed flows, and
        multipath announcements whose link set is unchanged, are
        no-ops).
        """
        entry = self._open_conns.get(flow.flow_id)
        if entry is None:
            return False
        job_id, announced = entry
        if self._multipath:
            new_announced = sorted({
                lid
                for path in self._fabric.router.equal_cost_paths(
                    flow.src, flow.dst
                )
                for lid in path
            })
        else:
            new_announced = list(flow.path)
        if tuple(new_announced) == announced:
            return False
        self._open_conns[flow.flow_id] = (job_id, tuple(new_announced))
        if flow.flow_id in self._unacked:
            # The original create never reached the controller; the
            # recovery replay will announce the updated path.
            return True
        if job_id in self._pl_of:
            result = self._call_controller(
                "conn_destroy", job_id=job_id, path=list(announced)
            )
            if result is _DROPPED:
                self._undelivered_destroys.append((job_id, announced))
            result = self._call_controller(
                "conn_create", job_id=job_id, path=new_announced
            )
            if result is _DROPPED:
                self._unacked.add(flow.flow_id)
        self.rerouted_conns += 1
        obs = self._observer
        if obs.enabled:
            obs.metrics.counter("library.rerouted_conns").inc()
        return True

    # -- recovery ---------------------------------------------------------------

    def _has_backlog(self) -> bool:
        return bool(self._pending_registrations or self._unacked
                    or self._undelivered_destroys)

    def _schedule_drain(self, recover_at: float) -> None:
        """One-shot drain at the outage's known end.

        Reactive scheduling keeps the event queue finite: no
        recurring fault events ever live on the engine, so an idle
        fabric still drains exactly as it would without faults.
        """
        if self._drain_scheduled:
            return
        self._drain_scheduled = True
        sim = self._fabric.sim
        sim.schedule_at(max(recover_at, sim.now), self._drain_on_recovery)

    def _drain_on_recovery(self) -> None:
        self._drain_scheduled = False
        self.reconcile()

    def reconcile(self) -> bool:
        """Drain the recovery queue against the live controller.

        Re-registers queued applications, replays open connections the
        controller never heard about, and re-delivers missed
        teardowns.  Stops at the first transport failure (the backlog
        stays queued for the next recovery).  Returns ``True`` when
        the backlog is empty afterwards.
        """
        if self._draining:
            return not self._has_backlog()
        self._draining = True
        obs = self._observer
        try:
            for job_id in list(self._pending_registrations):
                workload = self._pending_registrations[job_id]
                pl = self._call_controller(
                    "app_register", job_id=job_id, workload=workload
                )
                if pl is _DROPPED:
                    return False
                del self._pending_registrations[job_id]
                self._pl_of[job_id] = pl
                self.reregistrations += 1
                if obs.enabled:
                    obs.metrics.counter("library.reregistrations").inc()
                    obs.emit(
                        LIB_REREGISTERED, self._fabric.sim.now, job=job_id,
                        workload=workload, pl=pl,
                    )
            for flow_id in sorted(self._unacked):
                job_id, announced = self._open_conns[flow_id]
                if self._pl_of.get(job_id) is None:
                    self._unacked.discard(flow_id)
                    continue
                try:
                    result = self._call_controller(
                        "conn_create", job_id=job_id, path=list(announced)
                    )
                except RegistrationError:
                    # The controller no longer knows this application
                    # (deregistered during the outage): drop the replay.
                    self._unacked.discard(flow_id)
                    continue
                if result is _DROPPED:
                    return False
                self._unacked.discard(flow_id)
                self.replayed_conns += 1
                if obs.enabled:
                    obs.metrics.counter("library.replayed_conns").inc()
            while self._undelivered_destroys:
                job_id, announced = self._undelivered_destroys[0]
                try:
                    result = self._call_controller(
                        "conn_destroy", job_id=job_id, path=list(announced)
                    )
                except RegistrationError:
                    # The application deregistered during the outage;
                    # the controller purged its port state already, so
                    # there is nothing left to tear down.
                    self._undelivered_destroys.pop(0)
                    continue
                if result is _DROPPED:
                    return False
                self._undelivered_destroys.pop(0)
            return True
        finally:
            self._draining = False

    def _promote_failover(self) -> None:
        """Install the standby controller and rebuild its state.

        The dead primary's endpoint is torn down via
        :meth:`RpcBus.unregister` (the boolean result is advisory: a
        test may have unregistered it already to simulate the crash).
        The standby registers under :data:`FAILOVER_ENDPOINT`, becomes
        the fabric policy, and receives every known registration and
        open connection; applications may be assigned different PLs,
        which only affects connections opened from now on (a PL is
        carried in in-flight headers and cannot change)."""
        standby = self._failover
        assert standby is not None
        self._bus.unregister(self._endpoint)
        self._bus.register(FAILOVER_ENDPOINT, standby.rpc_methods(),
                           replace=True)
        self._endpoint = FAILOVER_ENDPOINT
        self._failed_over = True
        self._failures_in_row = 0
        self._fabric.set_policy(standby)
        for job_id, workload in self._workload_of.items():
            pl = self._bus.call(
                FAILOVER_ENDPOINT, "app_register",
                job_id=job_id, workload=workload,
            )
            self._pl_of[job_id] = pl
        self._pending_registrations.clear()
        for flow_id in sorted(self._open_conns):
            job_id, announced = self._open_conns[flow_id]
            self._bus.call(
                FAILOVER_ENDPOINT, "conn_create",
                job_id=job_id, path=list(announced),
            )
            self.replayed_conns += 1
        # The standby rebuilt from scratch: nothing is unacked or
        # undelivered against it.
        self._unacked.clear()
        self._undelivered_destroys.clear()
        obs = self._observer
        if obs.enabled:
            obs.metrics.counter("library.failovers").inc()
            obs.emit(
                LIB_FAILOVER, self._fabric.sim.now,
                endpoint=FAILOVER_ENDPOINT,
                apps=len(self._workload_of),
                replayed_conns=len(self._open_conns),
            )

    # -- ConnectionAPI (cluster runtime integration) ------------------------------

    def create(
        self,
        job_id: str,
        src: str,
        dst: str,
        size: float,
        on_complete: Callable[[Flow], None],
        coflow: Optional[str] = None,
        rate_cap: Optional[float] = None,
        aux_rate: float = 0.0,
    ) -> Flow:
        return self.saba_conn_create(
            job_id, src, dst, size, on_complete=on_complete, coflow=coflow,
            rate_cap=rate_cap, aux_rate=aux_rate,
        )

    def job_started(self, job: Job) -> None:
        self.saba_app_register(job.job_id, job.workload)

    def job_finished(self, job: Job) -> None:
        self.saba_app_deregister(job.job_id)
