"""Application-to-PL and PL-to-queue clustering (Section 5.3).

Two from-scratch algorithms:

* :func:`kmeans` -- Lloyd's algorithm with k-means++ seeding, used to
  group registered applications into at most S priority levels by the
  coefficients of their sensitivity models (Section 5.3.1: "Saba
  groups applications according to their bandwidth sensitivity using
  the K-means clustering algorithm").

* :class:`PLHierarchy` -- agglomerative clustering over PL centroids
  (Section 5.3.2): level 0 holds every PL in its own cluster; each
  subsequent level merges the two closest clusters, the merged
  cluster's coefficients being "the coordinates of the euclidean
  midpoint of the corresponding coefficients of the two clusters".
  At runtime, :meth:`PLHierarchy.best_clustering` walks the hierarchy
  until the PLs active at a switch output port fall into at most Q
  clusters -- the per-port queue mapping.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ClusteringError


def kmeans(
    points: np.ndarray,
    k: int,
    rng: Optional[random.Random] = None,
    max_iters: int = 100,
) -> Tuple[List[int], np.ndarray]:
    """Lloyd's k-means with k-means++ seeding.

    Args:
        points: (n, d) array of coefficient vectors.
        k: number of clusters; if ``k >= n`` every point gets its own
            cluster (the common case: fewer active applications than
            priority levels).
        rng: seeded random source; defaults to a fixed seed so the
            controller is deterministic.
        max_iters: Lloyd iteration cap.

    Returns:
        ``(labels, centroids)`` where ``labels[i]`` is the cluster of
        point ``i`` and ``centroids`` is a (k', d) array, k' <= k.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or len(points) == 0:
        raise ClusteringError("points must be a non-empty (n, d) array")
    if k < 1:
        raise ClusteringError(f"k must be >= 1: {k}")
    n = len(points)
    if k >= n:
        return list(range(n)), points.copy()
    rng = rng if rng is not None else random.Random(0)

    # k-means++ seeding.
    centroids = [points[rng.randrange(n)]]
    while len(centroids) < k:
        d2 = np.min(
            [np.sum((points - c) ** 2, axis=1) for c in centroids], axis=0
        )
        total = float(d2.sum())
        if total <= 0:
            # All remaining points coincide with a centroid.
            centroids.append(points[rng.randrange(n)])
            continue
        r = rng.random() * total
        idx = int(np.searchsorted(np.cumsum(d2), r))
        centroids.append(points[min(idx, n - 1)])
    centers = np.array(centroids)

    labels = np.zeros(n, dtype=int)
    for _ in range(max_iters):
        dists = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
        new_labels = np.argmin(dists, axis=1)
        for c in range(k):
            members = points[new_labels == c]
            if len(members) == 0:
                # Re-seed an empty cluster at the farthest point.
                far = int(np.argmax(np.min(dists, axis=1)))
                centers[c] = points[far]
                new_labels[far] = c
            else:
                centers[c] = members.mean(axis=0)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    return [int(l) for l in labels], centers


@dataclass(frozen=True)
class HierarchyLevel:
    """One level of the agglomerative hierarchy.

    ``assignment[pl]`` is the cluster id of priority level ``pl`` at
    this level; ``centroids[cluster_id]`` its coefficient vector.
    """

    assignment: Tuple[int, ...]
    centroids: Tuple[Tuple[float, ...], ...]

    def n_clusters(self) -> int:
        return len(self.centroids)

    def clusters_of(self, pls: Sequence[int]) -> FrozenSet[int]:
        return frozenset(self.assignment[pl] for pl in pls)


class PLHierarchy:
    """Precomputed agglomerative clustering of priority levels.

    Built once per application-to-PL epoch; queried per switch output
    port at runtime ("Saba must maintain multiple PL clusters [...] and
    choose the appropriate mapping for each switch port at runtime").
    """

    def __init__(self, pl_centroids: np.ndarray) -> None:
        pl_centroids = np.asarray(pl_centroids, dtype=float)
        if pl_centroids.ndim != 2 or len(pl_centroids) == 0:
            raise ClusteringError("pl_centroids must be a non-empty (S, d) array")
        self.n_pls = len(pl_centroids)
        self.levels: List[HierarchyLevel] = []
        assignment = list(range(self.n_pls))
        centroids: List[np.ndarray] = [c.copy() for c in pl_centroids]
        self._push_level(assignment, centroids)
        while len(centroids) > 1:
            a, b = self._closest_pair(centroids)
            merged = 0.5 * (centroids[a] + centroids[b])  # euclidean midpoint
            new_centroids: List[np.ndarray] = []
            remap: Dict[int, int] = {}
            for old in range(len(centroids)):
                if old in (a, b):
                    continue
                remap[old] = len(new_centroids)
                new_centroids.append(centroids[old])
            merged_id = len(new_centroids)
            new_centroids.append(merged)
            remap[a] = merged_id
            remap[b] = merged_id
            assignment = [remap[c] for c in assignment]
            centroids = new_centroids
            self._push_level(assignment, centroids)

    def _push_level(
        self, assignment: List[int], centroids: List[np.ndarray]
    ) -> None:
        self.levels.append(
            HierarchyLevel(
                assignment=tuple(assignment),
                centroids=tuple(tuple(float(x) for x in c) for c in centroids),
            )
        )

    @staticmethod
    def _closest_pair(centroids: List[np.ndarray]) -> Tuple[int, int]:
        best = (0, 1)
        best_d = float("inf")
        for i in range(len(centroids)):
            for j in range(i + 1, len(centroids)):
                d = float(np.sum((centroids[i] - centroids[j]) ** 2))
                if d < best_d:
                    best_d = d
                    best = (i, j)
        return best

    def best_clustering(
        self, active_pls: Sequence[int], max_clusters: int
    ) -> Tuple[HierarchyLevel, Dict[int, int]]:
        """Find the shallowest level grouping ``active_pls`` into at
        most ``max_clusters`` clusters (Section 5.3.2 steps a-c).

        Returns the level and a dense mapping ``pl -> queue index``
        (queue indices enumerate the clusters actually present at this
        port, so they fit in the port's queue range).
        """
        if max_clusters < 1:
            raise ClusteringError(f"max_clusters must be >= 1: {max_clusters}")
        if not active_pls:
            raise ClusteringError("no active PLs at this port")
        for pl in active_pls:
            if not 0 <= pl < self.n_pls:
                raise ClusteringError(f"PL {pl} outside hierarchy (S={self.n_pls})")
        for level in self.levels:
            present = level.clusters_of(active_pls)
            if len(present) <= max_clusters:
                queue_index = {c: q for q, c in enumerate(sorted(present))}
                pl_to_queue = {
                    pl: queue_index[level.assignment[pl]] for pl in active_pls
                }
                return level, pl_to_queue
        raise ClusteringError("hierarchy bottom reached without a fit")
