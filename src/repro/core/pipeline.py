"""The shared allocation pipeline behind both control planes.

Saba's allocation path (Eq. 2 solve -> PL clustering -> hierarchical
queue mapping -> WFQ programming, Sections 4.2-4.3 and 5.3) used to be
implemented twice: once in :class:`~repro.core.controller.SabaController`
and once in :class:`~repro.core.distributed.DistributedControllerGroup`,
and the copies drifted (reserved-queue handling, usable-queue counts,
observability events).  This module is the single implementation both
frontends now share, factored into the stages the paper describes:

1. **model lookup** -- ``view.model_of``/``view.pl_of`` resolve each
   application at a port to its sensitivity model and priority level
   (per-application models for the centralized controller, PL-centroid
   models from the mapping database for the distributed design);
2. **PL state** -- owned by the frontend (incremental online clustering
   or the static offline database); the pipeline only observes it
   through the view's ``epoch``;
3. **hierarchy** -- ``view.hierarchy()``/``view.row_of`` expose the
   agglomerative PL hierarchy used for queue mapping;
4. **queue mapping** -- :meth:`PLHierarchy.best_clustering` over the
   active PL rows, honouring the reserved queue;
5. **weight solve** -- Eq. 2 over the applications present, memoised
   per multiset of model names;
6. **programming** -- :class:`PortProgrammer` installs the PL-to-queue
   mapping and summed per-queue weights into the port's
   :class:`~repro.simnet.switch.QueueTable` and emits the
   ``port_programmed``/``port_reset`` events.

On top of the shared path sit two perf layers:

* **programmed-signature caching** (on by default): each port's last
  programmed state is summarised as ``(hierarchy epoch, multiset of
  (model name, PL) pairs)`` plus the queue-table generation written.
  A reallocation whose signature matches skips re-clustering,
  ``QueueTable.program`` and the downstream ``invalidate_rates``
  component re-solve entirely.  This is *exact*, not approximate: the
  programmed weights are a pure function of the signature, and fluid
  rates are a pure function of (active flows, weights, capacities), so
  re-deriving an identical table cannot change any rate.  The
  generation check catches out-of-band table mutations (e.g. a policy
  swap resetting ports).
* **event coalescing** (opt-in via ``coalesce_quantum``): connection
  create/destroy updates within one sim-time quantum are batched into
  a single reallocation pass over the deduplicated link set, scheduled
  on the fabric's event loop.  Flows started meanwhile run under the
  last-programmed weights -- exactly the switch-update latency a real
  control plane has.  Eager updates (registration changes) flush the
  pending set into their own pass so ordering stays deterministic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from repro.core.allocation import DEFAULT_MIN_WEIGHT, optimize_weights
from repro.core.clustering import PLHierarchy
from repro.core.sensitivity import SensitivityModel
from repro.errors import RegistrationError
from repro.obs.events import (
    NULL_OBSERVER,
    PORT_PROGRAMMED,
    PORT_RESET,
    REALLOCATION,
    SOLVE_BEGIN,
    SOLVE_END,
    Observer,
)
from repro.simnet.fabric import FluidFabric
from repro.simnet.fairness import WFQScheduler, fecn_collapse
from repro.simnet.switch import QueueTable

#: Fraction of link capacity managed by Saba; both evaluations use
#: 100 % ("we reserve 100% of the link capacity to be managed by
#: Saba", Section 8.1).
DEFAULT_C_SABA = 1.0

#: Signature marker for a port in the unprogrammed (reset) state.
_RESET_SIG = ("__reset__",)


class AllocationView(Protocol):
    """What the pipeline needs to know about the frontend's PL state.

    The centralized controller adapts its incremental clustering state
    to this protocol; the distributed design adapts its static mapping
    database.  ``epoch`` must change whenever PL membership, centroid
    models, or the hierarchy change -- it keys both the Eq. 2 weight
    cache and the per-port signature cache.
    """

    @property
    def epoch(self) -> int:
        """Monotonic hierarchy/centroid revision."""
        ...

    def pl_of(self, job_id: str) -> Optional[int]:
        """Priority level of a registered application."""
        ...

    def model_of(self, job_id: str) -> SensitivityModel:
        """Sensitivity model the weight solve should use."""
        ...

    def workload_of(self, job_id: str) -> Optional[str]:
        """Workload name (operator-facing; ``describe_port``)."""
        ...

    def hierarchy(self) -> Optional[PLHierarchy]:
        """Current PL hierarchy (``None`` while no PL exists)."""
        ...

    def row_of(self, pl: int) -> int:
        """Hierarchy row index of a PL id."""
        ...


@dataclass
class PipelineStats:
    """Counters the pipeline keeps about its own work."""

    passes: int = 0
    port_allocations: int = 0
    port_resets: int = 0
    optimizer_calls: int = 0
    solver_cache_hits: int = 0
    signature_skips: int = 0
    programs: int = 0
    invalidations: int = 0
    invalidations_skipped: int = 0
    coalesced_updates: int = 0
    coalesce_flushes: int = 0
    calc_times: List[float] = field(default_factory=list)


def make_port_scheduler(
    qtable: QueueTable, collapse_alpha: Optional[float]
) -> WFQScheduler:
    """WFQ scheduler bound to a live queue table (both frontends).

    A reprogrammed port takes effect at the next rate recomputation --
    exactly how a real switch update behaves.  ``collapse_alpha``
    threads the underlying transport's FECN congestion collapse in.
    """
    efficiency = fecn_collapse(collapse_alpha) if collapse_alpha else None
    return WFQScheduler(
        queue_of=lambda flow, t=qtable: t.queue_of(flow.pl),
        weight_of=lambda q, t=qtable: t.weight_of(q),
        efficiency_fn=efficiency,
    )


class PortProgrammer:
    """Final pipeline stage: write one port's queue table.

    Owns the reserved-queue policy (shifted Saba queue indices, the
    ``1 - c_saba`` reserved share, the default queue for untagged
    traffic) and the ``port_programmed``/``port_reset`` emissions, so
    both frontends behave identically by construction.
    """

    def __init__(
        self,
        c_saba: float,
        reserved_queue: Optional[int],
        observer: Observer,
        metrics_prefix: str,
    ) -> None:
        self.c_saba = c_saba
        self.reserved_queue = reserved_queue
        self.observer = observer
        self.metrics_prefix = metrics_prefix

    def usable_queues(self, qtable: QueueTable) -> int:
        """Queues available to Saba traffic at this port."""
        reserved = 1 if self.reserved_queue is not None else 0
        return qtable.num_queues - reserved

    def shift_reserved(self, pl_to_queue: Dict[int, int]) -> Dict[int, int]:
        """Move Saba's queue indices off the reserved index."""
        if self.reserved_queue is None:
            return pl_to_queue
        return {
            pl: q if q < self.reserved_queue else q + 1
            for pl, q in pl_to_queue.items()
        }

    def program(
        self,
        qtable: QueueTable,
        link_id: str,
        pl_to_queue: Dict[int, int],
        queue_weights: Dict[int, float],
        n_apps: int,
        now: float,
        context: Mapping[str, object],
    ) -> None:
        if self.reserved_queue is not None:
            queue_weights = dict(queue_weights)
            queue_weights[self.reserved_queue] = max(0.0, 1.0 - self.c_saba)
        qtable.program(pl_to_queue, queue_weights)
        if self.reserved_queue is not None:
            qtable.default_queue = self.reserved_queue
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter(
                f"{self.metrics_prefix}.ports_programmed"
            ).inc()
            obs.emit(
                PORT_PROGRAMMED, now, link=link_id, apps=n_apps,
                **context, **qtable.snapshot(),
            )

    def reset(
        self,
        qtable: QueueTable,
        link_id: str,
        now: float,
        context: Mapping[str, object],
    ) -> None:
        qtable.reset()
        obs = self.observer
        if obs.enabled:
            obs.emit(
                PORT_RESET, now, link=link_id,
                generation=qtable.generation, **context,
            )


class AllocationPipeline:
    """Frontend-agnostic per-port allocation (stages 1-6 above).

    The frontend owns registration, PL state, and per-port connection
    accounting; the pipeline owns everything from "which applications
    send at this port" to the programmed queue table: queue mapping,
    the memoised Eq. 2 solve, programming, observability emission, and
    fabric rate invalidation.
    """

    def __init__(
        self,
        view: AllocationView,
        counter_of: Callable[[str], Optional[Mapping[str, int]]],
        *,
        metrics_prefix: str = "controller",
        c_saba: float = DEFAULT_C_SABA,
        min_weight: float = DEFAULT_MIN_WEIGHT,
        solver: str = "auto",
        reserved_queue: Optional[int] = None,
        use_weight_cache: bool = True,
        use_signature_cache: bool = True,
        coalesce_quantum: float = 0.0,
        observer: Optional[Observer] = None,
        mirror_stats: Optional[object] = None,
        port_context: Optional[
            Callable[[str], Mapping[str, object]]
        ] = None,
    ) -> None:
        """
        Args:
            view: the frontend's PL state (see :class:`AllocationView`).
            counter_of: resolves a link id to its per-application
                connection counter (falsy/None means no connections).
            metrics_prefix: metric namespace (``controller`` /
                ``distributed``) so existing dashboards keep working.
            c_saba / min_weight / solver / reserved_queue: Eq. 2 and
                programming parameters, as on the frontends.
            use_weight_cache: memoise Eq. 2 per model-name multiset.
            use_signature_cache: skip ports whose programmed signature
                is unchanged (exact; see the module docstring).
            coalesce_quantum: sim-seconds to batch connection-churn
                updates over; ``0`` (default) reallocates eagerly.
            observer: observability sink (:mod:`repro.obs`).
            mirror_stats: legacy frontend stats object; matching
                counter attributes (``port_allocations``,
                ``optimizer_calls``, ``calc_times``) are kept in sync.
            port_context: extra key/values for per-port events (the
                distributed frontend adds the owning shard).
        """
        self._view = view
        self._counter_of = counter_of
        self.metrics_prefix = metrics_prefix
        self.c_saba = c_saba
        self.min_weight = min_weight
        self.solver = solver
        self.use_weight_cache = use_weight_cache
        self.use_signature_cache = use_signature_cache
        self.coalesce_quantum = coalesce_quantum
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.programmer = PortProgrammer(
            c_saba=c_saba,
            reserved_queue=reserved_queue,
            observer=self.observer,
            metrics_prefix=metrics_prefix,
        )
        self.stats = PipelineStats()
        self._mirror = mirror_stats
        self._port_context = port_context
        self._fabric: Optional[FluidFabric] = None
        self._weight_cache: Dict[Tuple[str, ...], List[float]] = {}
        self._cache_epoch: Optional[int] = None
        #: link_id -> (signature, generation written) of the last
        #: program/reset this pipeline performed at the port.
        self._signatures: Dict[str, Tuple[object, int]] = {}
        #: Pending coalesced link ids, in arrival order.
        self._pending: Dict[str, None] = {}
        self._flush_scheduled = False

    @property
    def reserved_queue(self) -> Optional[int]:
        return self.programmer.reserved_queue

    # -- wiring -----------------------------------------------------------------

    def attach(self, fabric: FluidFabric) -> None:
        """Bind to a fabric; invalidates all port signatures (the new
        fabric's queue tables are unknown to this pipeline)."""
        self._fabric = fabric
        self._signatures.clear()
        self._pending.clear()
        self._flush_scheduled = False

    def _sim_now(self) -> float:
        """Simulated timestamp for event records (0 when detached)."""
        return self._fabric.sim.now if self._fabric is not None else 0.0

    def _mirror_add(self, attr: str, amount: int = 1) -> None:
        mirror = self._mirror
        if mirror is not None and hasattr(mirror, attr):
            setattr(mirror, attr, getattr(mirror, attr) + amount)

    def _sync_epoch(self) -> None:
        """Lazily drop the Eq. 2 cache when the PL state changed."""
        epoch = self._view.epoch
        if epoch != self._cache_epoch:
            self._weight_cache.clear()
            self._cache_epoch = epoch

    # -- entry points -----------------------------------------------------------

    def reallocate(
        self,
        link_ids: Iterable[str],
        *,
        coalesce: bool = False,
        force: bool = False,
    ) -> None:
        """Re-derive and re-program the given ports.

        ``coalesce=True`` marks the update as batchable connection
        churn: with a positive ``coalesce_quantum`` and an attached
        fabric, the links join the pending set and one flush pass is
        scheduled a quantum from now.  Eager calls merge any pending
        links into their own pass, so no update is ever lost or
        reordered across an eager boundary.  ``force`` bypasses the
        signature cache (used by the Figure 12 full recompute).
        """
        link_ids = list(link_ids)
        if (
            coalesce
            and self.coalesce_quantum > 0.0
            and self._fabric is not None
        ):
            for link_id in link_ids:
                self._pending[link_id] = None
            self.stats.coalesced_updates += 1
            if not self._flush_scheduled:
                self._flush_scheduled = True
                sim = self._fabric.sim
                sim.schedule_at(
                    sim.now + self.coalesce_quantum, self._flush
                )
            return
        if self._pending:
            for link_id in link_ids:
                self._pending[link_id] = None
            link_ids = list(self._pending)
            self._pending.clear()
        self._run_pass(link_ids, force=force)

    def flush_pending(self) -> None:
        """Run any pending coalesced updates now (deterministic
        teardown and tests; the scheduled flush becomes a no-op)."""
        if self._pending:
            link_ids = list(self._pending)
            self._pending.clear()
            self.stats.coalesce_flushes += 1
            self._run_pass(link_ids, force=False)

    def _flush(self) -> None:
        self._flush_scheduled = False
        self.flush_pending()

    def forget_ports(self, link_ids: Iterable[str]) -> int:
        """Drop the signature cache for the given ports; returns how
        many entries were dropped.

        Used when a port's hardware state can no longer be trusted --
        e.g. a link came back from an outage and must be reprogrammed
        even if the app mix at the port is unchanged.  The next
        :meth:`reallocate` pass over a forgotten port always programs
        it.
        """
        dropped = 0
        for link_id in link_ids:
            if self._signatures.pop(link_id, None) is not None:
                dropped += 1
        return dropped

    def recompute_ports(
        self, link_ids: Iterable[str], force: bool = True
    ) -> float:
        """Recompute the given ports' allocations; returns seconds.

        The Figure 12 benchmark path: "the time the controller takes
        to compute the bandwidth share of applications for all
        switches".  No reallocation event is emitted and rates are not
        invalidated -- this is a timing probe, not a control action.
        """
        self._sync_epoch()
        t0 = time.perf_counter()
        for link_id in list(link_ids):
            self._reallocate_port(link_id, force=force)
        return time.perf_counter() - t0

    # -- the reallocation pass --------------------------------------------------

    def _run_pass(self, link_ids: Sequence[str], force: bool) -> None:
        self._sync_epoch()
        self.stats.passes += 1
        t0 = time.perf_counter()
        changed = []
        for link_id in link_ids:
            if self._reallocate_port(link_id, force=force):
                changed.append(link_id)
        elapsed = time.perf_counter() - t0
        self.stats.calc_times.append(elapsed)
        mirror = self._mirror
        if mirror is not None and hasattr(mirror, "calc_times"):
            mirror.calc_times.append(elapsed)
        obs = self.observer
        if obs.enabled:
            prefix = self.metrics_prefix
            obs.metrics.counter(f"{prefix}.reallocations").inc()
            obs.metrics.histogram(f"{prefix}.realloc_seconds").observe(
                elapsed
            )
            obs.emit(
                REALLOCATION, self._sim_now(), ports=len(link_ids),
                duration=elapsed,
            )
        if self._fabric is not None:
            if changed:
                # Only the reprogrammed ports' congestion components
                # need re-solving; the fabric falls back to a full
                # recompute when component-scoped solving is off.
                self._fabric.invalidate_rates(changed)
                self.stats.invalidations += 1
            else:
                # Nothing was reprogrammed: rates are a pure function
                # of (flows, weights, capacities) and none changed
                # here, so the component re-solve is skipped entirely.
                # (Flow starts/finishes mark their own links dirty.)
                self.stats.invalidations_skipped += 1

    def _context_of(self, link_id: str) -> Mapping[str, object]:
        if self._port_context is None:
            return {}
        return self._port_context(link_id)

    def _signature_of(
        self, apps: Sequence[str]
    ) -> Tuple[int, Tuple[Tuple[str, int], ...]]:
        """The exact inputs the programmed table is a function of: the
        hierarchy/centroid epoch plus the multiset of (model name, PL)
        pairs present at the port.  Connection *counts* are deliberately
        excluded -- Eq. 2 weighs applications, not connections."""
        pairs = sorted(
            (self._view.model_of(app).name, self._view.pl_of(app))
            for app in apps
        )
        return (self._view.epoch, tuple(pairs))

    def _reallocate_port(self, link_id: str, force: bool = False) -> bool:
        """Stage 1-6 for one port; returns whether the table changed."""
        fabric = self._fabric
        if fabric is None:
            return False
        counter = self._counter_of(link_id)
        qtable = fabric.topology.port_table(link_id)
        obs = self.observer
        use_sig = self.use_signature_cache
        if not counter:
            if use_sig and not force and self._signatures.get(link_id) == (
                _RESET_SIG, qtable.generation
            ):
                self._note_skip(obs)
                return False
            self.programmer.reset(
                qtable, link_id, self._sim_now(), self._context_of(link_id)
            )
            self.stats.port_resets += 1
            if use_sig:
                self._signatures[link_id] = (_RESET_SIG, qtable.generation)
            return True
        apps = sorted(counter)
        sig: Optional[Tuple[object, ...]] = None
        if use_sig:
            sig = self._signature_of(apps)
            if not force and self._signatures.get(link_id) == (
                sig, qtable.generation
            ):
                self._note_skip(obs)
                return False
        self.stats.port_allocations += 1
        self._mirror_add("port_allocations")
        hierarchy = self._view.hierarchy()
        assert hierarchy is not None
        # Hierarchy rows are positional per epoch; PL ids are stable
        # across epochs, rows are not.
        active_pls = sorted({self._view.pl_of(a) for a in apps})
        active_rows = [self._view.row_of(pl) for pl in active_pls]
        usable = self.programmer.usable_queues(qtable)
        _level, row_to_queue = hierarchy.best_clustering(
            active_rows, max_clusters=max(1, usable)
        )
        pl_to_queue = {
            pl: row_to_queue[self._view.row_of(pl)] for pl in active_pls
        }
        pl_to_queue = self.programmer.shift_reserved(pl_to_queue)
        app_weights = self._weights_for(apps)
        queue_weights: Dict[int, float] = {}
        for app, weight in zip(apps, app_weights):
            queue = pl_to_queue[self._view.pl_of(app)]
            queue_weights[queue] = queue_weights.get(queue, 0.0) + weight
        self.programmer.program(
            qtable, link_id, pl_to_queue, queue_weights, len(apps),
            self._sim_now(), self._context_of(link_id),
        )
        self.stats.programs += 1
        if use_sig:
            self._signatures[link_id] = (sig, qtable.generation)
        return True

    def _note_skip(self, obs: Observer) -> None:
        self.stats.signature_skips += 1
        if obs.enabled:
            obs.metrics.counter(
                f"{self.metrics_prefix}.signature_skips"
            ).inc()

    # -- the weight solve -------------------------------------------------------

    def _weights_for(self, apps: Sequence[str]) -> List[float]:
        """Eq. 2 over the applications at one port (cached).

        Datacenter workloads churn connections far faster than the set
        of co-located applications changes, so the per-model-multiset
        cache eliminates nearly all optimiser invocations in steady
        state (the Figure 12 benchmark disables it to time raw
        calculations)."""
        models = [self._view.model_of(a) for a in apps]
        order = sorted(range(len(apps)), key=lambda i: models[i].name)
        key = tuple(models[i].name for i in order)
        weights_sorted = (
            self._weight_cache.get(key) if self.use_weight_cache else None
        )
        obs = self.observer
        prefix = self.metrics_prefix
        if weights_sorted is None:
            self.stats.optimizer_calls += 1
            self._mirror_add("optimizer_calls")
            ordered_models = [models[i] for i in order]
            solve_stats: Optional[dict] = None
            if obs.enabled:
                solve_stats = {}
                obs.emit(
                    SOLVE_BEGIN, self._sim_now(), apps=len(apps),
                    solver=self.solver,
                )
            t0 = time.perf_counter()
            weights_sorted = optimize_weights(
                ordered_models,
                total=self.c_saba,
                min_weight=min(
                    self.min_weight, self.c_saba / (2 * len(apps))
                ),
                solver=self.solver,
                stats=solve_stats,
            )
            if obs.enabled:
                elapsed = time.perf_counter() - t0
                objective = sum(
                    m.predict(w)
                    for m, w in zip(ordered_models, weights_sorted)
                )
                obs.metrics.counter(f"{prefix}.solver_calls").inc()
                obs.metrics.histogram(f"{prefix}.solve_seconds").observe(
                    elapsed
                )
                obs.emit(
                    SOLVE_END, self._sim_now(), apps=len(apps),
                    solver=(solve_stats or {}).get("solver", self.solver),
                    iterations=(solve_stats or {}).get("iterations"),
                    objective=objective, duration=elapsed,
                )
            if self.use_weight_cache:
                self._weight_cache[key] = weights_sorted
        else:
            self.stats.solver_cache_hits += 1
            if obs.enabled:
                obs.metrics.counter(f"{prefix}.solver_cache_hits").inc()
        weights = [0.0] * len(apps)
        for rank, i in enumerate(order):
            weights[i] = weights_sorted[rank]
        return weights

    # -- observability ----------------------------------------------------------

    def describe_port(self, link_id: str) -> Dict[str, object]:
        """Operator view of one port: who sends there, the PL-to-queue
        mapping in force, and the programmed weights."""
        if self._fabric is None:
            raise RegistrationError("pipeline is not attached to a fabric")
        qtable = self._fabric.topology.port_table(link_id)
        counter = self._counter_of(link_id) or {}
        apps = sorted(counter)
        return {
            "link": link_id,
            "applications": {
                app: {
                    "workload": self._view.workload_of(app),
                    "pl": self._view.pl_of(app),
                    "connections": counter[app],
                    "queue": qtable.queue_of(self._view.pl_of(app)),
                }
                for app in apps
            },
            "weights": qtable.weights,
            "generation": qtable.generation,
        }
