"""The distributed controller design (Section 5.4).

"Eq 2 indicates that the bandwidth calculation for applications on a
given output port is independent of other switches, presenting an
opportunity to distribute the controller's logic.  In such a
distributed design, each controller is responsible for a group of
switches [...] the controllers fetch the application-to-PL mapping and
the PL clusters from a database."

Two components:

* :class:`MappingDatabase` -- built *offline by the profiler* over the
  full sensitivity table: K-means of every profiled workload into the
  network's S priority levels plus the PL hierarchy.  Because the
  mapping is static (not re-clustered per active application set) and
  controllers only know PL-centroid sensitivities, allocations are
  slightly coarser than the centralized controller's -- the ~4 %
  performance gap of Figure 11a.
* :class:`DistributedControllerGroup` -- partitions switches among N
  controller shards.  The Saba library informs the shard owning the
  first switch on a connection's path; that shard configures its own
  ports and forwards the announcement to the shard owning the next
  switch, and so on (``stats.forwards`` counts the extra control-plane
  hops).

Like the centralized controller, this class is a thin *frontend* over
the shared :class:`~repro.core.pipeline.AllocationPipeline`: shard
bookkeeping and the database lookup live here, while queue mapping,
the Eq. 2 solve, port programming, reserved-queue handling and rate
invalidation are the pipeline's -- so the two control planes cannot
drift apart again.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import RegistrationError
from repro.obs.events import (
    APP_DEREGISTERED,
    APP_REGISTERED,
    CONN_CREATED,
    CONN_DESTROYED,
    NULL_OBSERVER,
    Observer,
)
from repro.core.allocation import DEFAULT_MIN_WEIGHT
from repro.core.clustering import PLHierarchy, kmeans
from repro.core.pipeline import (
    DEFAULT_C_SABA,
    AllocationPipeline,
    make_port_scheduler,
)
from repro.core.sensitivity import SensitivityModel
from repro.core.table import SensitivityTable
from repro.simnet.fabric import FluidFabric
from repro.simnet.fairness import LinkScheduler
from repro.simnet.switch import NUM_PRIORITY_LEVELS


class MappingDatabase:
    """Offline application-to-PL mapping and PL hierarchy."""

    def __init__(
        self,
        table: SensitivityTable,
        num_pls: int = NUM_PRIORITY_LEVELS,
        seed: int = 0,
    ) -> None:
        if len(table) == 0:
            raise RegistrationError("cannot build a database from an empty table")
        self.table = table
        names = table.names()
        models = [table.get(n) for n in names]
        degree = max(m.degree for m in models)
        points = np.array([m.as_vector(degree) for m in models])
        labels, centroids = kmeans(points, num_pls, rng=random.Random(seed))
        dense = {pl: i for i, pl in enumerate(sorted(set(labels)))}
        self._pl_of_workload = {
            name: dense[labels[i]] for i, name in enumerate(names)
        }
        self.pl_models: Dict[int, SensitivityModel] = {
            dense[pl]: SensitivityModel(
                name=f"pl{dense[pl]}",
                coefficients=tuple(float(c) for c in centroids[pl]),
                fit_domain=models[0].fit_domain,
                basis=models[0].basis,
            )
            for pl in sorted(set(labels))
        }
        self.hierarchy = PLHierarchy(
            np.array([
                self.pl_models[i].as_vector(degree)
                for i in range(len(self.pl_models))
            ])
        )

    def pl_of(self, workload: str) -> int:
        try:
            return self._pl_of_workload[workload]
        except KeyError:
            raise RegistrationError(
                f"workload {workload!r} is not in the mapping database"
            ) from None

    def replicate(self) -> "MappingDatabase":
        """A replica (the design co-locates one with each controller)."""
        replica = object.__new__(MappingDatabase)
        replica.table = self.table
        replica._pl_of_workload = dict(self._pl_of_workload)
        replica.pl_models = dict(self.pl_models)
        replica.hierarchy = self.hierarchy
        return replica


@dataclass
class DistributedStats:
    """Control-plane accounting across all shards."""

    registrations: int = 0
    deregistrations: int = 0
    conn_creates: int = 0
    conn_destroys: int = 0
    forwards: int = 0
    port_allocations: int = 0
    optimizer_calls: int = 0
    calc_times: List[float] = field(default_factory=list)
    per_shard_messages: Counter = field(default_factory=Counter)


class _ControllerShard:
    """One controller instance owning a subset of switches."""

    def __init__(self, shard_id: int, db: MappingDatabase) -> None:
        self.shard_id = shard_id
        self.db = db
        self.port_apps: Dict[str, Counter] = {}


class _DatabaseView:
    """Adapts the static mapping database to the pipeline's
    :class:`~repro.core.pipeline.AllocationView` protocol.

    The database never re-clusters, so the epoch is constant and the
    hierarchy rows are the dense PL ids themselves."""

    def __init__(self, group: "DistributedControllerGroup") -> None:
        self._g = group

    @property
    def epoch(self) -> int:
        return 0

    def pl_of(self, job_id: str) -> Optional[int]:
        workload = self._g._apps.get(job_id)
        if workload is None:
            return None
        return self._g.db.pl_of(workload)

    def model_of(self, job_id: str) -> SensitivityModel:
        pl = self.pl_of(job_id)
        assert pl is not None
        return self._g.db.pl_models[pl]

    def workload_of(self, job_id: str) -> Optional[str]:
        return self._g._apps.get(job_id)

    def hierarchy(self) -> Optional[PLHierarchy]:
        return self._g.db.hierarchy

    def row_of(self, pl: int) -> int:
        return pl


class DistributedControllerGroup:
    """N controller shards + replicated mapping database.

    Satisfies both the fabric-policy protocol and the controller RPC
    surface, so the Saba library works with it unchanged.
    """

    name = "saba-distributed"

    def __init__(
        self,
        db: MappingDatabase,
        n_shards: int = 4,
        c_saba: float = DEFAULT_C_SABA,
        min_weight: float = DEFAULT_MIN_WEIGHT,
        solver: str = "auto",
        collapse_alpha: Optional[float] = None,
        reserved_queue: Optional[int] = None,
        use_weight_cache: bool = True,
        use_signature_cache: bool = True,
        coalesce_quantum: float = 0.0,
        observer: Optional[Observer] = None,
    ) -> None:
        if n_shards < 1:
            raise RegistrationError(f"n_shards must be >= 1: {n_shards}")
        self.db = db
        self.n_shards = n_shards
        self.c_saba = c_saba
        self.min_weight = min_weight
        self.solver = solver
        self.collapse_alpha = collapse_alpha
        self.reserved_queue = reserved_queue
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.stats = DistributedStats()
        self._shards = [
            _ControllerShard(i, db.replicate()) for i in range(n_shards)
        ]
        self._owner_of_switch: Dict[str, int] = {}
        self._apps: Dict[str, str] = {}
        self._fabric: Optional[FluidFabric] = None
        self._schedulers: Dict[str, LinkScheduler] = {}
        self.pipeline = AllocationPipeline(
            _DatabaseView(self),
            self._counter_of,
            metrics_prefix="distributed",
            c_saba=c_saba,
            min_weight=min_weight,
            solver=solver,
            reserved_queue=reserved_queue,
            use_weight_cache=use_weight_cache,
            use_signature_cache=use_signature_cache,
            coalesce_quantum=coalesce_quantum,
            observer=self.observer,
            mirror_stats=self.stats,
            port_context=self._port_context,
        )

    # -- controller RPC surface --------------------------------------------------

    def rpc_methods(self) -> Dict[str, object]:
        return {
            "app_register": self.app_register,
            "app_deregister": self.app_deregister,
            "conn_create": self.conn_create,
            "conn_destroy": self.conn_destroy,
            "ping": self.ping,
        }

    def ping(self) -> Dict[str, object]:
        """Liveness probe for the resilient RPC layer; side-effect free."""
        return {"ok": True, "apps": len(self._apps)}

    def app_register(self, job_id: str, workload: str) -> int:
        """PL lookup is a database read -- no global re-clustering."""
        if job_id in self._apps:
            raise RegistrationError(f"application {job_id!r} already registered")
        pl = self.db.pl_of(workload)
        self._apps[job_id] = workload
        self.stats.registrations += 1
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter("distributed.registrations").inc()
            obs.emit(APP_REGISTERED, self._sim_now(), job=job_id,
                     workload=workload, pl=pl)
        return pl

    def app_deregister(self, job_id: str) -> None:
        if job_id not in self._apps:
            raise RegistrationError(f"application {job_id!r} is not registered")
        del self._apps[job_id]
        self.stats.deregistrations += 1
        affected = [
            link_id
            for shard in self._shards
            for link_id, counter in shard.port_apps.items()
            if job_id in counter
        ]
        for shard in self._shards:
            for counter in shard.port_apps.values():
                counter.pop(job_id, None)
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter("distributed.deregistrations").inc()
            obs.emit(APP_DEREGISTERED, self._sim_now(), job=job_id)
        # A deregistered application may leave connections behind on
        # its ports; their allocations must be re-derived without it
        # (the centralized controller always did -- parity fix).
        self.pipeline.reallocate(affected)

    def conn_create(self, job_id: str, path: Sequence[str]) -> None:
        if job_id not in self._apps:
            raise RegistrationError(
                f"connection for unregistered application {job_id!r}"
            )
        self.stats.conn_creates += 1
        self._walk_path(path, job_id, delta=+1)
        self.pipeline.reallocate(path, coalesce=True)

    def conn_destroy(self, job_id: str, path: Sequence[str]) -> None:
        """Tear down a connection (symmetric with :meth:`conn_create`:
        unregistered applications are rejected, not silently ignored)."""
        if job_id not in self._apps:
            raise RegistrationError(
                f"teardown for unregistered application {job_id!r}"
            )
        self.stats.conn_destroys += 1
        self._walk_path(path, job_id, delta=-1)
        self.pipeline.reallocate(path, coalesce=True)

    def _sim_now(self) -> float:
        """Simulated timestamp for event records (0 when detached)."""
        return self._fabric.sim.now if self._fabric is not None else 0.0

    def _walk_path(self, path: Sequence[str], job_id: str, delta: int) -> None:
        """Hop from shard to shard along the path (Section 5.4).

        Pure control-plane accounting: the shard owning each port
        updates its connection counters; the allocation itself is the
        shared pipeline's job afterwards."""
        obs = self.observer
        if obs.enabled:
            obs.emit(
                CONN_CREATED if delta > 0 else CONN_DESTROYED,
                self._sim_now(), job=job_id, links=list(path),
            )
        previous_shard: Optional[int] = None
        for link_id in path:
            shard_id = self._shard_of_link(link_id)
            shard = self._shards[shard_id]
            if previous_shard is not None and shard_id != previous_shard:
                self.stats.forwards += 1
            previous_shard = shard_id
            self.stats.per_shard_messages[shard_id] += 1
            counter = shard.port_apps.setdefault(link_id, Counter())
            counter[job_id] += delta
            if counter[job_id] <= 0:
                del counter[job_id]
            if not counter:
                del shard.port_apps[link_id]

    def _shard_of_link(self, link_id: str) -> int:
        if self._fabric is None:
            raise RegistrationError("controller group is not attached")
        link = self._fabric.topology.link(link_id)
        owner = self._owner_of_switch.get(link.src)
        if owner is None:
            # Server NIC ports are managed by the shard of the first
            # switch they feed.
            owner = self._owner_of_switch.get(link.dst, 0)
        return owner

    # -- pipeline wiring --------------------------------------------------------

    def _counter_of(self, link_id: str) -> Optional[Counter]:
        shard = self._shards[self._shard_of_link(link_id)]
        return shard.port_apps.get(link_id)

    def _port_context(self, link_id: str) -> Mapping[str, object]:
        return {"shard": self._shard_of_link(link_id)}

    # -- observability ----------------------------------------------------------

    def describe_port(self, link_id: str) -> Dict[str, object]:
        """Operator view of one port (delegates to the pipeline)."""
        return self.pipeline.describe_port(link_id)

    # -- benchmarking support ---------------------------------------------------

    def recompute_all_ports(self) -> float:
        """Recompute every known port's allocation; returns seconds."""
        return self.pipeline.recompute_ports([
            link_id
            for shard in self._shards
            for link_id in shard.port_apps
        ])

    # -- FabricPolicy -----------------------------------------------------------------

    def attach(self, fabric: FluidFabric) -> None:
        self._fabric = fabric
        switches = sorted(fabric.topology.switches)
        for i, switch in enumerate(switches):
            self._owner_of_switch[switch] = i % self.n_shards
        self.pipeline.attach(fabric)
        for state in fabric.topology.link_states.values():
            state.efficiency_fn = None

    def scheduler_of(self, link_id: str) -> LinkScheduler:
        scheduler = self._schedulers.get(link_id)
        if scheduler is None:
            if self._fabric is None:
                raise RegistrationError("controller group is not attached")
            qtable = self._fabric.topology.port_table(link_id)
            scheduler = make_port_scheduler(qtable, self.collapse_alpha)
            self._schedulers[link_id] = scheduler
        return scheduler

    def on_flow_started(self, flow) -> None:  # noqa: D102
        pass

    def on_flow_finished(self, flow) -> None:  # noqa: D102
        pass
