"""The Saba controller (Section 5).

The controller keeps a registry of Saba-compliant applications and the
per-port sets of connections they have open.  On every registration,
deregistration, connection creation and connection destruction it

1. re-derives the application-to-PL mapping (K-means over sensitivity
   coefficients, Section 5.3.1) when the application set changed;
2. rebuilds the PL hierarchy (Section 5.3.2) for PL-to-queue mapping;
3. hands the affected ports to the shared
   :class:`~repro.core.pipeline.AllocationPipeline`, which solves
   Eq. 2 over the applications present, maps their PLs to the port's
   queues via the hierarchy, and programs the port's SL/VL-style
   :class:`~repro.simnet.switch.QueueTable` with the summed per-queue
   weights.

The controller doubles as the fabric's allocation policy: it installs
:class:`~repro.simnet.fairness.WFQScheduler` on every link, bound to
the live queue tables, so a reprogrammed port takes effect at the next
rate recomputation -- exactly how a real switch update behaves.

This class is a thin *frontend*: registration, incremental clustering
and per-port connection accounting live here; everything from "which
applications send at this port" down to the programmed queue table
(queue mapping, the memoised Eq. 2 solve, programming, fabric rate
invalidation, signature caching and event coalescing) is the shared
pipeline's job, identical between this and the distributed design.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import RegistrationError
from repro.obs.events import (
    APP_DEREGISTERED,
    APP_REGISTERED,
    CONN_CREATED,
    CONN_DESTROYED,
    MODEL_LOW_FIT,
    NULL_OBSERVER,
    Observer,
)
from repro.core.allocation import DEFAULT_MIN_WEIGHT
from repro.core.clustering import PLHierarchy
from repro.core.pipeline import (
    DEFAULT_C_SABA,
    AllocationPipeline,
    make_port_scheduler,
)
from repro.core.sensitivity import LOW_FIT_R2, SensitivityModel
from repro.core.table import SensitivityTable
from repro.simnet.fabric import FluidFabric
from repro.simnet.fairness import LinkScheduler
from repro.simnet.switch import NUM_PRIORITY_LEVELS

__all__ = ["DEFAULT_C_SABA", "ControllerStats", "SabaController"]


@dataclass
class ControllerStats:
    """Observability counters for tests and the Figure 12 benchmark."""

    registrations: int = 0
    deregistrations: int = 0
    conn_creates: int = 0
    conn_destroys: int = 0
    reclusterings: int = 0
    port_allocations: int = 0
    optimizer_calls: int = 0
    calc_times: List[float] = field(default_factory=list)


class _ControllerView:
    """Adapts the controller's clustering state to the pipeline's
    :class:`~repro.core.pipeline.AllocationView` protocol."""

    def __init__(self, controller: "SabaController") -> None:
        self._c = controller

    @property
    def epoch(self) -> int:
        # Sum of two monotonic revisions: the controller's own
        # clustering epoch and the model provider's.  Online refits
        # change model *coefficients* without changing model *names*,
        # so without the provider term the pipeline's weight and
        # signature caches would keep serving pre-refit solutions.
        return self._c._epoch + self._c._provider.epoch

    def pl_of(self, job_id: str) -> Optional[int]:
        return self._c._pl_of.get(job_id)

    def model_of(self, job_id: str) -> SensitivityModel:
        return self._c._model_of(job_id)

    def workload_of(self, job_id: str) -> Optional[str]:
        return self._c._apps.get(job_id)

    def hierarchy(self) -> Optional[PLHierarchy]:
        return self._c._hierarchy

    def row_of(self, pl: int) -> int:
        return self._c._row_of[pl]


class SabaController:
    """Centralized controller: registration API + fabric policy."""

    name = "saba"

    def __init__(
        self,
        table: SensitivityTable,
        num_pls: int = NUM_PRIORITY_LEVELS,
        c_saba: float = DEFAULT_C_SABA,
        min_weight: float = DEFAULT_MIN_WEIGHT,
        solver: str = "auto",
        collapse_alpha: Optional[float] = None,
        reserved_queue: Optional[int] = None,
        use_weight_cache: bool = True,
        use_group_models: bool = False,
        use_signature_cache: bool = True,
        coalesce_quantum: float = 0.0,
        seed: int = 0,
        observer: Optional[Observer] = None,
        model_provider: Optional[object] = None,
    ) -> None:
        """
        Args:
            table: profiler output (workload -> sensitivity model).
            num_pls: priority levels supported by the network
                (InfiniBand: 16 service levels).
            c_saba: link-capacity share managed by Saba (Eq. 2's
                constraint right-hand side).
            min_weight: starvation floor per application.
            solver: Eq. 2 solver ("auto" / "slsqp" / "kkt" / "projgrad").
            collapse_alpha: per-queue congestion-control loss of the
                underlying transport (see
                :func:`repro.simnet.fairness.fecn_collapse`).  Saba
                "does not mandate any changes to deployed
                congestion-control protocols", so testbed comparisons
                pass the InfiniBand baseline's alpha here; VL
                separation then mitigates (but does not remove) the
                collapse.  ``None`` for an ideal transport
                (simulation studies).
            reserved_queue: statically reserved queue index for
                non-Saba-compliant traffic; weights leave it
                ``1 - c_saba`` of the capacity.
            observer: observability sink (:mod:`repro.obs`); emits
                registration, solve, and port-programming events.  The
                no-op default costs nothing.
            use_weight_cache: memoise Eq. 2 per application multiset.
            use_group_models: solve Eq. 2 with PL-group centroid models
                instead of per-application models (the information a
                database-driven distributed controller has).
            use_signature_cache: skip reprogramming ports whose
                programmed signature is unchanged (exact; see
                :mod:`repro.core.pipeline`).
            coalesce_quantum: sim-seconds over which connection-churn
                port updates are batched into one reallocation pass
                (0 = eager, the default).
            seed: K-means seeding (determinism).
            model_provider: where sensitivity models come from (a
                :class:`~repro.online.provider.ModelProvider`).  The
                default wraps ``table`` in an
                :class:`~repro.online.provider.OfflineModelProvider`,
                which reproduces the classic table-lookup behaviour
                bit for bit; pass an online/hybrid provider to admit
                applications the profiler has never seen.
        """
        if num_pls < 1:
            raise RegistrationError(f"num_pls must be >= 1: {num_pls}")
        self.table = table
        if model_provider is None:
            # Imported lazily: repro.online imports repro.core, so a
            # module-level import here would be circular.
            from repro.online.provider import OfflineModelProvider

            model_provider = OfflineModelProvider(table)
        self._provider = model_provider
        self.num_pls = num_pls
        self.c_saba = c_saba
        self.min_weight = min_weight
        self.solver = solver
        self.collapse_alpha = collapse_alpha
        self.reserved_queue = reserved_queue
        self.use_weight_cache = use_weight_cache
        self.use_group_models = use_group_models
        self.observer = observer if observer is not None else NULL_OBSERVER
        self._rng = random.Random(seed)

        self.stats = ControllerStats()
        self._fabric: Optional[FluidFabric] = None
        self._apps: Dict[str, str] = {}  # job_id -> workload
        self._pl_of: Dict[str, int] = {}  # job_id -> PL
        self._pl_members: Dict[int, set] = {}  # PL -> job_ids
        self._pl_models: Dict[int, SensitivityModel] = {}
        self._hierarchy: Optional[PLHierarchy] = None
        self._hier_pls: List[int] = []  # hierarchy row -> PL id
        self._row_of: Dict[int, int] = {}  # PL id -> hierarchy row
        self._epoch = 0  # bumped on every centroid/hierarchy change
        self._port_apps: Dict[str, Counter] = {}  # link_id -> job_id counts
        self._schedulers: Dict[str, LinkScheduler] = {}
        self.pipeline = AllocationPipeline(
            _ControllerView(self),
            self._port_apps.get,
            metrics_prefix="controller",
            c_saba=c_saba,
            min_weight=min_weight,
            solver=solver,
            reserved_queue=reserved_queue,
            use_weight_cache=use_weight_cache,
            use_signature_cache=use_signature_cache,
            coalesce_quantum=coalesce_quantum,
            observer=self.observer,
            mirror_stats=self.stats,
        )

    # -- software-interface endpoints (called via the Saba library) ---------

    def rpc_methods(self) -> Dict[str, object]:
        """Endpoint map for registration on an :class:`RpcBus`."""
        return {
            "app_register": self.app_register,
            "app_deregister": self.app_deregister,
            "conn_create": self.conn_create,
            "conn_destroy": self.conn_destroy,
            "ping": self.ping,
        }

    def ping(self) -> Dict[str, object]:
        """Liveness probe for the resilient RPC layer; side-effect free."""
        return {"ok": True, "apps": len(self._apps)}

    def app_register(self, job_id: str, workload: str) -> int:
        """Register an application; returns its priority level.

        Raises :class:`RegistrationError` for duplicates or workloads
        the profiler has never seen (there is no model to allocate by).
        """
        if job_id in self._apps:
            raise RegistrationError(f"application {job_id!r} already registered")
        if not self._provider.has_model(workload):
            raise RegistrationError(
                f"workload {workload!r} has no profile; run the offline "
                "profiler first"
            )
        self._apps[job_id] = workload
        self.stats.registrations += 1
        self._assign_pl(job_id)
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter("controller.registrations").inc()
            obs.emit(
                APP_REGISTERED, self._sim_now(), job=job_id,
                workload=workload, pl=self._pl_of[job_id],
            )
            model = self._provider.model_of(workload)
            if model.r_squared is not None and model.r_squared < LOW_FIT_R2:
                # The allocation this application gets rests on a fit
                # that explains little of its profiled variance; warn
                # the operator at the moment the model is consumed.
                obs.emit(
                    MODEL_LOW_FIT, self._sim_now(), job=job_id,
                    workload=workload, model=model.name,
                    r_squared=model.r_squared, threshold=LOW_FIT_R2,
                    source="registration",
                )
        self.pipeline.reallocate(self._port_apps.keys())
        return self._pl_of[job_id]

    def app_deregister(self, job_id: str) -> None:
        if job_id not in self._apps:
            raise RegistrationError(f"application {job_id!r} is not registered")
        del self._apps[job_id]
        self.stats.deregistrations += 1
        for counter in self._port_apps.values():
            counter.pop(job_id, None)
        self._release_pl(job_id)
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter("controller.deregistrations").inc()
            obs.emit(APP_DEREGISTERED, self._sim_now(), job=job_id)
        self.pipeline.reallocate(self._port_apps.keys())

    def conn_create(self, job_id: str, path: Sequence[str]) -> None:
        """Account a new connection and re-enforce its ports."""
        if job_id not in self._apps:
            raise RegistrationError(
                f"connection for unregistered application {job_id!r}"
            )
        self.stats.conn_creates += 1
        for link_id in path:
            self._port_apps.setdefault(link_id, Counter())[job_id] += 1
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter("controller.conn_creates").inc()
            obs.emit(
                CONN_CREATED, self._sim_now(), job=job_id,
                links=list(path),
            )
        self.pipeline.reallocate(path, coalesce=True)

    def conn_destroy(self, job_id: str, path: Sequence[str]) -> None:
        """Tear down a connection (symmetric with :meth:`conn_create`:
        unregistered applications are rejected, not silently ignored)."""
        if job_id not in self._apps:
            raise RegistrationError(
                f"teardown for unregistered application {job_id!r}"
            )
        self.stats.conn_destroys += 1
        for link_id in path:
            counter = self._port_apps.get(link_id)
            if counter is None:
                continue
            counter[job_id] -= 1
            if counter[job_id] <= 0:
                del counter[job_id]
            if not counter:
                del self._port_apps[link_id]
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter("controller.conn_destroys").inc()
            obs.emit(
                CONN_DESTROYED, self._sim_now(), job=job_id,
                links=list(path),
            )
        self.pipeline.reallocate(path, coalesce=True)

    def pl_of(self, job_id: str) -> int:
        try:
            return self._pl_of[job_id]
        except KeyError:
            raise RegistrationError(f"{job_id!r} has no PL (not registered)") from None

    # -- FabricPolicy -----------------------------------------------------------

    def attach(self, fabric: FluidFabric) -> None:
        self._fabric = fabric
        self.pipeline.attach(fabric)
        for state in fabric.topology.link_states.values():
            state.efficiency_fn = None

    def scheduler_of(self, link_id: str) -> LinkScheduler:
        scheduler = self._schedulers.get(link_id)
        if scheduler is None:
            if self._fabric is None:
                raise RegistrationError("controller is not attached to a fabric")
            qtable = self._fabric.topology.port_table(link_id)
            scheduler = make_port_scheduler(qtable, self.collapse_alpha)
            self._schedulers[link_id] = scheduler
        return scheduler

    def on_flow_started(self, flow) -> None:
        """No-op: the library reports connections via conn_create."""

    def on_flow_finished(self, flow) -> None:
        """No-op: the library reports teardown via conn_destroy."""

    # -- clustering --------------------------------------------------------------

    def _model_of(self, job_id: str) -> SensitivityModel:
        if self.use_group_models and self._pl_models:
            return self._pl_models[self._pl_of[job_id]]
        return self._provider.model_of(self._apps[job_id])

    # Section 5.3.1 asks for K-means over registered applications.  A
    # batch re-clustering on every (de)registration would renumber
    # PLs, but a PL is carried in the headers of *in-flight*
    # connections (InfiniBand SLs are fixed at connection setup), so
    # an application's PL must stay stable for its lifetime.  We
    # therefore cluster *incrementally*: a registering application
    # joins the PL whose centroid matches its sensitivity
    # coefficients, gets a fresh PL while fewer than S are in use, and
    # otherwise joins the nearest centroid -- the online equivalent of
    # the paper's K-means grouping.

    def _assign_pl(self, job_id: str) -> None:
        model = self._provider.model_of(self._apps[job_id])
        degree = model.degree
        vec = model.as_vector(degree)
        chosen: Optional[int] = None
        # Exact-centroid match first (same workload => same PL).
        best_pl, best_dist = None, float("inf")
        for pl, centroid_model in self._pl_models.items():
            centroid = centroid_model.as_vector(degree)
            dist = float(np.sum((centroid - vec) ** 2))
            if dist < best_dist:
                best_pl, best_dist = pl, dist
        if best_pl is not None and best_dist < 1e-12:
            chosen = best_pl
        elif len(self._pl_members) < self.num_pls:
            chosen = next(
                pl for pl in range(self.num_pls) if pl not in self._pl_members
            )
        else:
            chosen = best_pl
        assert chosen is not None
        self._pl_of[job_id] = chosen
        self._pl_members.setdefault(chosen, set()).add(job_id)
        self._refresh_pl_state(chosen, reference=model)

    def _release_pl(self, job_id: str) -> None:
        pl = self._pl_of.pop(job_id, None)
        if pl is None:
            return
        members = self._pl_members.get(pl)
        if members is None:
            return
        members.discard(job_id)
        if not members:
            del self._pl_members[pl]
            self._pl_models.pop(pl, None)
            self._rebuild_hierarchy()
        else:
            self._refresh_pl_state(pl)

    def _refresh_pl_state(
        self, pl: int, reference: Optional[SensitivityModel] = None
    ) -> None:
        """Recompute one PL's centroid model and rebuild the hierarchy."""
        self.stats.reclusterings += 1
        members = self._pl_members[pl]
        models = [
            self._provider.model_of(self._apps[j]) for j in sorted(members)
        ]
        if reference is None:
            reference = models[0]
        degree = max(m.degree for m in models)
        centroid = np.mean([m.as_vector(degree) for m in models], axis=0)
        self._pl_models[pl] = SensitivityModel(
            name=f"pl{pl}",
            coefficients=tuple(float(c) for c in centroid),
            fit_domain=reference.fit_domain,
            basis=reference.basis,
        )
        self._rebuild_hierarchy()

    def _rebuild_hierarchy(self) -> None:
        # The epoch bump invalidates the pipeline's Eq. 2 cache and
        # every port's programmed signature: centroid models changed,
        # so cached solutions and signatures are stale.
        self._epoch += 1
        if not self._pl_models:
            self._hierarchy = None
            self._hier_pls = []
            self._row_of = {}
            return
        self._hier_pls = sorted(self._pl_models)
        self._row_of = {pl: row for row, pl in enumerate(self._hier_pls)}
        degree = max(m.degree for m in self._pl_models.values())
        self._hierarchy = PLHierarchy(
            np.array([
                self._pl_models[pl].as_vector(degree) for pl in self._hier_pls
            ])
        )

    # -- online model updates ----------------------------------------------------

    def on_models_updated(self, workloads: Sequence[str]) -> None:
        """React to the model provider changing models mid-run.

        Designed as the callback for
        :meth:`~repro.online.estimator.OnlineSensitivityEstimator.subscribe`:
        refreshes the PL centroids of every priority level with a
        member of an affected workload (the provider now answers
        ``model_of`` differently for them) and re-enforces all known
        ports.  PL *membership* is deliberately untouched -- a PL is
        carried in the headers of in-flight connections, so, exactly
        as for registrations, only centroids may move.

        Cheap no-op when no registered application runs an affected
        workload: the provider's epoch bump alone invalidates the
        pipeline caches for future passes.
        """
        affected = set(workloads)
        pls = sorted({
            self._pl_of[job_id]
            for job_id, workload in self._apps.items()
            if workload in affected and job_id in self._pl_of
        })
        if not pls:
            return
        for pl in pls:
            self._refresh_pl_state(pl)
        self.pipeline.reallocate(self._port_apps.keys())

    # -- allocation ---------------------------------------------------------------

    def _sim_now(self) -> float:
        """Simulated timestamp for event records (0 when detached)."""
        return self._fabric.sim.now if self._fabric is not None else 0.0

    # -- observability ------------------------------------------------------------

    def describe_port(self, link_id: str) -> Dict[str, object]:
        """Operator view of one port (delegates to the pipeline)."""
        return self.pipeline.describe_port(link_id)

    # -- benchmarking support ---------------------------------------------------

    def recompute_all_ports(self) -> float:
        """Recompute every known port's allocation; returns seconds.

        Used by the Figure 12 benchmark: "the time the controller takes
        to compute the bandwidth share of applications for all
        switches".  Bypasses the signature cache -- the point is to
        time the full calculation.
        """
        return self.pipeline.recompute_ports(list(self._port_apps))
