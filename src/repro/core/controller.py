"""The Saba controller (Section 5).

The controller keeps a registry of Saba-compliant applications and the
per-port sets of connections they have open.  On every registration,
deregistration, connection creation and connection destruction it

1. re-derives the application-to-PL mapping (K-means over sensitivity
   coefficients, Section 5.3.1) when the application set changed;
2. rebuilds the PL hierarchy (Section 5.3.2) for PL-to-queue mapping;
3. for each switch output port whose flow set changed, solves Eq. 2
   over the applications present, maps their PLs to the port's queues
   via the hierarchy, and programs the port's SL/VL-style
   :class:`~repro.simnet.switch.QueueTable` with the summed per-queue
   weights.

The controller doubles as the fabric's allocation policy: it installs
:class:`~repro.simnet.fairness.WFQScheduler` on every link, bound to
the live queue tables, so a reprogrammed port takes effect at the next
rate recomputation -- exactly how a real switch update behaves.

Equation 2 solutions are memoised per multiset of application models:
datacenter workloads churn connections far faster than the set of
co-located applications changes, so the cache eliminates nearly all
optimiser invocations in steady state (the Figure 12 benchmark runs
with the cache disabled to time raw calculations).
"""

from __future__ import annotations

import random
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import RegistrationError
from repro.obs.events import (
    APP_DEREGISTERED,
    APP_REGISTERED,
    CONN_CREATED,
    CONN_DESTROYED,
    NULL_OBSERVER,
    PORT_PROGRAMMED,
    PORT_RESET,
    REALLOCATION,
    SOLVE_BEGIN,
    SOLVE_END,
    Observer,
)
from repro.core.allocation import DEFAULT_MIN_WEIGHT, optimize_weights
from repro.core.clustering import PLHierarchy
from repro.core.sensitivity import SensitivityModel
from repro.core.table import SensitivityTable
from repro.simnet.fabric import FluidFabric
from repro.simnet.fairness import LinkScheduler, WFQScheduler, fecn_collapse
from repro.simnet.flows import Flow
from repro.simnet.switch import NUM_PRIORITY_LEVELS

#: Fraction of link capacity managed by Saba; both evaluations use
#: 100 % ("we reserve 100% of the link capacity to be managed by
#: Saba", Section 8.1).
DEFAULT_C_SABA = 1.0


@dataclass
class ControllerStats:
    """Observability counters for tests and the Figure 12 benchmark."""

    registrations: int = 0
    deregistrations: int = 0
    conn_creates: int = 0
    conn_destroys: int = 0
    reclusterings: int = 0
    port_allocations: int = 0
    optimizer_calls: int = 0
    calc_times: List[float] = field(default_factory=list)


class SabaController:
    """Centralized controller: registration API + fabric policy."""

    name = "saba"

    def __init__(
        self,
        table: SensitivityTable,
        num_pls: int = NUM_PRIORITY_LEVELS,
        c_saba: float = DEFAULT_C_SABA,
        min_weight: float = DEFAULT_MIN_WEIGHT,
        solver: str = "auto",
        collapse_alpha: Optional[float] = None,
        reserved_queue: Optional[int] = None,
        use_weight_cache: bool = True,
        use_group_models: bool = False,
        seed: int = 0,
        observer: Optional[Observer] = None,
    ) -> None:
        """
        Args:
            table: profiler output (workload -> sensitivity model).
            num_pls: priority levels supported by the network
                (InfiniBand: 16 service levels).
            c_saba: link-capacity share managed by Saba (Eq. 2's
                constraint right-hand side).
            min_weight: starvation floor per application.
            solver: Eq. 2 solver ("auto" / "slsqp" / "kkt" / "projgrad").
            collapse_alpha: per-queue congestion-control loss of the
                underlying transport (see
                :func:`repro.simnet.fairness.fecn_collapse`).  Saba
                "does not mandate any changes to deployed
                congestion-control protocols", so testbed comparisons
                pass the InfiniBand baseline's alpha here; VL
                separation then mitigates (but does not remove) the
                collapse.  ``None`` for an ideal transport
                (simulation studies).
            reserved_queue: statically reserved queue index for
                non-Saba-compliant traffic; weights leave it
                ``1 - c_saba`` of the capacity.
            observer: observability sink (:mod:`repro.obs`); emits
                registration, solve, and port-programming events.  The
                no-op default costs nothing.
            use_weight_cache: memoise Eq. 2 per application multiset.
            use_group_models: solve Eq. 2 with PL-group centroid models
                instead of per-application models (the information a
                database-driven distributed controller has).
            seed: K-means seeding (determinism).
        """
        if num_pls < 1:
            raise RegistrationError(f"num_pls must be >= 1: {num_pls}")
        self.table = table
        self.num_pls = num_pls
        self.c_saba = c_saba
        self.min_weight = min_weight
        self.solver = solver
        self.collapse_alpha = collapse_alpha
        self.reserved_queue = reserved_queue
        self.use_weight_cache = use_weight_cache
        self.use_group_models = use_group_models
        self.observer = observer if observer is not None else NULL_OBSERVER
        self._rng = random.Random(seed)

        self.stats = ControllerStats()
        self._fabric: Optional[FluidFabric] = None
        self._apps: Dict[str, str] = {}  # job_id -> workload
        self._pl_of: Dict[str, int] = {}  # job_id -> PL
        self._pl_members: Dict[int, set] = {}  # PL -> job_ids
        self._pl_models: Dict[int, SensitivityModel] = {}
        self._hierarchy: Optional[PLHierarchy] = None
        self._hier_pls: List[int] = []  # hierarchy row -> PL id
        self._port_apps: Dict[str, Counter] = {}  # link_id -> job_id counts
        self._schedulers: Dict[str, LinkScheduler] = {}
        self._weight_cache: Dict[Tuple[str, ...], List[float]] = {}

    # -- software-interface endpoints (called via the Saba library) ---------

    def rpc_methods(self) -> Dict[str, object]:
        """Endpoint map for registration on an :class:`RpcBus`."""
        return {
            "app_register": self.app_register,
            "app_deregister": self.app_deregister,
            "conn_create": self.conn_create,
            "conn_destroy": self.conn_destroy,
            "ping": self.ping,
        }

    def ping(self) -> Dict[str, object]:
        """Liveness probe for the resilient RPC layer; side-effect free."""
        return {"ok": True, "apps": len(self._apps)}

    def app_register(self, job_id: str, workload: str) -> int:
        """Register an application; returns its priority level.

        Raises :class:`RegistrationError` for duplicates or workloads
        the profiler has never seen (there is no model to allocate by).
        """
        if job_id in self._apps:
            raise RegistrationError(f"application {job_id!r} already registered")
        if workload not in self.table:
            raise RegistrationError(
                f"workload {workload!r} has no profile; run the offline "
                "profiler first"
            )
        self._apps[job_id] = workload
        self.stats.registrations += 1
        self._assign_pl(job_id)
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter("controller.registrations").inc()
            obs.emit(
                APP_REGISTERED, self._sim_now(), job=job_id,
                workload=workload, pl=self._pl_of[job_id],
            )
        self._reallocate_ports(self._port_apps.keys())
        return self._pl_of[job_id]

    def app_deregister(self, job_id: str) -> None:
        if job_id not in self._apps:
            raise RegistrationError(f"application {job_id!r} is not registered")
        del self._apps[job_id]
        self.stats.deregistrations += 1
        for counter in self._port_apps.values():
            counter.pop(job_id, None)
        self._release_pl(job_id)
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter("controller.deregistrations").inc()
            obs.emit(APP_DEREGISTERED, self._sim_now(), job=job_id)
        self._reallocate_ports(self._port_apps.keys())

    def conn_create(self, job_id: str, path: Sequence[str]) -> None:
        """Account a new connection and re-enforce its ports."""
        if job_id not in self._apps:
            raise RegistrationError(
                f"connection for unregistered application {job_id!r}"
            )
        self.stats.conn_creates += 1
        for link_id in path:
            self._port_apps.setdefault(link_id, Counter())[job_id] += 1
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter("controller.conn_creates").inc()
            obs.emit(
                CONN_CREATED, self._sim_now(), job=job_id,
                links=list(path),
            )
        self._reallocate_ports(path)

    def conn_destroy(self, job_id: str, path: Sequence[str]) -> None:
        self.stats.conn_destroys += 1
        for link_id in path:
            counter = self._port_apps.get(link_id)
            if counter is None:
                continue
            counter[job_id] -= 1
            if counter[job_id] <= 0:
                del counter[job_id]
            if not counter:
                del self._port_apps[link_id]
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter("controller.conn_destroys").inc()
            obs.emit(
                CONN_DESTROYED, self._sim_now(), job=job_id,
                links=list(path),
            )
        self._reallocate_ports(path)

    def pl_of(self, job_id: str) -> int:
        try:
            return self._pl_of[job_id]
        except KeyError:
            raise RegistrationError(f"{job_id!r} has no PL (not registered)") from None

    # -- FabricPolicy -----------------------------------------------------------

    def attach(self, fabric: FluidFabric) -> None:
        self._fabric = fabric
        for state in fabric.topology.link_states.values():
            state.efficiency_fn = None

    def scheduler_of(self, link_id: str) -> LinkScheduler:
        scheduler = self._schedulers.get(link_id)
        if scheduler is None:
            if self._fabric is None:
                raise RegistrationError("controller is not attached to a fabric")
            qtable = self._fabric.topology.port_table(link_id)
            efficiency = (
                fecn_collapse(self.collapse_alpha)
                if self.collapse_alpha
                else None
            )
            scheduler = WFQScheduler(
                queue_of=lambda flow, t=qtable: t.queue_of(flow.pl),
                weight_of=lambda q, t=qtable: t.weight_of(q),
                efficiency_fn=efficiency,
            )
            self._schedulers[link_id] = scheduler
        return scheduler

    def on_flow_started(self, flow: Flow) -> None:
        """No-op: the library reports connections via conn_create."""

    def on_flow_finished(self, flow: Flow) -> None:
        """No-op: the library reports teardown via conn_destroy."""

    # -- clustering --------------------------------------------------------------

    def _model_of(self, job_id: str) -> SensitivityModel:
        if self.use_group_models and self._pl_models:
            return self._pl_models[self._pl_of[job_id]]
        return self.table.get(self._apps[job_id])

    # Section 5.3.1 asks for K-means over registered applications.  A
    # batch re-clustering on every (de)registration would renumber
    # PLs, but a PL is carried in the headers of *in-flight*
    # connections (InfiniBand SLs are fixed at connection setup), so
    # an application's PL must stay stable for its lifetime.  We
    # therefore cluster *incrementally*: a registering application
    # joins the PL whose centroid matches its sensitivity
    # coefficients, gets a fresh PL while fewer than S are in use, and
    # otherwise joins the nearest centroid -- the online equivalent of
    # the paper's K-means grouping.

    def _assign_pl(self, job_id: str) -> None:
        model = self.table.get(self._apps[job_id])
        degree = model.degree
        vec = model.as_vector(degree)
        chosen: Optional[int] = None
        # Exact-centroid match first (same workload => same PL).
        best_pl, best_dist = None, float("inf")
        for pl, centroid_model in self._pl_models.items():
            centroid = centroid_model.as_vector(degree)
            dist = float(np.sum((centroid - vec) ** 2))
            if dist < best_dist:
                best_pl, best_dist = pl, dist
        if best_pl is not None and best_dist < 1e-12:
            chosen = best_pl
        elif len(self._pl_members) < self.num_pls:
            chosen = next(
                pl for pl in range(self.num_pls) if pl not in self._pl_members
            )
        else:
            chosen = best_pl
        assert chosen is not None
        self._pl_of[job_id] = chosen
        self._pl_members.setdefault(chosen, set()).add(job_id)
        self._refresh_pl_state(chosen, reference=model)

    def _release_pl(self, job_id: str) -> None:
        pl = self._pl_of.pop(job_id, None)
        if pl is None:
            return
        members = self._pl_members.get(pl)
        if members is None:
            return
        members.discard(job_id)
        if not members:
            del self._pl_members[pl]
            self._pl_models.pop(pl, None)
            self._rebuild_hierarchy()
            self._weight_cache.clear()
        else:
            self._refresh_pl_state(pl)

    def _refresh_pl_state(
        self, pl: int, reference: Optional[SensitivityModel] = None
    ) -> None:
        """Recompute one PL's centroid model and rebuild the hierarchy."""
        self.stats.reclusterings += 1
        self._weight_cache.clear()
        members = self._pl_members[pl]
        models = [self.table.get(self._apps[j]) for j in sorted(members)]
        if reference is None:
            reference = models[0]
        degree = max(m.degree for m in models)
        centroid = np.mean([m.as_vector(degree) for m in models], axis=0)
        self._pl_models[pl] = SensitivityModel(
            name=f"pl{pl}",
            coefficients=tuple(float(c) for c in centroid),
            fit_domain=reference.fit_domain,
            basis=reference.basis,
        )
        self._rebuild_hierarchy()

    def _rebuild_hierarchy(self) -> None:
        if not self._pl_models:
            self._hierarchy = None
            self._hier_pls = []
            return
        self._hier_pls = sorted(self._pl_models)
        degree = max(m.degree for m in self._pl_models.values())
        self._hierarchy = PLHierarchy(
            np.array([
                self._pl_models[pl].as_vector(degree) for pl in self._hier_pls
            ])
        )

    # -- allocation ---------------------------------------------------------------

    def _sim_now(self) -> float:
        """Simulated timestamp for event records (0 when detached)."""
        return self._fabric.sim.now if self._fabric is not None else 0.0

    def _reallocate_ports(self, link_ids) -> None:
        t0 = time.perf_counter()
        link_ids = list(link_ids)
        for link_id in link_ids:
            self._reallocate_port(link_id)
        elapsed = time.perf_counter() - t0
        self.stats.calc_times.append(elapsed)
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter("controller.reallocations").inc()
            obs.metrics.histogram("controller.realloc_seconds").observe(
                elapsed
            )
            obs.emit(
                REALLOCATION, self._sim_now(), ports=len(link_ids),
                duration=elapsed,
            )
        if self._fabric is not None:
            # Only the reprogrammed ports' congestion components need
            # re-solving; the fabric falls back to a full recompute
            # when component-scoped solving is off.
            self._fabric.invalidate_rates(link_ids)

    def _reallocate_port(self, link_id: str) -> None:
        if self._fabric is None:
            return
        counter = self._port_apps.get(link_id)
        qtable = self._fabric.topology.port_table(link_id)
        obs = self.observer
        if not counter:
            qtable.reset()
            if obs.enabled:
                obs.emit(PORT_RESET, self._sim_now(), link=link_id,
                         generation=qtable.generation)
            return
        self.stats.port_allocations += 1
        apps = sorted(counter)
        assert self._hierarchy is not None
        # Hierarchy rows are indexed by position in _hier_pls; PL ids
        # are stable across epochs, rows are not.
        row_of = {pl: row for row, pl in enumerate(self._hier_pls)}
        active_pls = sorted({self._pl_of[a] for a in apps})
        active_rows = [row_of[pl] for pl in active_pls]
        usable = qtable.num_queues - (1 if self.reserved_queue is not None else 0)
        _level, row_to_queue = self._hierarchy.best_clustering(
            active_rows, max_clusters=max(1, usable)
        )
        pl_to_queue = {
            pl: row_to_queue[row_of[pl]] for pl in active_pls
        }
        if self.reserved_queue is not None:
            # Shift Saba's queues off the reserved index.
            pl_to_queue = {
                pl: q if q < self.reserved_queue else q + 1
                for pl, q in pl_to_queue.items()
            }
        app_weights = self._weights_for(apps)
        queue_weights: Dict[int, float] = {}
        for app, weight in zip(apps, app_weights):
            queue = pl_to_queue[self._pl_of[app]]
            queue_weights[queue] = queue_weights.get(queue, 0.0) + weight
        if self.reserved_queue is not None:
            queue_weights[self.reserved_queue] = max(0.0, 1.0 - self.c_saba)
        qtable.program(pl_to_queue, queue_weights)
        if self.reserved_queue is not None:
            qtable.default_queue = self.reserved_queue
        if obs.enabled:
            obs.metrics.counter("controller.ports_programmed").inc()
            obs.emit(
                PORT_PROGRAMMED, self._sim_now(), link=link_id,
                apps=len(apps), **qtable.snapshot(),
            )

    def _weights_for(self, apps: Sequence[str]) -> List[float]:
        """Eq. 2 over the applications at one port (cached)."""
        models = [self._model_of(a) for a in apps]
        order = sorted(range(len(apps)), key=lambda i: models[i].name)
        key = tuple(models[i].name for i in order)
        weights_sorted = self._weight_cache.get(key) if self.use_weight_cache else None
        obs = self.observer
        if weights_sorted is None:
            self.stats.optimizer_calls += 1
            ordered_models = [models[i] for i in order]
            solve_stats: Optional[dict] = None
            if obs.enabled:
                solve_stats = {}
                obs.emit(
                    SOLVE_BEGIN, self._sim_now(), apps=len(apps),
                    solver=self.solver,
                )
            t0 = time.perf_counter()
            weights_sorted = optimize_weights(
                ordered_models,
                total=self.c_saba,
                min_weight=min(self.min_weight, self.c_saba / (2 * len(apps))),
                solver=self.solver,
                stats=solve_stats,
            )
            if obs.enabled:
                elapsed = time.perf_counter() - t0
                objective = sum(
                    m.predict(w)
                    for m, w in zip(ordered_models, weights_sorted)
                )
                obs.metrics.counter("controller.solver_calls").inc()
                obs.metrics.histogram("controller.solve_seconds").observe(
                    elapsed
                )
                obs.emit(
                    SOLVE_END, self._sim_now(), apps=len(apps),
                    solver=(solve_stats or {}).get("solver", self.solver),
                    iterations=(solve_stats or {}).get("iterations"),
                    objective=objective, duration=elapsed,
                )
            if self.use_weight_cache:
                self._weight_cache[key] = weights_sorted
        elif obs.enabled:
            obs.metrics.counter("controller.solver_cache_hits").inc()
        weights = [0.0] * len(apps)
        for rank, i in enumerate(order):
            weights[i] = weights_sorted[rank]
        return weights

    # -- observability ------------------------------------------------------------

    def describe_port(self, link_id: str) -> Dict[str, object]:
        """Operator view of one port: who sends there, the PL-to-queue
        mapping in force, and the programmed weights."""
        if self._fabric is None:
            raise RegistrationError("controller is not attached to a fabric")
        qtable = self._fabric.topology.port_table(link_id)
        counter = self._port_apps.get(link_id, {})
        apps = sorted(counter)
        return {
            "link": link_id,
            "applications": {
                app: {
                    "workload": self._apps.get(app),
                    "pl": self._pl_of.get(app),
                    "connections": counter[app],
                    "queue": qtable.queue_of(self._pl_of.get(app)),
                }
                for app in apps
            },
            "weights": qtable.weights,
            "generation": qtable.generation,
        }

    # -- benchmarking support ---------------------------------------------------

    def recompute_all_ports(self) -> float:
        """Recompute every known port's allocation; returns seconds.

        Used by the Figure 12 benchmark: "the time the controller takes
        to compute the bandwidth share of applications for all
        switches".
        """
        t0 = time.perf_counter()
        for link_id in list(self._port_apps):
            self._reallocate_port(link_id)
        return time.perf_counter() - t0
