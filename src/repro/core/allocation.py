"""The Eq. 2 weight optimiser.

For applications ``A = {a_1 .. a_n}`` sending flows through one switch
output port, find weights ``W = {w_1 .. w_n}``:

    minimize    sum_i D_i(w_i)
    subject to  sum_i w_i = C_saba,   w_i >= w_min            (Eq. 2)

where ``D_i`` are the fitted sensitivity models and ``C_saba`` is the
link-capacity share reserved for Saba-compliant applications.

Three solvers are provided:

* ``"slsqp"`` -- scipy's Sequential Least Squares Programming, the same
  algorithm the paper uses via NLopt (Section 7.2).  Handles arbitrary
  (including non-convex) polynomial models.
* ``"kkt"`` -- water-filling on the KKT conditions: when every model is
  convex and decreasing, the optimum equalises marginal utilities,
  ``D_i'(w_i) = -lambda`` with box clamping, so an outer bisection on
  ``lambda`` plus inner bisections on each ``D_i'`` solves the problem
  in ``O(n log^2)`` -- orders of magnitude faster than SLSQP at
  datacenter port counts (the ablation benchmark quantifies this).
* ``"projgrad"`` -- projected gradient descent onto the simplex; a
  dependency-free fallback that also handles non-convex models
  approximately.

``"auto"`` picks ``kkt`` when legal, else ``slsqp``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AllocationError
from repro.core.sensitivity import SensitivityModel

_SOLVERS = ("auto", "slsqp", "kkt", "projgrad")

#: Default weight floor: no application is starved below 10 % of the
#: Saba share (WFQ "is not subject to starvation", Section 5.2; the
#: floor also hedges against model error in the starvation region and
#: bounds the worst-case slowdown of de-prioritised applications).
#: The controller scales the floor down when more than ~1/floor
#: applications share a port.
DEFAULT_MIN_WEIGHT = 0.10


@dataclass(frozen=True)
class AllocationProblem:
    """One Eq. 2 instance (a single switch output port)."""

    models: Tuple[SensitivityModel, ...]
    total: float = 1.0
    min_weight: float = DEFAULT_MIN_WEIGHT

    def __post_init__(self) -> None:
        if not self.models:
            raise AllocationError("no applications to allocate for")
        if not 0.0 < self.total <= 1.0:
            raise AllocationError(f"total must be in (0, 1]: {self.total}")
        if self.min_weight < 0:
            raise AllocationError(f"negative min_weight: {self.min_weight}")
        if self.min_weight * len(self.models) > self.total + 1e-12:
            raise AllocationError(
                f"{len(self.models)} applications need at least "
                f"{self.min_weight * len(self.models):.3f} capacity, "
                f"but only {self.total} is available"
            )

    def objective(self, weights: Sequence[float]) -> float:
        """Total predicted slowdown at ``weights``."""
        return sum(m.predict(w) for m, w in zip(self.models, weights))


def equal_split(problem: AllocationProblem) -> List[float]:
    """The max-min strawman: every application gets the same share."""
    n = len(problem.models)
    return [problem.total / n] * n


def optimize_weights(
    models: Sequence[SensitivityModel],
    total: float = 1.0,
    min_weight: float = DEFAULT_MIN_WEIGHT,
    solver: str = "auto",
    stats: Optional[dict] = None,
) -> List[float]:
    """Solve Eq. 2; returns one weight per model, summing to ``total``.

    ``stats``, when given, is filled in place with solver telemetry:
    ``{"solver": <name actually used>, "iterations": <int>}`` --
    consumed by the observability layer's ``solve.end`` events.
    """
    if solver not in _SOLVERS:
        raise AllocationError(f"unknown solver {solver!r}; use one of {_SOLVERS}")
    problem = AllocationProblem(
        models=tuple(models), total=total, min_weight=min_weight
    )
    if stats is None:
        stats = {}
    n = len(problem.models)
    if n == 1:
        stats.update(solver="direct", iterations=0)
        return [problem.total]
    if problem.min_weight * n >= problem.total - 1e-9:
        # The floor consumes the whole budget: the equal split is the
        # only feasible point.
        stats.update(solver="equal", iterations=0)
        return equal_split(problem)
    if solver == "auto":
        hi = problem.total - (n - 1) * problem.min_weight
        convex = all(
            m.is_convex_decreasing(problem.min_weight, hi)
            for m in problem.models
        )
        solver = "kkt" if convex else "slsqp"
    if solver == "kkt":
        return _solve_kkt(problem, stats)
    if solver == "projgrad":
        return _solve_projected_gradient(problem, stats=stats)
    return _solve_slsqp(problem, stats)


# -- KKT water-filling ---------------------------------------------------------
#
# At the optimum of Eq. 2 with convex decreasing models, every
# non-clamped application sits where its marginal benefit equals a
# shared multiplier: D_i'(w_i) = -lambda.  The solver inverts each
# marginal by bisection (vectorised with numpy across all models) and
# bisects on lambda to meet the capacity constraint -- O(n) per lambda
# probe, which keeps the Figure 12 controller-overhead measurement
# tractable at datacenter application counts (pure Python remains well
# above the paper's C-backed NLopt in absolute terms).


class _ModelBatch:
    """Vectorised derivative evaluation for a set of models."""

    def __init__(self, models: Sequence[SensitivityModel]) -> None:
        self.n = len(models)
        degree = max(m.degree for m in models)
        self.coeffs = np.zeros((self.n, degree + 1))
        for i, m in enumerate(models):
            self.coeffs[i, : m.degree + 1] = m.coefficients
        self.inverse = np.array([m.basis == "inverse" for m in models])
        self.lo = np.array([m.fit_domain[0] for m in models])
        self.hi = np.array([m.fit_domain[1] for m in models])
        self.degree = degree

    def derivative(self, w: np.ndarray) -> np.ndarray:
        """dD/db at ``w`` (per model), with domain clipping."""
        b = np.clip(w, self.lo, self.hi)
        x = np.where(self.inverse, 1.0 / b, b)
        acc = np.zeros(self.n)
        for k in range(self.degree, 0, -1):
            acc = acc * x + k * self.coeffs[:, k]
        return np.where(self.inverse, acc * (-1.0 / (b * b)), acc)


def _weights_at_lambda(
    batch: _ModelBatch, lam: float, lo: float, hi: float, iters: int = 30
) -> np.ndarray:
    """Solve ``D_i'(w_i) = -lam`` per model by vector bisection.

    For convex decreasing ``D``, ``D'`` is increasing, so the root is
    unique; outside the bracket the answer clamps to the boundary.
    """
    target = -lam
    a = np.full(batch.n, lo)
    b = np.full(batch.n, hi)
    at_lo = batch.derivative(a) >= target  # floor: gain already below
    at_hi = batch.derivative(b) <= target  # cap: gain still above
    for _ in range(iters):
        mid = 0.5 * (a + b)
        below = batch.derivative(mid) < target
        a = np.where(below, mid, a)
        b = np.where(below, b, mid)
    w = 0.5 * (a + b)
    w = np.where(at_lo, lo, w)
    w = np.where(at_hi, hi, w)
    return w


def _solve_kkt(
    problem: AllocationProblem, stats: Optional[dict] = None
) -> List[float]:
    """Bisection on the shared marginal ``lambda`` (vectorised)."""
    if stats is None:
        stats = {}
    n = len(problem.models)
    lo_w = problem.min_weight
    hi_w = problem.total - (n - 1) * problem.min_weight
    batch = _ModelBatch(problem.models)
    probes = 0

    def excess(lam: float) -> float:
        nonlocal probes
        probes += 1
        return float(
            _weights_at_lambda(batch, lam, lo_w, hi_w).sum()
        ) - problem.total

    # Bracket lambda: at lambda -> 0+ every app wants its cap; at a huge
    # lambda every app drops to the floor.
    if excess(0.0) <= 0.0:
        # All models (near-)insensitive: fall back to an equal split.
        stats.update(solver="equal", iterations=probes)
        return equal_split(problem)
    lam_hi = 1.0
    for _ in range(60):
        if excess(lam_hi) <= 0.0:
            break
        lam_hi *= 4.0
    else:
        raise AllocationError("could not bracket lambda; models degenerate")
    # Brent needs far fewer probes than plain bisection, and each probe
    # is a full vectorised inner solve -- this is the hot path of the
    # Figure 12 controller-overhead measurement.
    from scipy import optimize as _sopt

    lam_star = _sopt.brentq(
        excess, 0.0, lam_hi, xtol=1e-6, rtol=1e-6, maxiter=60
    )
    weights = _weights_at_lambda(batch, lam_star, lo_w, hi_w)
    stats.update(solver="kkt", iterations=probes)
    return _renormalise([float(w) for w in weights], problem)


# -- SLSQP -----------------------------------------------------------------------


def _solve_slsqp(
    problem: AllocationProblem, stats: Optional[dict] = None
) -> List[float]:
    from scipy import optimize  # local import: keep scipy optional at import time

    n = len(problem.models)
    x0 = np.full(n, problem.total / n)
    bounds = [
        (problem.min_weight, problem.total - (n - 1) * problem.min_weight)
    ] * n

    def objective(x: np.ndarray) -> float:
        return float(sum(m.predict(float(w)) for m, w in zip(problem.models, x)))

    result = optimize.minimize(
        objective,
        x0,
        method="SLSQP",
        bounds=bounds,
        constraints=[{
            "type": "eq",
            "fun": lambda x: float(np.sum(x) - problem.total),
        }],
        options={"maxiter": 200, "ftol": 1e-9},
    )
    if not result.success and not np.isfinite(result.fun):
        raise AllocationError(f"SLSQP failed: {result.message}")
    if stats is not None:
        stats.update(solver="slsqp", iterations=int(result.nit))
    return _renormalise([float(w) for w in result.x], problem)


# -- Projected gradient ------------------------------------------------------------


def _project_simplex_with_floor(
    x: np.ndarray, total: float, floor: float
) -> np.ndarray:
    """Euclidean projection onto {w : sum w = total, w >= floor}.

    Substituting ``v = w - floor`` reduces to projection onto the
    scaled simplex {v >= 0, sum v = total - n*floor} (Duchi et al.).
    """
    n = len(x)
    budget = total - n * floor
    v = x - floor
    if budget <= 0:
        return np.full(n, floor)
    u = np.sort(v)[::-1]
    css = np.cumsum(u)
    rho_candidates = u - (css - budget) / np.arange(1, n + 1)
    rho = int(np.nonzero(rho_candidates > 0)[0][-1])
    theta = (css[rho] - budget) / (rho + 1)
    return np.maximum(v - theta, 0.0) + floor


def _solve_projected_gradient(
    problem: AllocationProblem,
    iters: int = 400,
    lr: float = 0.05,
    stats: Optional[dict] = None,
) -> List[float]:
    if stats is not None:
        stats.update(solver="projgrad", iterations=iters)
    n = len(problem.models)
    x = np.full(n, problem.total / n)
    best = x.copy()
    best_val = problem.objective(x)
    for step in range(iters):
        grad = np.array([m.derivative(float(w)) for m, w in zip(problem.models, x)])
        x = _project_simplex_with_floor(
            x - lr * grad / (1.0 + step / 40.0), problem.total, problem.min_weight
        )
        val = problem.objective(x)
        if val < best_val:
            best_val, best = val, x.copy()
    return _renormalise([float(w) for w in best], problem)


# -- shared ------------------------------------------------------------------------


def _renormalise(weights: List[float], problem: AllocationProblem) -> List[float]:
    """Clamp to the floor and rescale the slack so weights sum exactly."""
    floor = problem.min_weight
    w = np.maximum(np.asarray(weights, dtype=float), floor)
    slack = w - floor
    budget = problem.total - floor * len(w)
    total_slack = float(slack.sum())
    if budget <= 0 or total_slack <= 0:
        out = np.full(len(w), problem.total / len(w))
    else:
        out = floor + slack * (budget / total_slack)
    return [float(v) for v in out]
