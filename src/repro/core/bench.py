"""Allocation-pipeline benchmark (``python -m repro control bench``).

Measures the two perf layers the shared
:class:`~repro.core.pipeline.AllocationPipeline` adds on top of the
Saba allocation path:

* **signature caching** -- a steady-state connection-churn run on a
  fig10-scale spine-leaf fabric, executed twice: with the per-port
  programmed-signature cache off (every churn event re-clusters,
  re-programs and re-invalidates every port on the path) and on (ports
  whose (app-multiset, generation, hierarchy-epoch) signature is
  unchanged are skipped entirely).  The churn keeps each port's
  application multiset constant -- connections come and go, the
  applications stay -- which is exactly the steady state Section 5
  describes, so the cached run must skip every port visit *and* end
  with bit-identical queue tables.
* **event coalescing** -- the same churn driven through simulated
  time, eagerly (one reallocation pass per connection event) vs
  batched into one deduplicated pass per ``coalesce_quantum``.  Both
  runs must converge to identical final tables.

The committed ``BENCH_control.json`` at the repo root is a snapshot of
this output; regenerate it with ``python -m repro control bench --out
BENCH_control.json``.  CI runs a reduced grid and fails on regression
(no signature skips, diverging tables, or cached mode slower than
uncached).
"""

from __future__ import annotations

import json
import os
import time
from random import Random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.controller import SabaController
from repro.core.table import SensitivityTable
from repro.obs.export import code_version
from repro.simnet.bench import env_metadata
from repro.simnet.fabric import FluidFabric
from repro.simnet.routing import Router
from repro.simnet.topology import spine_leaf
from repro.units import GBPS_56

#: Default scenario: the fig10 default simulated cluster shape with a
#: catalog-scale application mix.
DEFAULT_SCENARIO = dict(
    n_spine=8, n_leaf=8, n_tor=8, servers_per_tor=10,
    apps=10, conns_per_app=4, rounds=20, seed=7,
)

#: Sim-time quantum of the coalesced run (seconds) and spacing of the
#: synthetic churn events; ~25 connection events land in each quantum.
COALESCE_QUANTUM = 0.05
EVENT_SPACING = 0.002

#: Pipeline counters reported per mode (deltas over the churn phase).
_COUNTER_FIELDS = (
    "passes", "port_allocations", "port_resets", "optimizer_calls",
    "solver_cache_hits", "signature_skips", "programs", "invalidations",
    "invalidations_skipped", "coalesced_updates", "coalesce_flushes",
)


def _default_table() -> SensitivityTable:
    from repro.experiments.common import build_catalog_table

    return build_catalog_table(method="analytic")


def _setup_churn(
    table: SensitivityTable,
    n_spine: int, n_leaf: int, n_tor: int, servers_per_tor: int,
    apps: int, conns_per_app: int, seed: int,
    **controller_kwargs: Any,
) -> Tuple[SabaController, FluidFabric, Dict[str, List[List[str]]]]:
    """A controller on a spine-leaf fabric with a registered app mix
    and one base connection per (app, path) -- the steady state the
    churn then perturbs."""
    topology = spine_leaf(
        n_spine=n_spine, n_leaf=n_leaf, n_tor=n_tor,
        servers_per_tor=servers_per_tor, capacity=GBPS_56,
    )
    fabric = FluidFabric(topology)
    controller = SabaController(table, **controller_kwargs)
    fabric.set_policy(controller)
    router = Router(topology)
    rng = Random(seed)
    names = table.names()
    servers = topology.servers
    paths: Dict[str, List[List[str]]] = {}
    for i in range(apps):
        job = f"app{i}"
        controller.app_register(job, names[i % len(names)])
        paths[job] = []
        for c in range(conns_per_app):
            src, dst = rng.sample(servers, 2)
            paths[job].append(
                list(router.path_for_flow(src, dst, i * 10_000 + c))
            )
    for job, job_paths in paths.items():
        for path in job_paths:
            controller.conn_create(job, path)
    return controller, fabric, paths


def _counters(controller: SabaController) -> Dict[str, int]:
    stats = controller.pipeline.stats
    return {name: getattr(stats, name) for name in _COUNTER_FIELDS}


def _delta(after: Dict[str, int], before: Dict[str, int]) -> Dict[str, int]:
    return {name: after[name] - before[name] for name in after}


def _port_tables(controller: SabaController) -> Dict[str, Dict[str, Any]]:
    """Programmed state of every known port, minus the generation
    counter (how *often* a table was written is exactly what the
    signature cache changes; what is *in* it must not change)."""
    fabric = controller._fabric
    assert fabric is not None
    tables: Dict[str, Dict[str, Any]] = {}
    for link_id in sorted(controller._port_apps):
        snapshot = fabric.topology.port_table(link_id).snapshot()
        snapshot.pop("generation")
        snapshot["mapping"] = {
            str(pl): q for pl, q in sorted(snapshot["mapping"].items())
        }
        tables[link_id] = snapshot
    return tables


def _run_signature_mode(
    use_signature_cache: bool,
    table: SensitivityTable,
    params: Dict[str, int],
) -> Tuple[Dict[str, Any], Dict[str, Dict[str, Any]]]:
    """One churn run; returns (stats, final port tables)."""
    controller, _fabric, paths = _setup_churn(
        table,
        n_spine=params["n_spine"], n_leaf=params["n_leaf"],
        n_tor=params["n_tor"], servers_per_tor=params["servers_per_tor"],
        apps=params["apps"], conns_per_app=params["conns_per_app"],
        seed=params["seed"],
        use_signature_cache=use_signature_cache,
    )
    before = _counters(controller)
    t0 = time.perf_counter()
    for _round in range(params["rounds"]):
        for job, job_paths in paths.items():
            for path in job_paths:
                # A short-lived extra connection next to the standing
                # one: the port's application multiset never changes.
                controller.conn_create(job, path)
                controller.conn_destroy(job, path)
    wall = time.perf_counter() - t0
    churn = _delta(_counters(controller), before)
    passes = churn["passes"]
    stats: Dict[str, Any] = {
        "use_signature_cache": use_signature_cache,
        "wall_seconds": round(wall, 4),
        "reallocations": passes,
        "reallocations_per_sec": (
            round(passes / wall, 1) if wall > 0 else None
        ),
        **churn,
    }
    return stats, _port_tables(controller)


def _run_coalesce_mode(
    quantum: float,
    table: SensitivityTable,
    params: Dict[str, int],
) -> Tuple[Dict[str, Any], Dict[str, Dict[str, Any]]]:
    """The same churn driven through simulated time."""
    controller, fabric, paths = _setup_churn(
        table,
        n_spine=params["n_spine"], n_leaf=params["n_leaf"],
        n_tor=params["n_tor"], servers_per_tor=params["servers_per_tor"],
        apps=params["apps"], conns_per_app=params["conns_per_app"],
        seed=params["seed"],
        coalesce_quantum=quantum,
    )
    before = _counters(controller)
    t = 0.0
    for _round in range(params["rounds"]):
        for job, job_paths in paths.items():
            for path in job_paths:
                t += EVENT_SPACING

                def churn_event(j: str = job, p: List[str] = path) -> None:
                    controller.conn_create(j, p)
                    controller.conn_destroy(j, p)

                fabric.sim.schedule_at(t, churn_event)
    t0 = time.perf_counter()
    fabric.run()
    wall = time.perf_counter() - t0
    churn = _delta(_counters(controller), before)
    stats: Dict[str, Any] = {
        "coalesce_quantum": quantum,
        "wall_seconds": round(wall, 4),
        "reallocations": churn["passes"],
        **churn,
    }
    return stats, _port_tables(controller)


def run_bench(
    scenario: Optional[Dict[str, int]] = None,
    table: Optional[SensitivityTable] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Benchmark signature caching and event coalescing.

    Returns the ``BENCH_control.json`` payload.  ``scenario`` overrides
    :data:`DEFAULT_SCENARIO` keys (CI passes a reduced grid).
    """
    params = dict(DEFAULT_SCENARIO)
    if scenario:
        params.update({k: v for k, v in scenario.items() if v is not None})
    if table is None:
        table = _default_table()

    def narrate(message: str) -> None:
        if progress is not None:
            progress(message)

    events = (
        params["apps"] * params["conns_per_app"] * params["rounds"] * 2
    )
    narrate(
        f"bench: {params['apps']} apps x {params['conns_per_app']} conns "
        f"x {params['rounds']} rounds = {events} churn events on "
        f"{params['n_tor'] * params['servers_per_tor']} servers"
    )
    sig_off, tables_off = _run_signature_mode(False, table, params)
    narrate(
        f"bench: signatures off done in {sig_off['wall_seconds']:.2f}s "
        f"({sig_off['reallocations_per_sec']} reallocs/s, "
        f"{sig_off['programs']} programs)"
    )
    sig_on, tables_on = _run_signature_mode(True, table, params)
    narrate(
        f"bench: signatures on  done in {sig_on['wall_seconds']:.2f}s "
        f"({sig_on['reallocations_per_sec']} reallocs/s, "
        f"{sig_on['signature_skips']} skips)"
    )
    eager, tables_eager = _run_coalesce_mode(0.0, table, params)
    coalesced, tables_coalesced = _run_coalesce_mode(
        COALESCE_QUANTUM, table, params
    )
    narrate(
        f"bench: coalescing {eager['reallocations']} eager passes -> "
        f"{coalesced['reallocations']} coalesced "
        f"({coalesced['coalesce_flushes']} flushes)"
    )
    wall_off = sig_off["wall_seconds"]
    wall_on = sig_on["wall_seconds"]
    speedup = wall_off / wall_on if wall_on > 0 else float("inf")
    eager_passes = eager["reallocations"]
    coalesced_passes = coalesced["reallocations"]
    return {
        "bench": "control.allocation-pipeline",
        "created_unix": time.time(),
        "code_version": code_version(),
        "cpu_count": os.cpu_count(),
        **env_metadata(solver_backend="object"),
        "scenario": params,
        "signatures_off": sig_off,
        "signatures_on": sig_on,
        "signature_speedup": round(speedup, 3),
        "identical_tables": tables_off == tables_on,
        "eager": eager,
        "coalesced": coalesced,
        "coalesce_pass_reduction": round(
            eager_passes / coalesced_passes, 2
        ) if coalesced_passes else float("inf"),
        "identical_coalesced_tables": tables_eager == tables_coalesced,
    }


def write_bench(payload: Dict[str, Any], out: str) -> None:
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
