"""The offline profiler (Section 4).

"Saba's offline profiler performs ahead-of-time profiling on
applications to measure their bandwidth sensitivity based on the
performance degradation caused by limited network bandwidth."

The profiling loop (Section 4.1, Figure 4):

1. deploy the application on a dedicated pod (8 servers behind one
   switch in the paper's methodology);
2. run it once per bandwidth fraction in ``BW = {b_1 .. b_n}``
   (Section 7.1: 5/10/25/50/75/90/100 %), each time rate-limiting
   every node's NIC to that fraction of link capacity;
3. convert completion times to slowdowns versus the unthrottled run;
4. least-squares fit the Eq. 1 polynomial and record the coefficients
   in the sensitivity table.

Measurements can come from the event-driven simulator (the default --
the exact code path runtime jobs use) or from the closed-form
stage model (``method="analytic"``) when sweeping many configurations
in benchmarks; the test suite pins both to agree.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import ProfilingError
from repro.baselines.maxmin import IdealMaxMin
from repro.cluster.jobs import Job
from repro.cluster.runtime import CoRunExecutor
from repro.core.sensitivity import (
    PROFILE_FRACTIONS,
    SensitivityModel,
    fit_sensitivity_model,
)
from repro.core.table import SensitivityTable
from repro.simnet.topology import single_switch
from repro.sweep.task import SweepSpec, Task
from repro.units import GBPS_56
from repro.workloads.catalog import PROFILER_NODES, WorkloadTemplate
from repro.workloads.model import ApplicationSpec


def measure_point(
    spec: ApplicationSpec,
    fraction: float,
    link_capacity: float = GBPS_56,
    method: str = "simulate",
) -> float:
    """Completion time of ``spec`` alone with NICs capped at ``fraction``.

    One (workload, bandwidth-fraction) point of the profiling grid --
    the unit of work the sweep runner fans out across processes, so it
    must stay module-level and depend only on its arguments.
    """
    if method == "analytic":
        return spec.analytic_completion_time(fraction, link_capacity)
    topo = single_switch(spec.n_instances, capacity=link_capacity,
                         name="profiler-pod")
    servers = topo.servers[: spec.n_instances]
    topo.set_uniform_throttle(servers, fraction)
    executor = CoRunExecutor(topo, policy=IdealMaxMin())
    job = Job(
        job_id=f"profile:{spec.name}",
        spec=spec,
        workload=spec.name,
        placement=list(servers),
    )
    results = executor.run([job])
    return results[job.job_id].completion_time


@dataclass(frozen=True)
class ProfileResult:
    """Everything the profiler learned about one application."""

    workload: str
    samples: Tuple[Tuple[float, float], ...]
    model: SensitivityModel
    completion_times: Tuple[Tuple[float, float], ...]
    wall_time: float

    def slowdown_at(self, fraction: float, tol: float = 1e-6) -> float:
        """Measured slowdown at a profiled fraction.

        ``tol`` is the absolute tolerance for matching ``fraction``
        against the profiled grid (fractions often arrive through
        arithmetic like ``1 - 0.75``, which is not bit-exact).

        Raises:
            ProfilingError: no profiled fraction lies within ``tol``;
                the message lists the fractions that were profiled.
        """
        best = min(self.samples, key=lambda s: abs(s[0] - fraction))
        if abs(best[0] - fraction) <= tol:
            return best[1]
        available = ", ".join(f"{b:g}" for b, _ in self.samples)
        raise ProfilingError(
            f"fraction {fraction:g} was not profiled for "
            f"{self.workload!r} (tolerance {tol:g}); "
            f"available fractions: {available}"
        )


class OfflineProfiler:
    """Sweeps bandwidth caps and fits sensitivity models."""

    def __init__(
        self,
        fractions: Sequence[float] = PROFILE_FRACTIONS,
        degree: int = 3,
        n_nodes: int = PROFILER_NODES,
        link_capacity: float = GBPS_56,
        method: str = "simulate",
    ) -> None:
        if not fractions:
            raise ProfilingError("need at least one bandwidth fraction")
        fractions = tuple(sorted(set(float(f) for f in fractions)))
        for f in fractions:
            if not 0.0 < f <= 1.0:
                raise ProfilingError(f"fraction {f} outside (0, 1]")
        if 1.0 not in fractions:
            # Slowdown is defined relative to the unthrottled run.
            fractions = fractions + (1.0,)
        if method not in ("simulate", "analytic"):
            raise ProfilingError(f"unknown method {method!r}")
        self.fractions = fractions
        self.degree = degree
        self.n_nodes = n_nodes
        self.link_capacity = link_capacity
        self.method = method

    # -- measurement -------------------------------------------------------

    def measure_completion_time(
        self, spec: ApplicationSpec, fraction: float
    ) -> float:
        """Run ``spec`` in isolation with NICs capped at ``fraction``."""
        return measure_point(spec, fraction,
                             link_capacity=self.link_capacity,
                             method=self.method)

    def measure_samples(
        self, spec: ApplicationSpec
    ) -> Tuple[List[Tuple[float, float]], List[Tuple[float, float]]]:
        """Sweep all fractions; returns (samples, completion_times)."""
        times = [
            (f, self.measure_completion_time(spec, f)) for f in self.fractions
        ]
        baseline = dict(times)[1.0]
        if baseline <= 0:
            raise ProfilingError(
                f"{spec.name}: zero completion time at full bandwidth"
            )
        samples = [(f, t / baseline) for f, t in times]
        return samples, times

    # -- profiling ------------------------------------------------------------

    def profile_spec(self, spec: ApplicationSpec) -> ProfileResult:
        """Profile a concrete application spec."""
        t0 = time.perf_counter()
        samples, times = self.measure_samples(spec)
        model = fit_sensitivity_model(spec.name, samples, degree=self.degree)
        return ProfileResult(
            workload=spec.name,
            samples=tuple(samples),
            model=model,
            completion_times=tuple(times),
            wall_time=time.perf_counter() - t0,
        )

    def profile(
        self,
        template: WorkloadTemplate,
        dataset_scale: float = 1.0,
        n_instances: Optional[int] = None,
    ) -> ProfileResult:
        """Profile a catalog workload at the profiler's reference shape."""
        spec = template.instantiate(
            dataset_scale=dataset_scale,
            n_instances=n_instances if n_instances is not None else self.n_nodes,
            link_capacity=self.link_capacity,
        )
        return self.profile_spec(spec)

    # -- sweep integration -----------------------------------------------

    def point_task(self, spec: ApplicationSpec, fraction: float) -> Task:
        """The sweep task for one (application, fraction) grid point."""
        return Task(
            name=f"profile:{spec.name}:b={fraction:g}",
            fn=measure_point,
            params={
                "spec": spec,
                "fraction": fraction,
                "link_capacity": self.link_capacity,
                "method": self.method,
            },
        )

    def sweep_spec(
        self,
        templates: Iterable[WorkloadTemplate],
        dataset_scale: float = 1.0,
        n_instances: Optional[int] = None,
    ) -> SweepSpec:
        """The profiling campaign as a declarative sweep grid.

        One task per (workload, bandwidth fraction); the reduction
        converts each workload's completion times to slowdowns
        against its own unthrottled run, fits the Eq. 1 model, and
        assembles the :class:`SensitivityTable` -- exactly what
        :meth:`build_table` returns, but with every grid point
        independently schedulable and cacheable.
        """
        n = n_instances if n_instances is not None else self.n_nodes
        specs = [
            t.instantiate(dataset_scale=dataset_scale, n_instances=n,
                          link_capacity=self.link_capacity)
            for t in templates
        ]
        if not specs:
            raise ProfilingError("no templates to profile")
        tasks = [
            self.point_task(spec, fraction)
            for spec in specs
            for fraction in self.fractions
        ]
        fractions, degree = self.fractions, self.degree

        def reduce_to_table(results: dict) -> SensitivityTable:
            table = SensitivityTable()
            for spec in specs:
                times = [
                    (f, results[f"profile:{spec.name}:b={f:g}"])
                    for f in fractions
                ]
                baseline = dict(times)[1.0]
                if baseline <= 0:
                    raise ProfilingError(
                        f"{spec.name}: zero completion time at full "
                        "bandwidth"
                    )
                samples = [(f, t / baseline) for f, t in times]
                table.add(fit_sensitivity_model(spec.name, samples,
                                                degree=degree))
            return table

        return SweepSpec(
            name="profile-catalog",
            tasks=tuple(tasks),
            reduce=reduce_to_table,
            config={
                "workloads": [s.name for s in specs],
                "fractions": list(fractions),
                "degree": degree,
                "method": self.method,
                "n_instances": n,
                "dataset_scale": dataset_scale,
            },
        )

    def build_table(
        self,
        templates: Iterable[WorkloadTemplate],
        runner: Optional["SweepRunner"] = None,
    ) -> SensitivityTable:
        """Profile every template and assemble the sensitivity table.

        The campaign runs as a sweep (:meth:`sweep_spec`): by default
        serially in-process, or under a caller-provided
        :class:`~repro.sweep.runner.SweepRunner` for parallelism and
        result caching.
        """
        if runner is None:
            from repro.sweep.runner import SweepRunner

            runner = SweepRunner(jobs=1)
        return runner.run(self.sweep_spec(templates)).value

    def profiling_cost(self, result: ProfileResult) -> float:
        """Total machine-time cost of one profiling campaign, in
        node-seconds: each of the n throttled runs occupies the whole
        dedicated pod for its completion time.

        The paper limits profiling cost by capping the pod size and
        reusing models across dataset sizes and node counts (Section
        4.2); this quantifies what that saves.
        """
        total_run_seconds = sum(t for _, t in result.completion_times)
        return total_run_seconds * self.n_nodes
