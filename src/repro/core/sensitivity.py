"""Polynomial bandwidth-sensitivity models (Eq. 1) and their accuracy.

The profiler produces ``Samples = {(b_1, d_1), ..., (b_n, d_n)}`` where
``b`` is the available bandwidth *fraction* in (0, 1] and ``d`` the
measured slowdown versus unthrottled execution (d >= 1).  A sensitivity
model is the least-squares polynomial

    D(b) = c_0 + c_1 x + c_2 x^2 + ... + c_k x^k          (Eq. 1)

whose goodness of fit is reported as the coefficient of determination
R^2 (Section 4.2).

Basis choice
------------

The paper regresses directly on ``x = b``.  That works for its testbed
measurements, whose slowdowns stay below ~4.5x even at 5 % bandwidth
(real deployments saturate: disk, stragglers and framework overheads
dominate once the network is very slow).  Our simulated workloads
follow the fluid ideal -- communication time is exactly proportional to
``1/b`` -- so slowdowns at 5 % reach 16x and a low-degree polynomial in
``b`` oscillates badly in the mid-range, which would poison the Eq. 2
optimisation.  We therefore default to ``x = 1/b`` (``basis =
"inverse"``): the same linear-least-squares pipeline, the same role
for the degree k, but a basis that can represent hyperbolic curves.
``basis="power"`` reproduces the paper's literal form.  See DESIGN.md
section 3.

Independently of the basis, fits are constrained to be non-increasing
in ``b`` by default (slowdown physically cannot improve as bandwidth
shrinks), keeping Eq. 2 well-posed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ProfilingError

#: Bandwidth fractions the reference profiler sweeps (Section 7.1).
PROFILE_FRACTIONS = (0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 1.0)

#: Below this R^2 a fitted model is considered low quality: consumers
#: (controller registration, the online estimator's confidence gate)
#: emit a ``model.low_fit`` warning / refuse to trust the fit.  The
#: paper reports R^2 >= 0.96 for every Table-1 workload at k=3
#: (Figure 6a), so 0.8 flags genuinely bad fits without tripping on
#: profiling noise.
LOW_FIT_R2 = 0.8

_BASES = ("inverse", "power")


@dataclass(frozen=True)
class SensitivityModel:
    """A fitted Eq. 1 model for one application.

    Attributes:
        name: application/workload name.
        coefficients: ``(c_0, ..., c_k)``; ``D = sum c_i * x**i`` with
            ``x = 1/b`` (inverse basis) or ``x = b`` (power basis).
        fit_domain: bandwidth-fraction interval the samples covered;
            predictions clip to it because polynomials extrapolate
            wildly.
        basis: ``"inverse"`` or ``"power"`` (see module docstring).
        r_squared: goodness of fit against the samples the model was
            fitted on (:func:`fit_sensitivity_model` attaches it);
            ``None`` for hand-constructed models.  Consumers compare
            it against :data:`LOW_FIT_R2` to decide whether the model
            is trustworthy.
    """

    name: str
    coefficients: Tuple[float, ...]
    fit_domain: Tuple[float, float] = (PROFILE_FRACTIONS[0], 1.0)
    basis: str = "inverse"
    r_squared: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.coefficients:
            raise ProfilingError("a model needs at least one coefficient")
        lo, hi = self.fit_domain
        if not 0.0 < lo < hi <= 1.0:
            raise ProfilingError(f"bad fit domain {self.fit_domain}")
        if self.basis not in _BASES:
            raise ProfilingError(f"unknown basis {self.basis!r}; use {_BASES}")

    @property
    def degree(self) -> int:
        """Degree of the polynomial (k in Eq. 1)."""
        return len(self.coefficients) - 1

    def _clip(self, b: float) -> float:
        lo, hi = self.fit_domain
        return min(max(b, lo), hi)

    def _x(self, b: float) -> float:
        return 1.0 / b if self.basis == "inverse" else b

    def _poly(self, x: float) -> float:
        acc = 0.0
        for c in reversed(self.coefficients):
            acc = acc * x + c
        return acc

    def _poly_deriv(self, x: float) -> float:
        acc = 0.0
        for i in range(self.degree, 0, -1):
            acc = acc * x + i * self.coefficients[i]
        return acc

    def _raw(self, b: float) -> float:
        """Model value at ``b`` without clipping the output."""
        return self._poly(self._x(b))

    def predict(self, b: float) -> float:
        """Predicted slowdown at bandwidth fraction ``b``.

        ``b`` is clipped to the fit domain and the result floored at
        1.0 (an application cannot run faster than unthrottled).
        """
        return max(1.0, self._raw(self._clip(b)))

    def derivative(self, b: float) -> float:
        """d D / d b at ``b`` (clipped to the fit domain)."""
        b = self._clip(b)
        if self.basis == "inverse":
            x = 1.0 / b
            return self._poly_deriv(x) * (-1.0 / (b * b))
        return self._poly_deriv(b)

    def is_convex_decreasing(self, lo: float, hi: float, samples: int = 33) -> bool:
        """Check D' <= 0 and D'' >= 0 numerically on [lo, hi] (in b).

        The Eq. 2 water-filling solver requires this; non-conforming
        models fall back to SLSQP.
        """
        lo = max(lo, self.fit_domain[0])
        hi = min(hi, self.fit_domain[1])
        if lo >= hi:
            return False
        xs = np.linspace(lo, hi, samples)
        d1 = np.array([self.derivative(float(x)) for x in xs])
        if np.any(d1 > 1e-9):
            return False
        d2 = np.diff(d1) / np.diff(xs)
        return bool(np.all(d2 >= -1e-6))

    def as_vector(self, degree: int | None = None) -> np.ndarray:
        """Coefficient vector, zero-padded/truncated to ``degree + 1``.

        Clustering compares models in coefficient space (Section
        5.3.1), which requires a common dimensionality (and basis).
        """
        k = self.degree if degree is None else degree
        vec = np.zeros(k + 1)
        upto = min(len(self.coefficients), k + 1)
        vec[:upto] = self.coefficients[:upto]
        return vec


def fit_sensitivity_model(
    name: str,
    samples: Sequence[Tuple[float, float]],
    degree: int = 3,
    basis: str = "inverse",
    monotone: bool = True,
    convex: bool = False,
) -> SensitivityModel:
    """Least-squares fit of Eq. 1 to profiling samples.

    Args:
        name: application name recorded in the model.
        samples: ``(bandwidth_fraction, slowdown)`` pairs.
        degree: polynomial degree k (the paper studies k in {1, 2, 3}).
        basis: regression variable, ``"inverse"`` (x = 1/b, default) or
            ``"power"`` (x = b, the paper's literal Eq. 1).
        monotone: constrain the fit to be non-increasing in b over the
            fit domain (see module docstring).
        convex: additionally constrain D''(b) >= 0 over the fit domain,
            making the fitted model convex-decreasing by construction.
            The offline profiler's dense 7-point grids rarely need
            this; the online estimator's small noisy windows do, so
            its refits always stay inside the Eq. 2 water-filling
            solver's fast path.

    The fitted model carries its own goodness of fit in
    ``model.r_squared`` (against the samples it was fitted on).

    Raises:
        ProfilingError: fewer samples than coefficients, or samples
            outside (0, 1] / below a slowdown of ~1.
    """
    if degree < 1:
        raise ProfilingError(f"degree must be >= 1, got {degree}")
    if basis not in _BASES:
        raise ProfilingError(f"unknown basis {basis!r}; use {_BASES}")
    if len(samples) < degree + 1:
        raise ProfilingError(
            f"need at least {degree + 1} samples for degree {degree}, "
            f"got {len(samples)}"
        )
    bs = np.array([s[0] for s in samples], dtype=float)
    ds = np.array([s[1] for s in samples], dtype=float)
    if np.any(bs <= 0) or np.any(bs > 1.0):
        raise ProfilingError("bandwidth fractions must be in (0, 1]")
    if np.any(ds < 0.999):
        raise ProfilingError("slowdowns below 1.0 are not meaningful")
    xs = 1.0 / bs if basis == "inverse" else bs
    vander = np.vander(xs, degree + 1, increasing=True)
    coeffs, *_ = np.linalg.lstsq(vander, ds, rcond=None)
    domain = (float(bs.min()), float(bs.max()))
    x_lo = 1.0 if basis == "inverse" else domain[0]
    x_hi = 1.0 / domain[0] if basis == "inverse" else domain[1]
    # Monotone in b: non-decreasing in x for inverse basis,
    # non-increasing in x for power basis.
    sign = 1.0 if basis == "inverse" else -1.0
    needs_monotone = monotone and _min_signed_derivative(
        coeffs, x_lo, x_hi, sign
    ) < -1e-9
    needs_convex = convex and _min_b_second_derivative(
        coeffs, domain, basis
    ) < -1e-9
    if needs_monotone or needs_convex:
        coeffs = _constrained_fit(
            vander, ds, coeffs, x_lo, x_hi, degree, sign,
            domain=domain, basis=basis,
            monotone=monotone, convex=convex,
        )
    model = SensitivityModel(
        name=name,
        coefficients=tuple(float(c) for c in coeffs),
        fit_domain=domain,
        basis=basis,
    )
    return replace(model, r_squared=r_squared(model, samples))


def _signed_derivative_grid(
    coeffs: np.ndarray, x_lo: float, x_hi: float, sign: float, grid: int = 65
) -> np.ndarray:
    xs = np.linspace(x_lo, x_hi, grid)
    deriv = np.zeros_like(xs)
    for i in range(1, len(coeffs)):
        deriv += i * coeffs[i] * xs ** (i - 1)
    return sign * deriv


def _min_signed_derivative(
    coeffs: np.ndarray, x_lo: float, x_hi: float, sign: float
) -> float:
    return float(_signed_derivative_grid(coeffs, x_lo, x_hi, sign).min())


def _b_second_derivative_rows(
    degree: int, domain: Tuple[float, float], basis: str, grid: int = 65
) -> np.ndarray:
    """Rows of D''(b) at grid points, linear in the coefficients.

    Inverse basis: ``D(b) = sum c_i b^-i`` so ``D'' = sum c_i i (i+1)
    b^-(i+2)``; power basis: ``D'' = sum c_i i (i-1) b^(i-2)``.
    """
    bs = np.linspace(domain[0], domain[1], grid)
    rows = np.zeros((grid, degree + 1))
    for i in range(1, degree + 1):
        if basis == "inverse":
            rows[:, i] = i * (i + 1) * bs ** (-(i + 2))
        elif i >= 2:
            rows[:, i] = i * (i - 1) * bs ** (i - 2)
    return rows


def _min_b_second_derivative(
    coeffs: np.ndarray, domain: Tuple[float, float], basis: str
) -> float:
    rows = _b_second_derivative_rows(len(coeffs) - 1, domain, basis)
    return float((rows @ coeffs).min())


def _constrained_fit(
    vander: np.ndarray,
    ds: np.ndarray,
    x0: np.ndarray,
    x_lo: float,
    x_hi: float,
    degree: int,
    sign: float,
    domain: Tuple[float, float],
    basis: str,
    monotone: bool,
    convex: bool,
    grid: int = 65,
) -> np.ndarray:
    """Least squares with monotonicity/convexity constraints at grid
    points.

    Both constraints are linear in the coefficients, so this is a
    small convex QP; SLSQP solves it in a few milliseconds for k <= 3.
    """
    from scipy import optimize

    blocks = []
    if monotone:
        xs = np.linspace(x_lo, x_hi, grid)
        dmat = np.zeros((grid, degree + 1))
        for i in range(1, degree + 1):
            dmat[:, i] = i * xs ** (i - 1)
        blocks.append(sign * dmat)  # rows must be >= 0
    if convex:
        blocks.append(_b_second_derivative_rows(degree, domain, basis, grid))
    cmat = np.vstack(blocks)

    def objective(c: np.ndarray) -> float:
        r = vander @ c - ds
        return float(r @ r)

    def objective_grad(c: np.ndarray) -> np.ndarray:
        return 2.0 * (vander.T @ (vander @ c - ds))

    def attempt(mat: np.ndarray, start: np.ndarray) -> "optimize.OptimizeResult":
        return optimize.minimize(
            objective,
            start,
            jac=objective_grad,
            method="SLSQP",
            constraints=[{
                "type": "ineq",
                "fun": lambda c: mat @ c,
                "jac": lambda c: mat,
            }],
            options={"maxiter": 300, "ftol": 1e-12},
        )

    result = attempt(cmat, x0)
    if result.success or float((cmat @ result.x).min()) >= -1e-6:
        return result.x
    # SLSQP's linesearch (and the absolute violation check above)
    # misjudge mixed constraint scales: the second-derivative rows
    # can reach ~1e7 while the monotonicity rows stay O(1), so a
    # solution violating a huge row by an absolute 1e-4 is feasible
    # to ~1e-11 relative.  Retry with unit-norm rows -- the feasible
    # set is unchanged -- and, if need be, from the always-feasible
    # zero vector (cmat @ 0 == 0).  Retries run only after the
    # original solve fails, so previously-working fits are
    # bit-unchanged.
    norms = np.linalg.norm(cmat, axis=1)
    scaled = cmat / np.where(norms > 0.0, norms, 1.0)[:, None]
    for start in (x0, np.zeros_like(x0)):
        result = attempt(scaled, start)
        if result.success or float((scaled @ result.x).min()) >= -1e-6:
            return result.x
    raise ProfilingError(f"constrained fit failed: {result.message}")


def r_squared(
    model: SensitivityModel, samples: Sequence[Tuple[float, float]]
) -> float:
    """Coefficient of determination of ``model`` against ``samples``.

    Used both for goodness of fit (same samples the model was fitted
    on, Figure 6a) and for *predictive* accuracy when the runtime
    configuration differs from the profiled one (Figures 6b/6c): the
    model fitted at 1x is scored against samples measured at 0.1x/10x
    dataset size or 0.5x-4x node count.

    Clamped below at 0.0, matching how the paper reports it.
    """
    if not samples:
        raise ProfilingError("cannot score a model against zero samples")
    ds = np.array([d for _, d in samples], dtype=float)
    preds = np.array([model._raw(model._clip(b)) for b, _ in samples])
    ss_res = float(np.sum((ds - preds) ** 2))
    ss_tot = float(np.sum((ds - ds.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res < 1e-12 else 0.0
    return max(0.0, 1.0 - ss_res / ss_tot)
