"""Resilient in-process RPC bus for control-plane traffic.

The paper's connection manager "uses RPC operations for all
control-plane activities" (Section 7.3).  Within the simulator the
same structure is kept -- the Saba library never touches controller
state directly; every interaction is a named call through this bus --
so the message flow of Figure 7 is observable: tests assert on call
counts, and the distributed-controller experiment counts forwarding
hops.

Beyond plain dispatch the bus now implements the failure semantics a
real control plane needs (and that the faults experiment measures):

* **request envelopes** -- :class:`RpcRequest` carries a per-call
  timeout and retry policy; :meth:`RpcBus.submit` returns an
  :class:`RpcResponse` with the delivered value plus attempt/latency
  accounting.  :meth:`RpcBus.call` stays the one-line sugar every
  existing call site uses.
* **typed transport errors** -- :class:`RpcUnavailable` (endpoint
  missing or crash-injected; carries ``recover_at`` when the fault
  model knows the outage's end) and :class:`RpcTimeout` (deadline
  exceeded; ``executed`` distinguishes a lost request from a stalled
  handler whose side effect happened).  Both subclass
  :class:`RpcError`, so older ``except RpcError`` sites keep working.
* **bounded retry** -- exponential backoff with seeded jitter,
  re-attempting only failures where the handler provably did *not*
  run (unavailable endpoints, lost or late *requests*).  A stalled
  handler already executed, so its timeout is raised without retry:
  the bus is at-most-once for non-idempotent control operations.
* **fault injection** -- an optional
  :class:`~repro.faults.injector.FaultInjector` is consulted per
  attempt.  Without one, no RNG is touched and no timeout can fire,
  so a fault-free bus behaves bit-identically to the original
  synchronous dispatch.

Control-plane time is *virtual*: the simulator cannot suspend a call
mid-event, so injected latency and backoff accumulate in
``RpcResponse.latency`` / ``RpcStats`` (and decide timeouts) instead
of advancing the simulated clock.  See DESIGN.md §5e.

Registration contract: :meth:`RpcBus.register` raises on a duplicate
endpoint (two owners for one name is a programming error) unless
``replace=True``; :meth:`RpcBus.unregister` returns whether an
endpoint was actually removed (a missing endpoint is an expected
race while the library tears down a crashed controller, not an
error).  The Saba library drives crash/recovery and failover
promotion through exactly this pair.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

from repro.errors import ReproError
from repro.obs.events import NULL_OBSERVER, Observer


class RpcError(ReproError):
    """Unknown method, or a handler raised; base of transport errors."""


class RpcUnavailable(RpcError):
    """No such endpoint: never registered, unregistered, or crashed.

    ``recover_at`` is the simulated time the fault model expects the
    endpoint back (``None`` when unknown) -- callers use it to
    schedule recovery work instead of polling.
    """

    def __init__(self, message: str, target: str = "",
                 recover_at: Optional[float] = None,
                 attempts: int = 1) -> None:
        super().__init__(message)
        self.target = target
        self.recover_at = recover_at
        self.attempts = attempts


class RpcTimeout(RpcError):
    """The call's deadline elapsed before a reply arrived.

    ``executed`` tells the caller whether the handler ran: ``False``
    for a lost/late *request* (safe to retry), ``True`` for a stalled
    handler whose side effect happened (retrying would duplicate it).
    """

    def __init__(self, message: str, target: str = "", method: str = "",
                 executed: bool = False, attempts: int = 1) -> None:
        super().__init__(message)
        self.target = target
        self.method = method
        self.executed = executed
        self.attempts = attempts
        self.recover_at: Optional[float] = None


@dataclass(frozen=True)
class RpcRetryPolicy:
    """Bounded retry with exponential backoff and jitter.

    Attempt ``k`` (1-based) retries after
    ``min(backoff_max, backoff_base * backoff_factor**(k-1))``
    seconds, inflated by up to ``jitter`` (a fraction) of seeded
    noise.  Backoff is virtual control-plane time (see module doc).
    """

    max_attempts: int = 1
    backoff_base: float = 1e-3
    backoff_factor: float = 2.0
    backoff_max: float = 0.1
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise RpcError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise RpcError("backoff must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise RpcError(f"jitter must be in [0, 1]: {self.jitter}")

    def backoff_before(self, attempt: int, rng: random.Random) -> float:
        """Backoff preceding ``attempt`` (2-based; attempt 1 is free)."""
        base = min(self.backoff_max,
                   self.backoff_base * self.backoff_factor ** (attempt - 2))
        return base * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True)
class RpcRequest:
    """One control-plane request envelope."""

    target: str
    method: str
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    #: Per-call deadline in (virtual) seconds; ``None`` uses the bus
    #: default, which may itself be ``None`` (no deadline).
    timeout: Optional[float] = None
    #: Per-call retry policy; ``None`` uses the bus default.
    retry: Optional[RpcRetryPolicy] = None


@dataclass(frozen=True)
class RpcResponse:
    """A delivered reply plus its transport accounting."""

    value: Any
    attempts: int = 1
    #: Virtual control-plane seconds spent: injected latency + stalls
    #: + timeouts burned on failed attempts + retry backoff.
    latency: float = 0.0


@dataclass
class RpcStats:
    """Bus-wide transport accounting (tests, the faults experiment)."""

    submitted: int = 0
    delivered: int = 0
    retries: int = 0
    timeouts: int = 0
    unavailable: int = 0
    backoff_seconds: float = 0.0
    latency_seconds: float = 0.0


class _Attempt(Exception):
    """Internal: one attempt failed retryably; carries the real error."""

    def __init__(self, error: RpcError, elapsed: float) -> None:
        self.error = error
        self.elapsed = elapsed


class RpcBus:
    """A synchronous, named-endpoint message bus with failure semantics.

    ``faults`` plugs in a :class:`~repro.faults.injector.
    FaultInjector`; ``default_timeout``/``retry`` set bus-wide
    defaults that request envelopes may override; ``seed`` drives the
    backoff jitter; ``observer`` receives ``rpc.*`` retry/latency
    metrics.  All defaults preserve the original fail-fast synchronous
    behaviour exactly.
    """

    def __init__(
        self,
        default_timeout: Optional[float] = None,
        retry: Optional[RpcRetryPolicy] = None,
        faults: Optional[object] = None,
        seed: int = 0,
        observer: Optional[Observer] = None,
    ) -> None:
        self._endpoints: Dict[str, Dict[str, Callable[..., Any]]] = {}
        #: Delivered handler invocations per (target, method) -- a
        #: dropped/lost call is *not* counted, which is what lets
        #: tests assert the controller never saw it.
        self.call_counts: Counter = Counter()
        self.default_timeout = default_timeout
        self.retry = retry if retry is not None else RpcRetryPolicy()
        self.faults = faults
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.stats = RpcStats()
        self._jitter_rng = random.Random(f"rpc:{seed}:jitter")

    # -- endpoint registry -------------------------------------------------

    def register(self, target: str, methods: Dict[str, Callable[..., Any]],
                 replace: bool = False) -> None:
        """Expose ``methods`` under endpoint name ``target``.

        A duplicate name raises :class:`RpcError` -- two owners for
        one endpoint is a programming error -- unless ``replace=True``
        (failover promotion installing a standby).
        """
        if target in self._endpoints and not replace:
            raise RpcError(f"endpoint {target!r} already registered")
        self._endpoints[target] = dict(methods)

    def unregister(self, target: str) -> bool:
        """Remove ``target``; returns whether it was registered.

        Deliberately not an error when absent: tearing down an
        endpoint that already crashed away is an expected race, and
        the boolean lets the caller distinguish the two cases.
        """
        return self._endpoints.pop(target, None) is not None

    def has_endpoint(self, target: str) -> bool:
        return target in self._endpoints

    def endpoints(self) -> Dict[str, int]:
        """Live endpoints and their method counts, in registration
        order (the allocation service reports this from ``health``)."""
        return {
            target: len(methods)
            for target, methods in self._endpoints.items()
        }

    # -- calls -------------------------------------------------------------

    def call(self, target: str, method: str, **kwargs: Any) -> Any:
        """Invoke ``method`` on ``target`` under the bus defaults."""
        return self.submit(
            RpcRequest(target=target, method=method, kwargs=kwargs)
        ).value

    def request(self, target: str, method: str,
                timeout: Optional[float] = None,
                retry: Optional[RpcRetryPolicy] = None,
                **kwargs: Any) -> RpcResponse:
        """Envelope convenience: per-call timeout/retry overrides."""
        return self.submit(RpcRequest(target=target, method=method,
                                      kwargs=kwargs, timeout=timeout,
                                      retry=retry))

    def submit(self, req: RpcRequest) -> RpcResponse:
        """Deliver one request, retrying per its policy."""
        retry = req.retry if req.retry is not None else self.retry
        timeout = (req.timeout if req.timeout is not None
                   else self.default_timeout)
        self.stats.submitted += 1
        virtual = 0.0
        last_error: Optional[RpcError] = None
        obs = self.observer
        for attempt in range(1, max(1, retry.max_attempts) + 1):
            if attempt > 1:
                backoff = retry.backoff_before(attempt, self._jitter_rng)
                virtual += backoff
                self.stats.retries += 1
                self.stats.backoff_seconds += backoff
                if obs.enabled:
                    obs.metrics.counter("rpc.retries").inc()
            try:
                value, latency = self._attempt(req.target, req.method,
                                               req.kwargs, timeout)
            except _Attempt as failed:
                virtual += failed.elapsed
                last_error = failed.error
                continue
            except RpcTimeout as exc:
                # Executed-but-stalled: at-most-once, no retry.
                exc.attempts = attempt
                raise
            virtual += latency
            self.stats.delivered += 1
            self.stats.latency_seconds += virtual
            if obs.enabled and virtual > 0.0:
                obs.metrics.histogram("rpc.latency_seconds").observe(virtual)
            return RpcResponse(value=value, attempts=attempt,
                               latency=virtual)
        assert last_error is not None
        last_error.attempts = max(1, retry.max_attempts)
        raise last_error

    def _attempt(self, target: str, method: str,
                 kwargs: Mapping[str, Any],
                 timeout: Optional[float]) -> tuple:
        """One delivery attempt; raises ``_Attempt`` when retryable."""
        obs = self.observer
        fate = (self.faults.fate_of(target, method)
                if self.faults is not None else None)
        if fate is not None and fate.down_until is not None:
            self.stats.unavailable += 1
            if obs.enabled:
                obs.metrics.counter("rpc.unavailable").inc()
            raise _Attempt(
                RpcUnavailable(
                    f"endpoint {target!r} is down", target=target,
                    recover_at=fate.down_until,
                ),
                elapsed=0.0,  # connection refused: fails fast
            )
        endpoint = self._endpoints.get(target)
        if endpoint is None:
            self.stats.unavailable += 1
            if obs.enabled:
                obs.metrics.counter("rpc.unavailable").inc()
            raise _Attempt(
                RpcUnavailable(f"no endpoint {target!r}", target=target),
                elapsed=0.0,
            )
        handler = endpoint.get(method)
        if handler is None:
            # Programming error, not a transport fault: no retry.
            raise RpcError(f"endpoint {target!r} has no method {method!r}")
        if fate is not None:
            if fate.lost:
                # The request vanished; the caller burns its deadline
                # (or fails immediately when it set none).
                self.stats.timeouts += 1
                if obs.enabled:
                    obs.metrics.counter("rpc.timeouts").inc()
                raise _Attempt(
                    RpcTimeout(
                        f"{target}.{method} timed out (request lost)",
                        target=target, method=method, executed=False,
                    ),
                    elapsed=timeout if timeout is not None else 0.0,
                )
            if timeout is not None and fate.latency / 2.0 > timeout:
                # Request leg alone exceeds the deadline: the handler
                # never saw it, so this is retryable too.
                self.stats.timeouts += 1
                if obs.enabled:
                    obs.metrics.counter("rpc.timeouts").inc()
                raise _Attempt(
                    RpcTimeout(
                        f"{target}.{method} timed out (request in flight)",
                        target=target, method=method, executed=False,
                    ),
                    elapsed=timeout,
                )
        self.call_counts[(target, method)] += 1
        value = handler(**kwargs)
        latency = (fate.latency + fate.stall) if fate is not None else 0.0
        if timeout is not None and latency > timeout:
            # The handler ran but the reply is late: raise without
            # retrying (the side effect already happened).
            self.stats.timeouts += 1
            if obs.enabled:
                obs.metrics.counter("rpc.timeouts").inc()
            raise RpcTimeout(
                f"{target}.{method} timed out after executing "
                f"(reply {latency:.4f}s > deadline {timeout:.4f}s)",
                target=target, method=method, executed=True,
            )
        return value, latency

    # -- accounting --------------------------------------------------------

    def calls_to(self, target: str) -> int:
        """Total calls delivered to ``target`` (all methods)."""
        return sum(
            count for (t, _m), count in self.call_counts.items() if t == target
        )
