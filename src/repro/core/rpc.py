"""In-process RPC bus for control-plane traffic.

The paper's connection manager "uses RPC operations for all
control-plane activities" (Section 7.3).  Within the simulator the
same structure is kept -- the Saba library never touches controller
state directly; every interaction is a named call through this bus --
so the message flow of Figure 7 is observable: tests assert on call
counts, and the distributed-controller experiment counts forwarding
hops.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Dict

from repro.errors import ReproError


class RpcError(ReproError):
    """Unknown target or method, or a handler raised."""


class RpcBus:
    """A synchronous, named-endpoint message bus."""

    def __init__(self) -> None:
        self._endpoints: Dict[str, Dict[str, Callable[..., Any]]] = {}
        self.call_counts: Counter = Counter()

    def register(self, target: str, methods: Dict[str, Callable[..., Any]]) -> None:
        """Expose ``methods`` under endpoint name ``target``."""
        if target in self._endpoints:
            raise RpcError(f"endpoint {target!r} already registered")
        self._endpoints[target] = dict(methods)

    def unregister(self, target: str) -> None:
        self._endpoints.pop(target, None)

    def has_endpoint(self, target: str) -> bool:
        return target in self._endpoints

    def call(self, target: str, method: str, **kwargs: Any) -> Any:
        """Invoke ``method`` on ``target``; returns its result."""
        endpoint = self._endpoints.get(target)
        if endpoint is None:
            raise RpcError(f"no endpoint {target!r}")
        handler = endpoint.get(method)
        if handler is None:
            raise RpcError(f"endpoint {target!r} has no method {method!r}")
        self.call_counts[(target, method)] += 1
        return handler(**kwargs)

    def calls_to(self, target: str) -> int:
        """Total calls delivered to ``target`` (all methods)."""
        return sum(
            count for (t, _m), count in self.call_counts.items() if t == target
        )
