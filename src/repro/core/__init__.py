"""Saba: the paper's primary contribution.

Pipeline:

1. :mod:`repro.core.profiler` measures slowdown-vs-bandwidth samples
   for each application ahead of time;
2. :mod:`repro.core.sensitivity` fits Eq. 1 polynomial sensitivity
   models and stores them in a :class:`repro.core.table.SensitivityTable`;
3. at runtime, applications register through the
   :class:`repro.core.library.SabaLibrary`, and
   :class:`repro.core.controller.SabaController` solves Eq. 2 per
   switch output port, maps applications to priority levels
   (:func:`repro.core.clustering.kmeans`), PLs to queues
   (:class:`repro.core.clustering.PLHierarchy`), and programs WFQ
   weights on every port the application's connections traverse.
"""

from repro.core.sensitivity import (
    SensitivityModel,
    fit_sensitivity_model,
    r_squared,
)
from repro.core.table import SensitivityTable
from repro.core.profiler import OfflineProfiler, ProfileResult
from repro.core.allocation import optimize_weights, AllocationProblem
from repro.core.clustering import kmeans, PLHierarchy
from repro.core.controller import SabaController
from repro.core.distributed import MappingDatabase, DistributedControllerGroup
from repro.core.library import SabaLibrary
from repro.core.rpc import RpcBus

__all__ = [
    "SensitivityModel",
    "fit_sensitivity_model",
    "r_squared",
    "SensitivityTable",
    "OfflineProfiler",
    "ProfileResult",
    "optimize_weights",
    "AllocationProblem",
    "kmeans",
    "PLHierarchy",
    "SabaController",
    "MappingDatabase",
    "DistributedControllerGroup",
    "SabaLibrary",
    "RpcBus",
]
