"""The sensitivity table: profiler output consumed by the controller.

"The profiler determines the value of the coefficients [...] and
records the coefficients in the sensitivity table.  Saba uses this
table in its controller for bandwidth allocation" (Section 4.1,
Figure 4).

The table maps workload name -> :class:`SensitivityModel` and
round-trips through JSON so profiling results can be shipped to
controllers (the distributed design stores them in a replicated
database; see :mod:`repro.core.distributed`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional, Union

from repro.errors import ProfilingError
from repro.core.sensitivity import SensitivityModel


class SensitivityTable:
    """Name-keyed store of fitted sensitivity models."""

    def __init__(self, models: Optional[Iterable[SensitivityModel]] = None) -> None:
        self._models: Dict[str, SensitivityModel] = {}
        for model in models or []:
            self.add(model)

    def add(self, model: SensitivityModel, replace: bool = False) -> None:
        """Record a model; refuses silent overwrites unless ``replace``."""
        if model.name in self._models and not replace:
            raise ProfilingError(
                f"model for {model.name!r} already recorded; "
                "pass replace=True to update it"
            )
        self._models[model.name] = model

    def get(self, name: str) -> SensitivityModel:
        try:
            return self._models[name]
        except KeyError:
            raise ProfilingError(
                f"no sensitivity model for {name!r}; profiled workloads: "
                f"{', '.join(sorted(self._models)) or '(none)'}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def __len__(self) -> int:
        return len(self._models)

    def __iter__(self) -> Iterator[SensitivityModel]:
        return iter(self._models.values())

    def names(self) -> list[str]:
        return sorted(self._models)

    # -- persistence -------------------------------------------------------

    def to_json(self) -> str:
        payload = {}
        for name, m in sorted(self._models.items()):
            entry = {
                "coefficients": list(m.coefficients),
                "fit_domain": list(m.fit_domain),
                "basis": m.basis,
            }
            if m.r_squared is not None:
                entry["r_squared"] = m.r_squared
            payload[name] = entry
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SensitivityTable":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ProfilingError(f"malformed sensitivity table: {exc}") from exc
        table = cls()
        for name, entry in payload.items():
            table.add(
                SensitivityModel(
                    name=name,
                    coefficients=tuple(entry["coefficients"]),
                    fit_domain=tuple(entry["fit_domain"]),
                    basis=entry.get("basis", "inverse"),
                    r_squared=entry.get("r_squared"),
                )
            )
        return table

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SensitivityTable":
        return cls.from_json(Path(path).read_text())
