"""Reproduction of *Saba: Rethinking Datacenter Network Allocation from
Application's Perspective* (EuroSys '23).

The package is organised as follows:

``repro.simnet``
    A flow-level (fluid) discrete-event datacenter network simulator:
    topologies, routing, per-port queues, weighted fair queueing, and
    max-min water-filling rate allocation.  This substrate stands in for
    both the paper's 32-server InfiniBand testbed and its OMNeT++
    simulator.

``repro.workloads``
    Staged compute/communicate application models, including the ten
    named workloads of Table 1 and the twenty synthetic simulator
    workloads of Section 8.1.

``repro.cluster``
    Job placement, cluster-setup generation, and the co-run executor
    that runs a set of placed jobs on the fabric under an allocation
    policy.

``repro.baselines``
    The comparison points of the evaluation: InfiniBand-style
    congestion-controlled max-min, ideal max-min fairness, Homa, and
    Sincronia.

``repro.core``
    Saba itself: the offline profiler, polynomial sensitivity models,
    the Eq. 2 weight optimiser, application-to-PL and PL-to-queue
    clustering, the centralized and distributed controllers, and the
    Saba library (connection manager + software interface).

``repro.experiments``
    One module per table/figure of the paper's evaluation; the
    ``benchmarks/`` tree drives these.
"""

from repro._version import __version__

from repro.obs import NULL_OBSERVER, MetricsRegistry, Observer
from repro.core.sensitivity import SensitivityModel, fit_sensitivity_model
from repro.core.profiler import OfflineProfiler, ProfileResult
from repro.core.table import SensitivityTable
from repro.core.controller import SabaController
from repro.core.library import SabaLibrary

__all__ = [
    "__version__",
    "Observer",
    "NULL_OBSERVER",
    "MetricsRegistry",
    "SensitivityModel",
    "fit_sensitivity_model",
    "OfflineProfiler",
    "ProfileResult",
    "SensitivityTable",
    "SabaController",
    "SabaLibrary",
]
