"""Discrete-event simulation engine.

A deliberately small engine: a priority queue of timestamped events and
a clock.  The fluid network simulator (:mod:`repro.simnet.fabric`) and
the cluster runtime (:mod:`repro.cluster.runtime`) both schedule their
work through a single :class:`Simulator` so that compute-phase timers
and flow completions interleave on one timeline.

Events scheduled for the same timestamp fire in FIFO order of
scheduling, which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.obs.events import NULL_OBSERVER, SIM_RUN, Observer


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is by ``(time, seq)``; ``seq`` is a monotonically
    increasing tiebreaker so simultaneous events run FIFO.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class Simulator:
    """Event queue plus simulated clock.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule_at(2.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule_at(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 2.0]
    """

    def __init__(
        self,
        start_time: float = 0.0,
        observer: Optional[Observer] = None,
    ) -> None:
        self._now = float(start_time)
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        #: Observability sink; the no-op default costs one attribute
        #: check per ``run`` (never per event).
        self.observer = observer if observer is not None else NULL_OBSERVER

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of (non-cancelled) events executed so far."""
        return self._events_processed

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        Raises :class:`SimulationError` if ``time`` is in the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} (now={self._now})"
            )
        event = Event(time=float(time), seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` after a relative ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, callback)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        self._drop_cancelled()
        if not self._queue:
            return None
        return self._queue[0].time

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when the queue is empty."""
        self._drop_cancelled()
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self._now = event.time
        self._events_processed += 1
        event.callback()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` passes, or
        ``max_events`` have fired.

        ``until`` is inclusive: events scheduled exactly at ``until``
        still run, and the clock is advanced to ``until`` afterwards so
        the caller can rely on ``sim.now``.
        """
        fired = 0
        while True:
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            if max_events is not None and fired >= max_events:
                break
            self.step()
            fired += 1
        if until is not None and self._now < until:
            self._now = until
        if self.observer.enabled:
            self.report_metrics(fired=fired)

    def run_due(self, horizon: float) -> int:
        """Fire every pending event with ``time <= horizon``.

        The fluid fabric uses this to flush the timers coinciding with
        the event it just jumped to (``horizon`` is the event time plus
        a nanosecond of float slack).  Events a callback schedules
        inside the window fire too; the horizon is fixed at entry.
        Returns the number of events fired.
        """
        fired = 0
        while True:
            t = self.peek_time()
            if t is None or t > horizon:
                break
            self.step()
            fired += 1
        return fired

    def report_metrics(self, fired: Optional[int] = None) -> None:
        """Publish the engine's counters to the attached observer."""
        obs = self.observer
        if not obs.enabled:
            return
        obs.metrics.gauge("sim.events_processed").set(self._events_processed)
        obs.metrics.gauge("sim.horizon").set(self._now)
        obs.emit(
            SIM_RUN, self._now,
            events_processed=self._events_processed,
            horizon=self._now,
            fired=fired,
        )

    def advance_to(self, time: float) -> None:
        """Move the clock forward without running events.

        Used by the fluid fabric, which drains flow progress itself and
        only consults the engine for timer events.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot move clock backwards to t={time} (now={self._now})"
            )
        self._now = time

    def _drop_cancelled(self) -> None:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
