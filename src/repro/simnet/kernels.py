"""Vectorized solver kernels: batched component solves on flat arrays.

The object solver (:mod:`repro.simnet.fairness`) walks dicts of Flow
objects; at hyperscale the interpreter loop dominates.  This module
re-implements the two solve algorithms as numpy array programs over a
:class:`repro.simnet.incidence.BatchCSR` incidence:

* :func:`_solve_maxmin` -- exact progressive filling (the
  ``max_min_rates`` fast path for all-:class:`FairScheduler`
  components): freeze-iteration over per-link fill levels.
* :func:`_solve_residual` -- progressive residual filling
  (``solve_component``'s weighted grant rounds plus the mop-up
  phase) for mixed fair/WFQ/strict-priority components.

Numeric contract (see DESIGN.md 5i): the kernels mirror the object
solver's *round structure* -- the same offers, the same
``tol``-scaled early stopping, the same retirement rules -- rather
than jumping to the mathematical fixpoint, so per-flow rates agree
with the object solver to floating-point reassociation noise
(~1e-15 relative per round; completions within ~1e-12 relative).
Water levels are computed per segment with padded 2-D cumulative
sums, so every per-segment result is *bit-identical* whether a
component is solved alone or inside a larger batch -- the property
the batched quantum solve relies on.

Many congestion components are solved in ONE kernel invocation:
components are concatenated along the flow/link/pair axes and every
reduction is a segment reduction (``np.minimum.reduceat`` /
``np.add.reduceat`` over contiguous per-link, per-flow, per-queue
and per-component segments).  Per-component convergence is a boolean
mask, so early-converging components simply stop contributing.

Marshalling is decoupled from solving: :func:`prepare_components` is
the single place a batch of object-level components is flattened into
a :class:`PreparedBatch` (incidence CSR + capacity/limit/discipline
arrays), and both kernels consume a prepared batch and return a rate
*array* over its flow axis.  The array-native fabric path builds
:class:`PreparedBatch` instances directly from its persistent
incidence axes -- no per-solve Python flattening at all -- while
:func:`solve_batch` keeps the object-level ``flow_id -> rate``
contract on top of the same kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.simnet.fairness import KernelSpec, LinkScheduler
from repro.simnet.flows import Flow
from repro.simnet.incidence import BatchCSR, build_batch_csr

_EPS = 1e-9  # matches fairness._EPS

_BIG = np.iinfo(np.int64).max

#: Per-link discipline codes in a :class:`PreparedBatch`.
_KIND_FAIR, _KIND_WFQ, _KIND_PRIO = 0, 1, 2
KIND_FAIR, KIND_WFQ, KIND_PRIO = _KIND_FAIR, _KIND_WFQ, _KIND_PRIO


@dataclass
class KernelComponent:
    """One congestion component prepared for a batched kernel solve.

    ``on_link`` iteration order defines the link axis; ``caps`` holds
    the already-derated usable capacity and ``specs`` the per-link
    :data:`~repro.simnet.fairness.KernelSpec` (all keyed like
    ``on_link``).
    """

    flows: Sequence[Flow]
    on_link: Mapping[str, Sequence[Flow]]
    caps: Mapping[str, float]
    specs: Mapping[str, KernelSpec]


def component_specs(
    on_link: Mapping[str, Sequence[Flow]],
    schedulers: Mapping[str, LinkScheduler],
) -> Optional[Dict[str, KernelSpec]]:
    """Extract per-link kernel specs, or ``None`` if any link cannot
    be vectorized (custom scheduler without a kernel form)."""
    specs: Dict[str, KernelSpec] = {}
    for lid, members in on_link.items():
        extract = getattr(schedulers[lid], "kernel_spec", None)
        spec = extract(members) if extract is not None else None
        if spec is None:
            return None
        specs[lid] = spec
    return specs


def padded_cells(on_link: Mapping[str, Sequence[Flow]]) -> int:
    """Upper bound on the padded 2-D work-array size for a component.

    The mop-up water fill pads to ``links x max members-per-link``;
    the fabric uses this to route pathological components (one link
    shared by a huge share of flows alongside many small links) onto
    the object solver instead of allocating a huge padded array.
    """
    if not on_link:
        return 0
    return len(on_link) * max(len(m) for m in on_link.values())


@dataclass
class PreparedBatch:
    """A batch of components marshalled for one kernel invocation.

    ``csr`` is the flattened incidence; ``caps`` (per link axis entry)
    and ``limit`` (per flow axis entry) carry the derated usable
    capacities and demand limits.  For mixed-discipline batches,
    ``kind`` holds the per-link discipline (``_KIND_FAIR`` /
    ``_KIND_WFQ`` / ``_KIND_PRIO``), and ``qid`` / ``qweight`` the
    per-*pair* queue (or priority class) id and WFQ weight in the
    CSR's link-major pair order; all-fair batches leave them ``None``.
    """

    csr: BatchCSR
    caps: np.ndarray
    limit: np.ndarray
    kind: Optional[np.ndarray] = None
    qid: Optional[np.ndarray] = None
    qweight: Optional[np.ndarray] = None


def prepare_components(
    components: Sequence[KernelComponent],
    disciplines: bool = False,
) -> PreparedBatch:
    """Flatten object-level components into one :class:`PreparedBatch`.

    The only place a ``(flows, on_link)`` batch is turned into CSR
    arrays -- both kernels (and their two former private call sites)
    dispatch through here.  ``disciplines`` additionally extracts the
    per-link/per-pair discipline arrays the residual kernel needs;
    the all-fair max-min path skips that work.
    """
    csr = build_batch_csr([(c.flows, c.on_link) for c in components])
    F, L, P = csr.n_flows, csr.n_links, csr.n_pairs
    caps = np.fromiter(
        (c.caps[lid] for c in components for lid in c.on_link),
        dtype=np.float64,
        count=L,
    )
    flows = csr.flows
    assert flows is not None
    limit = np.fromiter(
        (f.demand_limit for f in flows), dtype=np.float64, count=F
    )
    kind = qid = qweight = None
    if disciplines:
        kind = np.empty(L, dtype=np.int8)
        qid = np.empty(P, dtype=np.int64)
        qweight = np.zeros(P)
        li = 0
        p = 0
        for c in components:
            for lid, members in c.on_link.items():
                skind, ids, weights = c.specs[lid]
                n = len(members)
                if skind == "fair":
                    kind[li] = _KIND_FAIR
                    qid[p : p + n] = 0
                elif skind == "wfq":
                    kind[li] = _KIND_WFQ
                    assert ids is not None and weights is not None
                    qid[p : p + n] = ids
                    qweight[p : p + n] = [weights[q] for q in ids]
                elif skind == "prio":
                    kind[li] = _KIND_PRIO
                    assert ids is not None
                    qid[p : p + n] = ids
                else:  # pragma: no cover
                    raise SimulationError(f"unknown kernel spec kind {skind!r}")
                li += 1
                p += n
    return PreparedBatch(
        csr=csr, caps=caps, limit=limit, kind=kind, qid=qid, qweight=qweight
    )


def solve_batch(
    components: Sequence[KernelComponent],
    max_rounds: int = 80,
    tol: float = 1e-4,
) -> Dict[int, float]:
    """Solve a batch of components in (at most) two kernel invocations.

    Components whose links are all uniform-fair take the exact
    progressive-filling kernel (mirroring ``max_min_rates``); the
    rest take the residual-filling kernel (mirroring
    ``solve_component``'s weighted rounds + mop-up) -- the same split
    the object ``solve_component`` performs.  Returns
    ``flow_id -> rate`` over all components.
    """
    fair = [c for c in components if all(s[0] == "fair" for s in c.specs.values())]
    mixed = [c for c in components if not all(s[0] == "fair" for s in c.specs.values())]
    rates: Dict[int, float] = {}
    if fair:
        prepared = prepare_components(fair)
        rates.update(_rates_by_id(prepared.csr, solve_maxmin_prepared(prepared)))
    if mixed:
        prepared = prepare_components(mixed, disciplines=True)
        rates.update(_rates_by_id(
            prepared.csr,
            solve_residual_prepared(prepared, max_rounds=max_rounds, tol=tol),
        ))
    return rates


def _rates_by_id(csr: BatchCSR, rates: np.ndarray) -> Dict[int, float]:
    """Object-level view of a kernel result: ``flow_id -> rate``."""
    flows = csr.flows
    assert flows is not None, "rate dict requires a materialized flow axis"
    return {f.flow_id: float(rates[i]) for i, f in enumerate(flows)}


def solve_component_vector(
    flows: Sequence[Flow],
    on_link: Mapping[str, Sequence[Flow]],
    schedulers: Mapping[str, LinkScheduler],
    caps: Mapping[str, float],
    max_rounds: int = 80,
    tol: float = 1e-4,
) -> Dict[int, float]:
    """Vector twin of :func:`repro.simnet.fairness.solve_component`.

    Raises :class:`SimulationError` if any link's scheduler has no
    kernel form (the fabric checks :func:`component_specs` first).
    """
    specs = component_specs(on_link, schedulers)
    if specs is None:
        raise SimulationError("component has a scheduler without a kernel spec")
    comp = KernelComponent(flows=flows, on_link=on_link, caps=caps, specs=specs)
    return solve_batch([comp], max_rounds=max_rounds, tol=tol)


# ---------------------------------------------------------------------------
# shared water-level primitives (padded per-segment cumulative sums)
# ---------------------------------------------------------------------------


def _fill_levels(
    rows: np.ndarray,
    cols: np.ndarray,
    shape: Tuple[int, int],
    vals: np.ndarray,
    active: np.ndarray,
    caps_row: np.ndarray,
) -> np.ndarray:
    """Water level per row: the theta with ``sum_active min(v, theta)
    = min(cap, sum_active v)``.

    ``vals``/``active`` are flat element arrays scattered to
    ``(rows, cols)``; active elements must appear in ascending value
    order along each row (inactive elements may be interspersed --
    they contribute nothing).  Returns theta per row; ``+inf`` means
    every active element is satisfiable within ``cap``.  Rows with
    ``cap <= 0`` are the caller's job (object ``water_fill`` returns
    zeros there).  All arithmetic is row-local, so results are
    independent of which other rows share the batch.
    """
    n_rows = shape[0]
    act = active.astype(np.float64)
    V = np.zeros(shape)
    A = np.zeros(shape)
    Vraw = np.full(shape, np.inf)
    M = np.zeros(shape, dtype=bool)
    V[rows, cols] = np.where(active, vals, 0.0)
    A[rows, cols] = act
    Vraw[rows, cols] = vals
    M[rows, cols] = active
    cumV = np.cumsum(V, axis=1)
    cumA = np.cumsum(A, axis=1)
    totN = cumA[:, -1]
    # Exclusive prefix sums by shifting (not cumV - V: an infinite
    # demand would produce inf - inf = NaN at its own position).
    exclV = np.zeros(shape)
    exclV[:, 1:] = cumV[:, :-1]
    exclN = np.zeros(shape)
    exclN[:, 1:] = cumA[:, :-1]
    with np.errstate(divide="ignore", invalid="ignore"):
        theta = (caps_row[:, None] - exclV) / (totN[:, None] - exclN)
    valid = M & (theta < Vraw)
    any_valid = valid.any(axis=1)
    first = np.argmax(valid, axis=1)
    levels = np.where(any_valid, theta[np.arange(n_rows), first], np.inf)
    return levels


def _weighted_levels(
    rows: np.ndarray,
    cols: np.ndarray,
    shape: Tuple[int, int],
    demands: np.ndarray,
    weights: np.ndarray,
    norm: np.ndarray,
    caps_row: np.ndarray,
) -> np.ndarray:
    """Weighted water level per row: theta with ``sum min(D, theta*w)
    = min(cap, sum D)`` over positive-weight entries.

    ``norm`` is ``D / w`` (the normalized demand); entries must be
    scattered in ascending ``norm`` order along each row.  Returns
    theta per row (``+inf`` = all satisfiable).
    """
    n_rows = shape[0]
    D = np.zeros(shape)
    W = np.zeros(shape)
    Nraw = np.full(shape, np.inf)
    M = np.zeros(shape, dtype=bool)
    D[rows, cols] = demands
    W[rows, cols] = weights
    Nraw[rows, cols] = norm
    M[rows, cols] = True
    cumD = np.cumsum(D, axis=1)
    cumW = np.cumsum(W, axis=1)
    totW = cumW[:, -1]
    exclD = np.zeros(shape)
    exclD[:, 1:] = cumD[:, :-1]
    exclW = np.zeros(shape)
    exclW[:, 1:] = cumW[:, :-1]
    with np.errstate(divide="ignore", invalid="ignore"):
        theta = (caps_row[:, None] - exclD) / (totW[:, None] - exclW)
    valid = M & (theta < Nraw)
    any_valid = valid.any(axis=1)
    first = np.argmax(valid, axis=1)
    levels = np.where(any_valid, theta[np.arange(n_rows), first], np.inf)
    return levels


# ---------------------------------------------------------------------------
# exact progressive filling (all-FairScheduler components)
# ---------------------------------------------------------------------------


def solve_maxmin_prepared(prepared: PreparedBatch) -> np.ndarray:
    """Batched mirror of ``max_min_rates`` (unit weights).

    Freeze iteration: each pass computes every link's fill level
    (headroom / unfrozen flow count), picks per component the first
    link within ``_EPS`` of the minimum level (matching the object
    scan's hysteresis on ties), freezes demand-capped flows first
    and otherwise the bottleneck link's flows, then subtracts the
    frozen rates from link headrooms.  Every pass freezes at least
    one flow per live component, so at most ``n_flows`` passes run.
    Returns the rate array over the batch's flow axis.
    """
    csr = prepared.csr
    caps = prepared.caps
    limit = prepared.limit
    F, L = csr.n_flows, csr.n_links
    rates = np.zeros(F)
    unfrozen = np.ones(F, dtype=bool)
    headroom = caps.copy()
    link_arange = np.arange(L, dtype=np.int64)
    for _ in range(F + 1):
        if not unfrozen.any():
            break
        uf_pair = unfrozen[csr.pair_flow].astype(np.float64)
        link_n = np.add.reduceat(uf_pair, csr.link_starts)
        with np.errstate(divide="ignore", invalid="ignore"):
            level = np.where(link_n > 0, headroom / link_n, np.inf)
        m = np.minimum.reduceat(level, csr.comp_link_starts)
        # Bottleneck selection with the object solver's tie hysteresis:
        # the first link whose level is within _EPS of the component
        # minimum (the sequential scan only re-anchors on a strict
        # _EPS improvement, so it settles on an early near-minimal
        # link rather than the exact argmin).  The explicit
        # ``level <= m`` term keeps the exact minimum eligible when
        # ``m`` is large enough that ``m + _EPS`` rounds back to ``m``
        # (fabric capacities are O(1e9); one ulp is ~1e-7 there).
        mc = m[csr.comp_of_link]
        near = (link_n > 0) & ((level <= mc) | (level < mc + _EPS))
        pos = np.where(near, link_arange, _BIG)
        bn = np.minimum.reduceat(pos, csr.comp_link_starts)
        live = bn < _BIG
        best = np.where(live, level[np.minimum(bn, L - 1)], np.inf)
        best_f = best[csr.comp_of_flow]
        # No live bottleneck (object scan: ``bottleneck is None``)
        # means the component is finished -- nothing may be capped
        # there, or infinite demand limits would "cap" at inf.
        capped = unfrozen & live[csr.comp_of_flow] & (limit <= best_f + _EPS)
        has_capped = np.add.reduceat(
            capped.astype(np.float64), csr.comp_flow_starts
        ) > 0
        rates = np.where(capped, np.minimum(limit, best_f), rates)
        # Components with capped flows re-derive the bottleneck next
        # pass; the rest freeze the bottleneck link's flows at the
        # fill level.
        on_bn = csr.pair_link == bn[csr.comp_of_link[csr.pair_link]]
        sel = on_bn & unfrozen[csr.pair_flow]
        sel &= ~has_capped[csr.comp_of_flow[csr.pair_flow]]
        bottlenecked = np.zeros(F, dtype=bool)
        bottlenecked[csr.pair_flow[sel]] = True
        rates = np.where(bottlenecked, best_f, rates)
        frozen_now = capped | bottlenecked
        if not frozen_now.any():
            break
        unfrozen &= ~frozen_now
        dec = np.add.reduceat(
            np.where(frozen_now[csr.pair_flow], rates[csr.pair_flow], 0.0),
            csr.link_starts,
        )
        headroom = np.maximum(0.0, headroom - dec)
    else:  # pragma: no cover - progress is guaranteed each pass
        if unfrozen.any():
            raise SimulationError("max-min kernel failed to converge")
    return rates


# ---------------------------------------------------------------------------
# progressive residual filling (mixed fair/WFQ/priority components)
# ---------------------------------------------------------------------------


class _ResidualBatch:
    """Static layout + per-round state for the residual-filling kernel.

    The canonical pair order is *qsort order*: pairs sorted by
    (link, queue/class id, member demand limit), stable.  Link and
    queue-segment ("qseg": one (link, queue) or (link, class) group)
    boundaries are contiguous in that order, and within a qseg pairs
    ascend by demand limit -- exactly the order the padded water-fill
    needs, so the expensive sort happens once per solve, not per
    round.  (The mop-up phase sorts by *headroom*, which changes per
    round, so it re-sorts each round -- in C, via lexsort.)
    """

    def __init__(self, prepared: PreparedBatch) -> None:
        csr = prepared.csr
        self.csr = csr
        F, L, P = csr.n_flows, csr.n_links, csr.n_pairs
        self.caps = prepared.caps
        self.limit = prepared.limit
        kind = prepared.kind
        qid = prepared.qid
        weight = prepared.qweight
        if kind is None or qid is None or weight is None:
            raise SimulationError(
                "residual kernel requires discipline arrays "
                "(prepare with disciplines=True)"
            )
        self.kind = kind
        # --- canonical qsort pair order --------------------------------
        lim_pair = self.limit[csr.pair_flow]
        qsort = np.lexsort((lim_pair, qid, csr.pair_link))
        inv = np.empty(P, dtype=np.int64)
        inv[qsort] = np.arange(P, dtype=np.int64)
        self.pf = csr.pair_flow[qsort]
        self.pl = csr.pair_link[qsort]
        self.plim = self.limit[self.pf]
        qid_q = qid[qsort]
        w_q = weight[qsort]
        # Link segments keep their offsets (qsort is stable with link
        # as the primary key and pairs were built link-major).
        self.link_starts = csr.link_starts
        self.link_counts = csr.link_counts
        self.link_rep = np.repeat(self.link_starts, self.link_counts)
        # --- qseg layout ----------------------------------------------
        arangeP = np.arange(P, dtype=np.int64)
        new_seg = np.ones(P, dtype=bool)
        if P > 1:
            new_seg[1:] = (self.pl[1:] != self.pl[:-1]) | (qid_q[1:] != qid_q[:-1])
        self.qrow = np.cumsum(new_seg) - 1  # qseg index per pair
        qseg_starts = arangeP[new_seg]
        Q = len(qseg_starts)
        self.qseg_starts = qseg_starts
        self.qseg_counts = np.diff(np.append(qseg_starts, P))
        self.qcol = arangeP - np.repeat(qseg_starts, self.qseg_counts)
        self.qseg_link = self.pl[qseg_starts]
        self.qseg_qid = qid_q[qseg_starts]
        self.qseg_kind = kind[self.qseg_link]
        self.qseg_weight = w_q[qseg_starts]
        self.Q = Q
        self.maxq = int(self.qseg_counts.max()) if Q else 0
        self.fairwfq_pair = kind[self.pl] != _KIND_PRIO
        # --- WFQ queue-level layout -----------------------------------
        self.wfq_links = np.where(kind == _KIND_WFQ)[0]
        self.nW = len(self.wfq_links)
        wrow_of_link = np.full(L, -1, dtype=np.int64)
        wrow_of_link[self.wfq_links] = np.arange(self.nW, dtype=np.int64)
        is_wfq_qseg = self.qseg_kind == _KIND_WFQ
        self.posq = np.where(is_wfq_qseg & (self.qseg_weight > 0))[0]
        self.zeroq = np.where(is_wfq_qseg & (self.qseg_weight == 0))[0]
        self.pos_row = wrow_of_link[self.qseg_link[self.posq]]
        self.zero_row = wrow_of_link[self.qseg_link[self.zeroq]]
        if self.nW:
            pos_counts = np.bincount(self.pos_row, minlength=self.nW)
            zero_counts = np.bincount(self.zero_row, minlength=self.nW)
            pos_off = np.concatenate(([0], np.cumsum(pos_counts)[:-1]))
            zero_off = np.concatenate(([0], np.cumsum(zero_counts)[:-1]))
            self.pos_rep = np.repeat(pos_off, pos_counts)
            self.zero_rep = np.repeat(zero_off, zero_counts)
            self.max_pos = int(pos_counts.max()) if len(self.posq) else 0
            self.max_zero = int(zero_counts.max()) if len(self.zeroq) else 0
        # --- strict-priority per-class layout -------------------------
        prio_q = np.where(self.qseg_kind == _KIND_PRIO)[0]
        self.prio_links = np.where(kind == _KIND_PRIO)[0]
        prow_of_link = np.full(L, -1, dtype=np.int64)
        prow_of_link[self.prio_links] = np.arange(len(self.prio_links))
        # Per class (ascending): this class's qsegs, their prio-link
        # rows, the member-pair indices (qsort order) and each pair's
        # (local row, col) in the class's padded fill -- all static.
        self.prio_classes: List[
            Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]
        ] = []
        for cls in np.unique(self.qseg_qid[prio_q]):
            qsegs_c = prio_q[self.qseg_qid[prio_q] == cls]
            rows_c = prow_of_link[self.qseg_link[qsegs_c]]
            counts_c = self.qseg_counts[qsegs_c]
            pair_idx = np.concatenate(
                [
                    np.arange(s, s + n, dtype=np.int64)
                    for s, n in zip(self.qseg_starts[qsegs_c], counts_c)
                ]
            )
            rows_pair = np.repeat(
                np.arange(len(qsegs_c), dtype=np.int64), counts_c
            )
            cols_pair = self.qcol[pair_idx]
            self.prio_classes.append(
                (qsegs_c, rows_c, pair_idx, rows_pair, cols_pair, int(counts_c.max()))
            )
        # --- per-flow path reductions ---------------------------------
        # flow_perm groups pairs flow-major in the ORIGINAL link-major
        # order; compose with inv to gather from qsort-ordered arrays.
        self.flow_gather = inv[csr.flow_perm]
        self.flow_starts = csr.flow_starts
        self.fm_link = csr.pair_link[csr.flow_perm]
        # --- per-component tolerances (tol * largest link cap) --------
        self._max_cap = np.maximum.reduceat(self.caps, csr.comp_link_starts)
        self.eps_c = self._max_cap.copy()
        self.eps_f = self.eps_c[csr.comp_of_flow]
        self.eps_l = self.eps_c[csr.comp_of_link]

    def set_tol(self, tol: float) -> None:
        self.eps_c = self._max_cap * tol
        self.eps_f = self.eps_c[self.csr.comp_of_flow]
        self.eps_l = self.eps_c[self.csr.comp_of_link]

    # -- per-qseg target allocation (the scheduler `allocate` mirror) --

    def _qseg_caps(self, g_pair: np.ndarray, usable: np.ndarray) -> np.ndarray:
        """Capacity granted to each qseg this round: the full usable
        capacity for fair links, the weighted-water-fill share for
        WFQ queues; priority qsegs are filled in the class loop."""
        qcap = np.zeros(self.Q)
        fair = self.qseg_kind == _KIND_FAIR
        qcap[fair] = usable[self.qseg_link[fair]]
        if self.nW:
            D_q = np.add.reduceat(np.where(g_pair, self.plim, 0.0), self.qseg_starts)
            cap_w = usable[self.wfq_links]
            if len(self.posq):
                D = D_q[self.posq]
                W = self.qseg_weight[self.posq]
                with np.errstate(divide="ignore", invalid="ignore"):
                    norm = np.where(W > 0, D / W, np.inf)
                order = np.lexsort((norm, self.pos_row))
                cols = np.arange(len(self.posq), dtype=np.int64) - self.pos_rep
                theta = _weighted_levels(
                    self.pos_row[order],
                    cols,
                    (self.nW, self.max_pos),
                    D[order],
                    W[order],
                    norm[order],
                    cap_w,
                )
                tq = theta[self.pos_row]
                with np.errstate(invalid="ignore"):
                    alloc = np.where(
                        np.isfinite(tq), np.minimum(D, tq * W), D
                    )
                alloc = np.where(cap_w[self.pos_row] > 0, alloc, 0.0)
                qcap[self.posq] = alloc
                claimed = np.bincount(self.pos_row, weights=alloc, minlength=self.nW)
            else:
                claimed = np.zeros(self.nW)
            if len(self.zeroq):
                # Zero-weight queues split whatever the weighted fill
                # left behind, per-queue fair (object solver's final
                # unweighted fill over the leftovers).
                left = cap_w - claimed
                left = np.where(left > _EPS, left, 0.0)
                Dz = D_q[self.zeroq]
                order = np.lexsort((Dz, self.zero_row))
                cols = np.arange(len(self.zeroq), dtype=np.int64) - self.zero_rep
                theta = _fill_levels(
                    self.zero_row[order],
                    cols,
                    (self.nW, self.max_zero),
                    Dz[order],
                    np.ones(len(self.zeroq), dtype=bool),
                    left,
                )
                tz = theta[self.zero_row]
                allocz = np.where(np.isfinite(tz), np.minimum(Dz, tz), Dz)
                qcap[self.zeroq] = np.where(left[self.zero_row] > 0, allocz, 0.0)
        return qcap

    def _qseg_theta(self, g_pair: np.ndarray, qcap: np.ndarray) -> np.ndarray:
        """Per-qseg water level over candidate members, given qseg
        capacities (fair + WFQ qsegs in one padded fill)."""
        active = g_pair & self.fairwfq_pair
        return _fill_levels(
            self.qrow,
            self.qcol,
            (self.Q, self.maxq),
            self.plim,
            active,
            qcap,
        )

    def _prio_fill(
        self,
        g_pair: np.ndarray,
        usable: np.ndarray,
        qcap: np.ndarray,
        theta_q: np.ndarray,
    ) -> None:
        """Strict-priority links: classes ascending, each class
        water-fills what the previous classes left (mirrors
        ``PriorityScheduler.allocate``); writes qcap/theta in place."""
        if not len(self.prio_links):
            return
        rem = usable[self.prio_links].copy()
        for qsegs_c, rows_c, pair_idx, rows_pair, cols_pair, max_c in self.prio_classes:
            caps_c = rem[rows_c]
            lim_c = self.plim[pair_idx]
            g_c = g_pair[pair_idx]
            theta_c = _fill_levels(
                rows_pair,
                cols_pair,
                (len(qsegs_c), max_c),
                lim_c,
                g_c,
                caps_c,
            )
            qcap[qsegs_c] = caps_c
            theta_q[qsegs_c] = theta_c
            tp = theta_c[rows_pair]
            alloc = np.where(
                g_c & (caps_c[rows_pair] > 0),
                np.where(np.isfinite(tp), np.minimum(lim_c, tp), lim_c),
                0.0,
            )
            per_qseg = np.bincount(rows_pair, weights=alloc, minlength=len(qsegs_c))
            served = np.bincount(rows_c, weights=per_qseg, minlength=len(rem))
            rem = rem - served
            rem = np.where(rem <= _EPS, 0.0, rem)


def solve_residual_prepared(
    prepared: PreparedBatch,
    max_rounds: int = 80,
    tol: float = 1e-4,
) -> np.ndarray:
    """Batched mirror of ``solve_component`` for mixed disciplines.

    Returns the rate array over the prepared batch's flow axis.
    """
    b = _ResidualBatch(prepared)
    b.set_tol(tol)
    csr = b.csr
    F, L = csr.n_flows, csr.n_links
    rate = np.zeros(F)
    used = np.zeros(L)
    growing = np.ones(F, dtype=bool)
    arangeP = np.arange(csr.n_pairs, dtype=np.int64)

    def run_rounds(mopup: bool) -> None:
        nonlocal rate, used
        comp_live = np.ones(len(csr.comp_flow_starts), dtype=bool)
        for _ in range(max_rounds):
            if not growing.any():
                return
            g_pair = growing[b.pf]
            residual = np.maximum(0.0, b.caps - used)
            if mopup:
                # Leftover capacity, per-flow fair over remaining
                # headroom (re-sorted per round: headroom changes).
                head = b.plim - rate[b.pf]
                order = np.lexsort((head, b.pl))
                cols = arangeP - b.link_rep
                theta_l = _fill_levels(
                    b.pl[order],
                    cols,
                    (L, int(b.link_counts.max())),
                    head[order],
                    g_pair[order],
                    residual,
                )
                tl = theta_l[b.pl]
                offers = np.where(
                    g_pair & (residual[b.pl] > 0),
                    np.where(np.isfinite(tl), np.minimum(head, tl), head),
                    0.0,
                )
            else:
                # Discipline targets minus current holdings, with the
                # round's total hand-out capped at the link residual.
                blocked = np.add.reduceat(
                    np.where(g_pair, 0.0, rate[b.pf]), b.link_starts
                )
                usable = np.maximum(0.0, b.caps - blocked)
                qcap = b._qseg_caps(g_pair, usable)
                theta_q = b._qseg_theta(g_pair, qcap)
                b._prio_fill(g_pair, usable, qcap, theta_q)
                tp = theta_q[b.qrow]
                target = np.where(
                    g_pair & (qcap[b.qrow] > 0),
                    np.where(np.isfinite(tp), np.minimum(b.plim, tp), b.plim),
                    0.0,
                )
                offers = np.where(g_pair, np.maximum(0.0, target - rate[b.pf]), 0.0)
                total = np.add.reduceat(offers, b.link_starts)
                over = (total > residual) & (total > 0.0)
                factor = np.where(over, residual / np.where(over, total, 1.0), 1.0)
                offers = offers * factor[b.pl]
            extra = np.minimum.reduceat(offers[b.flow_gather], b.flow_starts)
            granted = growing & (extra > 0.0)
            if not granted.any():
                return
            gext = np.where(granted, extra, 0.0)
            rate += gext
            added = np.maximum.reduceat(gext, csr.comp_flow_starts)
            inc = np.add.reduceat(gext[b.pf], b.link_starts)
            used += inc
            growing[granted & (rate >= b.limit - b.eps_f)] = False
            sat = (inc > 0.0) & (used >= b.caps - b.eps_l)
            retire = sat[b.pl] & growing[b.pf]
            growing[b.pf[retire]] = False
            comp_live &= added > b.eps_c
            np.logical_and(growing, comp_live[csr.comp_of_flow], out=growing)

    run_rounds(mopup=False)
    # Work-conserving mop-up: flows under their cap with no saturated
    # link on their path share the leftovers per-flow fair.
    sat_now = used >= b.caps - b.eps_l
    path_ok = np.logical_and.reduceat(~sat_now[b.fm_link], b.flow_starts)
    np.logical_and(rate < b.limit - b.eps_f, path_ok, out=growing)
    run_rounds(mopup=True)
    return rate
