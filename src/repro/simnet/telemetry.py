"""Utilization telemetry for Figure 2-style timelines.

The motivation study (Section 2.3) plots per-server CPU and network
utilization over time for LR and PR under 75 % and 25 % bandwidth.
:class:`UtilizationRecorder` reconstructs those timelines from the
fluid simulation:

* network utilization is sampled by the fabric each time rates change
  (rates are piecewise-constant, so these samples are exact);
* CPU busy intervals are reported by the cluster runtime whenever a
  compute phase starts/ends.

``series()`` resamples either metric onto a uniform grid for plotting
or assertions.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class _StepSeries:
    """Piecewise-constant series as parallel (time, value) arrays."""

    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("telemetry samples must be time-ordered")
        if self.times and time == self.times[-1]:
            self.values[-1] = value
            return
        self.times.append(time)
        self.values.append(value)

    def value_at(self, time: float) -> float:
        if not self.times or time < self.times[0]:
            return 0.0
        idx = bisect_right(self.times, time) - 1
        return self.values[idx]


class UtilizationRecorder:
    """Records per-server network and CPU utilization in [0, 1]."""

    def __init__(self) -> None:
        self._network: Dict[str, _StepSeries] = {}
        self._cpu: Dict[str, _StepSeries] = {}

    # -- fabric-facing ---------------------------------------------------

    def record_network(self, server: str, time: float, utilization: float) -> None:
        """Sample the server's NIC utilization (fraction of line rate)."""
        series = self._network.setdefault(server, _StepSeries())
        series.append(time, max(0.0, min(1.0, utilization)))

    # -- runtime-facing ---------------------------------------------------

    def cpu_busy(self, server: str, time: float, busy: bool) -> None:
        """Mark the server's CPU as busy/idle from ``time`` onward."""
        series = self._cpu.setdefault(server, _StepSeries())
        series.append(time, 1.0 if busy else 0.0)

    # -- queries ----------------------------------------------------------

    def servers(self) -> List[str]:
        return sorted(set(self._network) | set(self._cpu))

    def series(
        self,
        server: str,
        metric: str,
        t_end: float,
        resolution: float = 1.0,
        t_start: float = 0.0,
    ) -> Tuple[List[float], List[float]]:
        """Resample a metric onto a uniform grid.

        ``metric`` is ``"network"`` or ``"cpu"``.  Returns parallel
        lists of timestamps and utilization values in [0, 1].
        """
        if metric == "network":
            series = self._network.get(server, _StepSeries())
        elif metric == "cpu":
            series = self._cpu.get(server, _StepSeries())
        else:
            raise ValueError(f"unknown metric {metric!r}")
        if resolution <= 0:
            raise ValueError("resolution must be > 0")
        times: List[float] = []
        values: List[float] = []
        t = t_start
        while t <= t_end + 1e-12:
            times.append(t)
            values.append(series.value_at(t))
            t += resolution
        return times, values

    def mean_utilization(self, server: str, metric: str, t_end: float) -> float:
        """Time-weighted mean utilization over [0, t_end]."""
        times, values = self.series(server, metric, t_end, resolution=max(t_end / 2000.0, 1e-6))
        if not values:
            return 0.0
        return sum(values) / len(values)
