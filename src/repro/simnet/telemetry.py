"""Utilization telemetry for Figure 2-style timelines.

The motivation study (Section 2.3) plots per-server CPU and network
utilization over time for LR and PR under 75 % and 25 % bandwidth.
:class:`UtilizationRecorder` reconstructs those timelines from the
fluid simulation:

* network utilization is sampled by the fabric each time rates change
  (rates are piecewise-constant, so these samples are exact);
* CPU busy intervals are reported by the cluster runtime whenever a
  compute phase starts/ends.

``series()`` resamples either metric onto a uniform grid for plotting
or assertions.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class _StepSeries:
    """Piecewise-constant series as parallel (time, value) arrays."""

    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        """Record ``value`` from ``time`` onward.

        Samples must arrive in non-decreasing time order.  A sample at
        *exactly* the last recorded timestamp overwrites the previous
        value (last-write-wins) instead of growing the series: the
        series is piecewise-constant, so two values at one instant
        would make it ill-defined, and fabric rate recomputations
        legitimately sample the same simulated instant several times
        within one event cascade -- only the final state of the
        instant holds for the following interval.  The online
        estimator's sampling path relies on this collapse.
        """
        if self.times and time < self.times[-1]:
            raise ValueError("telemetry samples must be time-ordered")
        if self.times and time == self.times[-1]:
            self.values[-1] = value
            return
        self.times.append(time)
        self.values.append(value)

    def value_at(self, time: float) -> float:
        if not self.times or time < self.times[0]:
            return 0.0
        idx = bisect_right(self.times, time) - 1
        return self.values[idx]

    def integral(self, t_start: float, t_end: float) -> float:
        """Exact integral of the step series over [t_start, t_end].

        The series is 0 before its first sample; the last value holds
        forever after.
        """
        if t_end <= t_start:
            return 0.0
        total = 0.0
        for i, t in enumerate(self.times):
            seg_start = max(t, t_start)
            seg_end = (
                self.times[i + 1] if i + 1 < len(self.times) else t_end
            )
            seg_end = min(seg_end, t_end)
            if seg_end > seg_start:
                total += self.values[i] * (seg_end - seg_start)
        return total


class UtilizationRecorder:
    """Records per-server network and CPU utilization in [0, 1]."""

    def __init__(self) -> None:
        self._network: Dict[str, _StepSeries] = {}
        self._cpu: Dict[str, _StepSeries] = {}

    # -- fabric-facing ---------------------------------------------------

    def record_network(self, server: str, time: float, utilization: float) -> None:
        """Sample the server's NIC utilization (fraction of line rate)."""
        series = self._network.setdefault(server, _StepSeries())
        series.append(time, max(0.0, min(1.0, utilization)))

    # -- runtime-facing ---------------------------------------------------

    def cpu_busy(self, server: str, time: float, busy: bool) -> None:
        """Mark the server's CPU as busy/idle from ``time`` onward."""
        series = self._cpu.setdefault(server, _StepSeries())
        series.append(time, 1.0 if busy else 0.0)

    # -- queries ----------------------------------------------------------

    def servers(self) -> List[str]:
        return sorted(set(self._network) | set(self._cpu))

    def _series_of(self, server: str, metric: str) -> _StepSeries:
        if metric == "network":
            return self._network.get(server, _StepSeries())
        if metric == "cpu":
            return self._cpu.get(server, _StepSeries())
        raise ValueError(f"unknown metric {metric!r}")

    def series(
        self,
        server: str,
        metric: str,
        t_end: float,
        resolution: float = 1.0,
        t_start: float = 0.0,
    ) -> Tuple[List[float], List[float]]:
        """Resample a metric onto a uniform grid.

        ``metric`` is ``"network"`` or ``"cpu"``.  Returns parallel
        lists of timestamps and utilization values in [0, 1].
        """
        series = self._series_of(server, metric)
        if resolution <= 0:
            raise ValueError("resolution must be > 0")
        times: List[float] = []
        values: List[float] = []
        t = t_start
        while t <= t_end + 1e-12:
            times.append(t)
            values.append(series.value_at(t))
            t += resolution
        return times, values

    def mean_utilization(self, server: str, metric: str, t_end: float) -> float:
        """Time-weighted mean utilization over [0, t_end].

        Computed as the exact integral of the piecewise-constant sample
        series divided by ``t_end`` -- no resampling grid, so unevenly
        spaced samples carry exactly their holding time's weight.
        """
        series = self._series_of(server, metric)
        if t_end <= 0.0:
            return series.value_at(0.0)
        return series.integral(0.0, t_end) / t_end

    def window_mean(
        self, server: str, metric: str, t_start: float, t_end: float
    ) -> float:
        """Time-weighted mean utilization over ``[t_start, t_end]``.

        The windowed counterpart of :meth:`mean_utilization` -- the
        online estimator's stage sampler uses it to read the achieved
        bandwidth fraction of one stage's communication phase off the
        NIC telemetry.  Degenerate windows return the instantaneous
        value at ``t_start``.
        """
        series = self._series_of(server, metric)
        if t_end <= t_start:
            return series.value_at(t_start)
        return series.integral(t_start, t_end) / (t_end - t_start)
