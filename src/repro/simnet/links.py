"""Directed network links.

A :class:`Link` is a unidirectional pipe with a fixed line-rate
capacity and an optional *effective-capacity function* used by the
InfiniBand-baseline policy to model congestion-control inefficiency
(the gap between FECN's approximation of max-min fairness and the
ideal; see DESIGN.md section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(frozen=True)
class Link:
    """A directed link ``src -> dst``.

    Attributes:
        link_id: unique identifier, e.g. ``"server3->tor0"``.
        src: name of the transmitting node.
        dst: name of the receiving node.
        capacity: line rate in bytes/second.
    """

    link_id: str
    src: str
    dst: str
    capacity: float

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"link {self.link_id}: capacity must be > 0")
        if self.src == self.dst:
            raise ValueError(f"link {self.link_id}: src == dst ({self.src})")

    def reverse_id(self) -> str:
        """Identifier of the opposite-direction link, by naming convention."""
        return f"{self.dst}->{self.src}"


@dataclass
class LinkState:
    """Mutable per-link runtime state kept by the fabric.

    ``throttle`` caps the usable fraction of the line rate; the offline
    profiler uses it to emulate NIC rate-limiting (token-bucket caps of
    5/10/25/50/75/90/100 % of link capacity, Section 7.1).

    ``efficiency_fn`` maps the number of competing flows to a usable
    fraction of capacity, modelling congestion-control inefficiency.
    ``None`` means the link is ideal.

    ``up`` is the link's administrative/physical state.  A downed link
    carries nothing: its effective capacity is zero, so any flow still
    routed over it stalls until rerouted.  Transitions are driven
    through :meth:`repro.simnet.topology.Topology.set_link_up` (which
    keeps the routing view consistent), not by writing this field.
    """

    link: Link
    throttle: float = 1.0
    efficiency_fn: Optional[Callable[[int], float]] = field(default=None)
    up: bool = True

    def effective_capacity(self, n_flows: int) -> float:
        """Capacity usable by ``n_flows`` competing flows, in bytes/s."""
        if not self.up:
            return 0.0
        cap = self.link.capacity * self.throttle
        if self.efficiency_fn is not None and n_flows > 0:
            eff = self.efficiency_fn(n_flows)
            cap *= min(1.0, max(0.0, eff))
        return cap

    def set_throttle(self, fraction: float) -> None:
        """Set the usable fraction of line rate (profiler rate limiting)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"throttle must be in (0, 1], got {fraction}")
        self.throttle = float(fraction)
