"""Switches, output ports, and the SL/VL-style queue tables.

InfiniBand terminology from the paper maps onto this module as follows:

* *Service Level (SL)* -> a flow's priority level (``Flow.pl``); the
  fabric carries it end to end.
* *Virtual Lane (VL)*  -> a queue at an output port; each port owns a
  :class:`QueueTable` that maps PLs to queue indices and holds a weight
  per queue.
* The *SL-to-VL table with weights* that operators program on real
  switches is exactly what :meth:`QueueTable.program` installs; Saba's
  controller rewrites it on every (de)registration and connection
  create/destroy event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.errors import TopologyError

#: Default number of per-port queues in a datacenter-grade switch
#: (Section 5.3: "a typical datacenter-grade switch supports 4-8
#: queues"; the testbed's SX6036G offers 9 VLs of which Saba uses 8).
DEFAULT_NUM_QUEUES = 8

#: Number of priority levels exposed by InfiniBand (Section 5.3).
NUM_PRIORITY_LEVELS = 16


class QueueTable:
    """Per-output-port mapping of priority levels to weighted queues.

    The table starts out with every PL mapped to queue 0 and uniform
    weights, which makes an unprogrammed port behave like a single
    FIFO -- matching a switch before any Saba configuration.
    """

    def __init__(self, num_queues: int = DEFAULT_NUM_QUEUES) -> None:
        if num_queues < 1:
            raise TopologyError(f"num_queues must be >= 1, got {num_queues}")
        self.num_queues = num_queues
        self._pl_to_queue: Dict[int, int] = {}
        self._weights: List[float] = [1.0] * num_queues
        #: Queue for untagged traffic (PL None / unmapped PLs).  The
        #: operator can point this at a statically reserved queue to
        #: isolate non-Saba-compliant applications (Section 3).
        self.default_queue = 0
        self.generation = 0

    def queue_of(self, pl: Optional[int]) -> int:
        """Queue index serving priority level ``pl``."""
        if pl is None:
            return self.default_queue
        return self._pl_to_queue.get(pl, self.default_queue)

    def weight_of(self, queue: int) -> float:
        """Configured weight of ``queue``."""
        return self._weights[queue]

    @property
    def weights(self) -> List[float]:
        return list(self._weights)

    def program(
        self,
        pl_to_queue: Mapping[int, int],
        weights: Mapping[int, float],
    ) -> None:
        """Install a new PL->queue mapping and queue weights atomically.

        ``weights`` maps queue index -> weight; unmentioned queues keep
        weight 0 so they cannot silently absorb bandwidth.  Raises
        :class:`TopologyError` on out-of-range queues or negative
        weights.
        """
        for pl, q in pl_to_queue.items():
            if not 0 <= q < self.num_queues:
                raise TopologyError(
                    f"PL {pl} mapped to queue {q}, but port has "
                    f"{self.num_queues} queues"
                )
        new_weights = [0.0] * self.num_queues
        for q, w in weights.items():
            if not 0 <= q < self.num_queues:
                raise TopologyError(f"weight for unknown queue {q}")
            if w < 0:
                raise TopologyError(f"negative weight {w} for queue {q}")
            new_weights[q] = float(w)
        self._pl_to_queue = dict(pl_to_queue)
        self._weights = new_weights
        self.generation += 1

    def reset(self) -> None:
        """Return to the unprogrammed state (single effective queue)."""
        self._pl_to_queue = {}
        self._weights = [1.0] * self.num_queues
        self.default_queue = 0
        self.generation += 1

    def snapshot(self) -> Dict[str, object]:
        """The programmed state as plain data (for event records)."""
        return {
            "mapping": dict(self._pl_to_queue),
            "weights": list(self._weights),
            "default_queue": self.default_queue,
            "generation": self.generation,
        }

    def occupancy(self, pls: Iterable[Optional[int]]) -> Dict[int, int]:
        """Flows-per-queue histogram for the given priority levels."""
        counts: Dict[int, int] = {}
        for pl in pls:
            queue = self.queue_of(pl)
            counts[queue] = counts.get(queue, 0) + 1
        return counts


@dataclass
class OutputPort:
    """An output port: the egress side of one directed link."""

    link_id: str
    switch_id: str
    table: QueueTable = field(default_factory=QueueTable)


class Switch:
    """A switch with one weighted-queue table per output port.

    ``num_queues`` may differ between switches (Section 5.3.2 notes
    that "the number of queues in different switches varies"), which is
    why the PL-to-queue clustering must pick a hierarchy level per
    port.
    """

    def __init__(self, switch_id: str, num_queues: int = DEFAULT_NUM_QUEUES) -> None:
        self.switch_id = switch_id
        self.num_queues = num_queues
        self._ports: Dict[str, OutputPort] = {}

    def add_port(self, link_id: str) -> OutputPort:
        """Create the output port driving ``link_id``."""
        if link_id in self._ports:
            raise TopologyError(
                f"switch {self.switch_id}: duplicate port for {link_id}"
            )
        port = OutputPort(
            link_id=link_id,
            switch_id=self.switch_id,
            table=QueueTable(self.num_queues),
        )
        self._ports[link_id] = port
        return port

    def port(self, link_id: str) -> OutputPort:
        try:
            return self._ports[link_id]
        except KeyError:
            raise TopologyError(
                f"switch {self.switch_id} has no port for link {link_id}"
            ) from None

    @property
    def ports(self) -> Iterable[OutputPort]:
        return self._ports.values()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Switch({self.switch_id!r}, ports={len(self._ports)})"
