"""Flow-level (fluid) datacenter network simulator.

The simulator models the network as a graph of directed links with
capacities.  Active flows are assigned instantaneous rates by a
*scheduler* installed at every link (fair, weighted-fair, or
strict-priority), combined across the network by progressive
residual filling (:mod:`repro.simnet.fairness`).  A
discrete-event loop (:mod:`repro.simnet.engine`,
:mod:`repro.simnet.fabric`) advances time between flow completions and
user timers, which is exact for fluid flows because rates are piecewise
constant between events.
"""

from repro.simnet.engine import Simulator, Event
from repro.simnet.topology import Topology, fat_tree, single_switch, spine_leaf
from repro.simnet.links import Link
from repro.simnet.switch import Switch, OutputPort, QueueTable
from repro.simnet.flows import Flow
from repro.simnet.fairness import (
    FairScheduler,
    WFQScheduler,
    PriorityScheduler,
    max_min_rates,
    network_rates,
)
from repro.simnet.fabric import FluidFabric
from repro.simnet.ratelimit import TokenBucket
from repro.simnet.telemetry import UtilizationRecorder
from repro.simnet.packetsim import (
    DeficitRoundRobin,
    PortSimulator,
    StrictPriority,
)
from repro.simnet.trace import (
    FctSummary,
    cdf_points,
    flow_records,
    summarize_fct,
    write_csv,
    write_json,
)

__all__ = [
    "Simulator",
    "Event",
    "Topology",
    "single_switch",
    "spine_leaf",
    "fat_tree",
    "Link",
    "Switch",
    "OutputPort",
    "QueueTable",
    "Flow",
    "FairScheduler",
    "WFQScheduler",
    "PriorityScheduler",
    "max_min_rates",
    "network_rates",
    "FluidFabric",
    "TokenBucket",
    "UtilizationRecorder",
    "DeficitRoundRobin",
    "PortSimulator",
    "StrictPriority",
    "FctSummary",
    "cdf_points",
    "flow_records",
    "summarize_fct",
    "write_csv",
    "write_json",
]
