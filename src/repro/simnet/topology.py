"""Network topologies.

Two builders cover the paper's setups:

* :func:`single_switch` -- the 32-server testbed: every server hangs
  off one switch (Section 8.1, "NICs are interconnected via a Mellanox
  SX6036G").  Also used by the profiler's 8-server pod.
* :func:`spine_leaf` -- the simulated three-tier Clos: 54 spine, 102
  leaf and 108 top-of-rack switches with 18 servers per ToR, 1,944
  servers total (Section 8.1).  The builder is parametric so tests and
  benchmarks can run scaled-down instances with the same shape.

A :class:`Topology` owns nodes (servers and switches), directed links,
and the per-link :class:`~repro.simnet.links.LinkState`; it also knows
which switch drives each link so policies can find the queue table of
any output port.  Server NICs are modelled as single-queue output
ports of the server node.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import TopologyError
from repro.simnet.links import Link, LinkState
from repro.simnet.switch import Switch, QueueTable, DEFAULT_NUM_QUEUES
from repro.units import GBPS_56


class Topology:
    """A directed-graph view of the datacenter network."""

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self.servers: List[str] = []
        self.switches: Dict[str, Switch] = {}
        self.links: Dict[str, Link] = {}
        self.link_states: Dict[str, LinkState] = {}
        self._adjacency: Dict[str, List[str]] = {}
        #: link_id -> QueueTable of the port driving that link (server
        #: NIC ports included).
        self._port_tables: Dict[str, QueueTable] = {}
        #: Currently-down links (insertion order, for determinism).
        self._down_links: Dict[str, None] = {}
        #: Bumped on every mutation of the routable graph (link added,
        #: link up/down).  Consumers that cache derived routing state
        #: (:class:`repro.simnet.routing.Router`) compare it to detect
        #: unacknowledged staleness.
        self.generation = 0

    # -- construction ---------------------------------------------------

    def add_server(self, name: str) -> None:
        if name in self._adjacency:
            raise TopologyError(f"duplicate node {name!r}")
        self.servers.append(name)
        self._adjacency[name] = []

    def add_switch(self, name: str, num_queues: int = DEFAULT_NUM_QUEUES) -> Switch:
        if name in self._adjacency:
            raise TopologyError(f"duplicate node {name!r}")
        switch = Switch(name, num_queues=num_queues)
        self.switches[name] = switch
        self._adjacency[name] = []
        return switch

    def add_link(self, src: str, dst: str, capacity: float) -> Link:
        """Add a single directed link ``src -> dst``."""
        for node in (src, dst):
            if node not in self._adjacency:
                raise TopologyError(f"unknown node {node!r}")
        link_id = f"{src}->{dst}"
        if link_id in self.links:
            raise TopologyError(f"duplicate link {link_id}")
        link = Link(link_id=link_id, src=src, dst=dst, capacity=capacity)
        self.links[link_id] = link
        self.link_states[link_id] = LinkState(link=link)
        self._adjacency[src].append(dst)
        self.generation += 1
        if src in self.switches:
            port = self.switches[src].add_port(link_id)
            self._port_tables[link_id] = port.table
        else:
            # Server NIC egress: single logical port, full queue table
            # so host-side PL differentiation also works (InfiniBand
            # NICs implement VLs too).
            self._port_tables[link_id] = QueueTable(DEFAULT_NUM_QUEUES)
        return link

    def add_duplex(self, a: str, b: str, capacity: float) -> Tuple[Link, Link]:
        """Add both directions between ``a`` and ``b``."""
        return self.add_link(a, b, capacity), self.add_link(b, a, capacity)

    # -- dynamic link state ------------------------------------------------

    def set_link_up(self, link_id: str, up: bool = True) -> bool:
        """Transition one directed link up or down.

        Returns ``True`` if the state actually changed.  The link stays
        in the topology (its port table, queue programming and
        :class:`~repro.simnet.links.LinkState` survive the outage); it
        merely stops being routable -- :meth:`neighbors` hides the far
        end and :meth:`~repro.simnet.links.LinkState.effective_capacity`
        reports zero -- until it comes back.  Bumps :attr:`generation`
        so routers can detect the mutation.
        """
        state = self.link_states.get(link_id)
        if state is None:
            raise TopologyError(f"unknown link {link_id!r}")
        if state.up == up:
            return False
        state.up = up
        if up:
            self._down_links.pop(link_id, None)
        else:
            self._down_links[link_id] = None
        self.generation += 1
        return True

    def link_is_up(self, link_id: str) -> bool:
        state = self.link_states.get(link_id)
        if state is None:
            raise TopologyError(f"unknown link {link_id!r}")
        return state.up

    def down_links(self) -> List[str]:
        """Currently-down link ids, in the order they went down."""
        return list(self._down_links)

    # -- queries ----------------------------------------------------------

    def neighbors(self, node: str) -> List[str]:
        """Destinations reachable over *up* links out of ``node``.

        With no outages this is the construction-order adjacency list
        itself (zero overhead on the routing hot path); during an
        outage the down destinations are filtered out, preserving
        order, so BFS path enumeration stays deterministic.
        """
        try:
            base = self._adjacency[node]
        except KeyError:
            raise TopologyError(f"unknown node {node!r}") from None
        if not self._down_links:
            return base
        down = self._down_links
        return [dst for dst in base if f"{node}->{dst}" not in down]

    def has_node(self, node: str) -> bool:
        return node in self._adjacency

    def link(self, link_id: str) -> Link:
        try:
            return self.links[link_id]
        except KeyError:
            raise TopologyError(f"unknown link {link_id!r}") from None

    def port_table(self, link_id: str) -> QueueTable:
        """Queue table of the output port driving ``link_id``."""
        try:
            return self._port_tables[link_id]
        except KeyError:
            raise TopologyError(f"no port drives link {link_id!r}") from None

    def switch_of_link(self, link_id: str) -> Optional[Switch]:
        """Switch owning the port for ``link_id`` (None for server NICs)."""
        link = self.link(link_id)
        return self.switches.get(link.src)

    def nic_link(self, server: str) -> Link:
        """The server's single egress link (server -> first hop)."""
        if server not in self._adjacency:
            raise TopologyError(f"unknown server {server!r}")
        for dst in self._adjacency[server]:
            return self.links[f"{server}->{dst}"]
        raise TopologyError(f"server {server!r} has no egress link")

    def all_port_link_ids(self) -> Iterable[str]:
        """Link ids of every switch-driven output port."""
        return [
            lid for lid in self.links if self.links[lid].src in self.switches
        ]

    def set_uniform_throttle(self, servers: Iterable[str], fraction: float) -> None:
        """Throttle the NIC links (both directions) of ``servers``.

        This is the token-bucket rate-limiting step of the profiler
        (Section 7.1): the profiler "limits the bandwidth of NICs of
        all nodes to a certain percentage of link capacity".
        """
        for server in servers:
            nic = self.nic_link(server)
            self.link_states[nic.link_id].set_throttle(fraction)
            reverse = nic.reverse_id()
            if reverse in self.link_states:
                self.link_states[reverse].set_throttle(fraction)

    def clear_throttles(self) -> None:
        for state in self.link_states.values():
            state.throttle = 1.0


def single_switch(
    n_servers: int,
    capacity: float = GBPS_56,
    num_queues: int = DEFAULT_NUM_QUEUES,
    name: str = "testbed",
) -> Topology:
    """One switch with ``n_servers`` directly attached (the testbed).

    >>> topo = single_switch(4)
    >>> sorted(topo.servers)
    ['server0', 'server1', 'server2', 'server3']
    """
    if n_servers < 2:
        raise TopologyError("need at least two servers")
    topo = Topology(name=name)
    topo.add_switch("switch0", num_queues=num_queues)
    for i in range(n_servers):
        server = f"server{i}"
        topo.add_server(server)
        topo.add_duplex(server, "switch0", capacity)
    return topo


def fat_tree(
    k: int = 4,
    capacity: float = GBPS_56,
    num_queues: int = DEFAULT_NUM_QUEUES,
    name: str = "fat-tree",
) -> Topology:
    """A k-ary fat-tree (Al-Fares et al.): ``k`` pods of ``k/2`` edge
    and ``k/2`` aggregation switches, ``(k/2)^2`` core switches, and
    ``k^3/4`` servers.

    Not used by the paper's evaluation, but a standard datacenter
    fabric for exploring Saba on alternative topologies (it is fully
    rearrangeably non-blocking, unlike an oversubscribed spine-leaf).

    >>> topo = fat_tree(4)
    >>> len(topo.servers)
    16
    """
    if k < 2 or k % 2 != 0:
        raise TopologyError(f"fat-tree arity must be even and >= 2: {k}")
    topo = Topology(name=name)
    half = k // 2
    cores = [f"core{i}" for i in range(half * half)]
    for core in cores:
        topo.add_switch(core, num_queues=num_queues)
    server_index = 0
    for pod in range(k):
        edges = [f"pod{pod}-edge{e}" for e in range(half)]
        aggs = [f"pod{pod}-agg{a}" for a in range(half)]
        for sw in edges + aggs:
            topo.add_switch(sw, num_queues=num_queues)
        # Edge <-> aggregation full mesh within the pod.
        for edge in edges:
            for agg in aggs:
                topo.add_duplex(edge, agg, capacity)
        # Aggregation a connects to cores [a*half, (a+1)*half).
        for a, agg in enumerate(aggs):
            for j in range(half):
                topo.add_duplex(agg, cores[a * half + j], capacity)
        # Servers under each edge switch.
        for edge in edges:
            for _ in range(half):
                server = f"server{server_index}"
                server_index += 1
                topo.add_server(server)
                topo.add_duplex(server, edge, capacity)
    return topo


def spine_leaf(
    n_spine: int = 54,
    n_leaf: int = 102,
    n_tor: int = 108,
    servers_per_tor: int = 18,
    capacity: float = GBPS_56,
    num_queues: int = DEFAULT_NUM_QUEUES,
    name: str = "spine-leaf",
) -> Topology:
    """Three-tier spine/leaf/ToR Clos topology (Section 8.1).

    Defaults reproduce the paper's simulated cluster: 54 spine, 102
    leaf, 108 ToR switches and 18 servers per ToR = 1,944 servers.
    ToRs connect to every leaf in their pod and leaves connect to every
    spine; pods are formed by dividing ToRs evenly among leaves in
    round-robin blocks.

    All inter-switch links share the server link ``capacity``, matching
    the simulator configuration ("56Gbps link capacity per port").
    """
    if min(n_spine, n_leaf, n_tor, servers_per_tor) < 1:
        raise TopologyError("all tier sizes must be >= 1")
    topo = Topology(name=name)
    spines = [f"spine{i}" for i in range(n_spine)]
    leaves = [f"leaf{i}" for i in range(n_leaf)]
    tors = [f"tor{i}" for i in range(n_tor)]
    for sw in spines + leaves + tors:
        topo.add_switch(sw, num_queues=num_queues)
    # Leaf <-> spine full mesh.
    for leaf in leaves:
        for spine in spines:
            topo.add_duplex(leaf, spine, capacity)
    # Each ToR connects to a fixed fan-out of leaves, striped so the
    # leaf tier is evenly loaded regardless of the tier-size ratio.
    fanout = max(2, min(4, n_leaf))
    for t, tor in enumerate(tors):
        for j in range(fanout):
            leaf = leaves[(t + j * max(1, n_tor // fanout)) % n_leaf]
            try:
                topo.add_duplex(tor, leaf, capacity)
            except TopologyError:
                # Wrap-around collisions in tiny configurations: pick
                # the next free leaf deterministically.
                for step in range(1, n_leaf):
                    alt = leaves[(t + j + step) % n_leaf]
                    if f"{tor}->{alt}" not in topo.links:
                        topo.add_duplex(tor, alt, capacity)
                        break
    # Servers under each ToR.
    for t, tor in enumerate(tors):
        for s in range(servers_per_tor):
            server = f"server{t * servers_per_tor + s}"
            topo.add_server(server)
            topo.add_duplex(server, tor, capacity)
    return topo
