"""Flow abstraction for the fluid simulator.

A flow is a point-to-point transfer of a known number of bytes along a
fixed path of directed links.  Flows belong to an application (``app``)
and may carry a priority level (``pl``), which the active allocation
policy maps to a queue at each output port.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simnet.flowtable import FlowTable

_flow_ids = itertools.count()


def _next_flow_id() -> int:
    return next(_flow_ids)


def reset_flow_ids(start: int = 0) -> None:
    """Restart the process-global flow-id sequence.

    Flow ids seed the deterministic ECMP hash, so two runs assign the
    same flows the same paths only if their id sequences match.
    Experiment harnesses that compare runs bit-for-bit (the service
    experiment's zero-fault identity check) call this before each run;
    ids only need to be unique within one fabric, so resetting between
    independent runs is safe.
    """
    global _flow_ids
    _flow_ids = itertools.count(start)


@dataclass
class Flow:
    """A fluid flow.

    Attributes:
        src/dst: endpoint node names.
        size: total bytes to transfer.
        app: identifier of the owning application (``None`` for
            background traffic).
        pl: priority level carried in packet headers; assigned by the
            Saba library at connection-creation time.
        coflow: identifier of the owning coflow (used by Sincronia).
        rate_cap: application-limited sending rate in bytes/s (``None``
            for network-limited flows).  Real workloads such as
            PageRank emit shuffle traffic at the pace computation
            produces it rather than at line rate; the cap is how the
            fluid model expresses that, and schedulers redistribute the
            unused share (work conservation).
        aux_rate: non-network drain rate in bytes/s.  Real transfers
            have progress paths the NIC throttle does not touch --
            co-located partitions served from local disk, map-side
            spill files, compressed fallbacks -- so completion time
            *saturates* instead of growing like 1/bandwidth when the
            network gets very slow.  The auxiliary rate drains the
            flow's remaining bytes in addition to its network rate and
            consumes no link capacity.
        path: directed link ids from ``src`` to ``dst``; filled in by
            the fabric at start time via the router.

    Runtime state (``remaining``, ``rate``, ``last_update``) lives in
    instance attributes while the flow is standalone and in the
    fabric's :class:`~repro.simnet.flowtable.FlowTable` row while
    bound (from start to finish): the properties below transparently
    proxy whichever store is active, so policies and probes read the
    same numbers either way.  float64 rows round-trip Python floats
    exactly, so binding never perturbs a value.
    """

    src: str
    dst: str
    size: float
    app: Optional[str] = None
    pl: Optional[int] = None
    coflow: Optional[str] = None
    rate_cap: Optional[float] = None
    aux_rate: float = 0.0
    flow_id: int = field(default_factory=_next_flow_id)
    path: Sequence[str] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"flow {self.flow_id}: size must be > 0")
        if self.src == self.dst:
            raise ValueError(f"flow {self.flow_id}: src == dst ({self.src})")
        if self.rate_cap is not None and self.rate_cap <= 0:
            raise ValueError(f"flow {self.flow_id}: rate_cap must be > 0")
        if self.aux_rate < 0:
            raise ValueError(f"flow {self.flow_id}: aux_rate must be >= 0")
        # -- runtime state, managed by the fabric ----------------------
        self._remaining = float(self.size)
        self._rate = 0.0
        self._last_update = 0.0
        self._table: Optional["FlowTable"] = None
        self._slot = -1
        #: Fabric start-sequence number (-1 before the first start);
        #: the order key behind every "in start order" guarantee.
        self._seq = -1
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None

    # -- runtime state properties (table row when bound) ---------------

    @property
    def remaining(self) -> float:
        """Bytes still to deliver."""
        table = self._table
        if table is None:
            return self._remaining
        return float(table.remaining[self._slot])

    @remaining.setter
    def remaining(self, value: float) -> None:
        table = self._table
        if table is None:
            self._remaining = value
        else:
            table.remaining[self._slot] = value

    @property
    def rate(self) -> float:
        """Currently allocated network rate in bytes/s."""
        table = self._table
        if table is None:
            return self._rate
        return float(table.rate[self._slot])

    @rate.setter
    def rate(self, value: float) -> None:
        table = self._table
        if table is None:
            self._rate = value
        else:
            table.rate[self._slot] = value

    @property
    def last_update(self) -> float:
        """Simulated time at which ``remaining`` was last materialised.

        Rates are piecewise constant, so ``(rate, last_update,
        remaining)`` determines progress at any later instant; the
        fabric advances flows lazily via :meth:`sync` instead of
        touching every active flow on every event.
        """
        table = self._table
        if table is None:
            return self._last_update
        return float(table.last_update[self._slot])

    @last_update.setter
    def last_update(self, value: float) -> None:
        table = self._table
        if table is None:
            self._last_update = value
        else:
            table.last_update[self._slot] = value

    @property
    def demand_limit(self) -> float:
        """Sending-rate ceiling (inf for network-limited flows)."""
        return self.rate_cap if self.rate_cap is not None else float("inf")

    @property
    def done(self) -> bool:
        """True once all bytes have been delivered."""
        return self.remaining <= 0.0

    @property
    def duration(self) -> Optional[float]:
        """Completion latency, or ``None`` while in flight."""
        if self.start_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    @property
    def drain_rate(self) -> float:
        """Total progress rate: network share plus the auxiliary path."""
        return self.rate + self.aux_rate

    def advance(self, dt: float) -> None:
        """Drain ``drain_rate * dt`` bytes; clamps at zero."""
        if dt < 0:
            raise ValueError(f"negative dt: {dt}")
        self.remaining = max(0.0, self.remaining - self.drain_rate * dt)

    def sync(self, now: float) -> None:
        """Materialise ``remaining`` at simulated time ``now``.

        Must be called before the stored ``remaining`` is read or the
        rate changes.  A no-op when already synced at ``now``, so the
        eager per-event advance of component-unsafe policies composes
        with it.
        """
        if now != self.last_update:
            drain = self.drain_rate
            if drain > 0.0:
                self.remaining = max(
                    0.0, self.remaining - drain * (now - self.last_update)
                )
            self.last_update = now

    def time_to_finish(self) -> float:
        """Seconds until completion at the current rate (inf if stalled)."""
        if self.done:
            return 0.0
        if self.drain_rate <= 0.0:
            return float("inf")
        return self.remaining / self.drain_rate
