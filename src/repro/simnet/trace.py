"""Flow-trace export and summary statistics.

The fluid fabric keeps every completed :class:`~repro.simnet.flows.Flow`
with its start/finish times; this module turns that into analysable
records (dicts, CSV, JSON) and provides the small statistics toolkit
the benchmarks use (percentiles, CDF points, FCT summaries) --
flow-completion-time analysis being the lingua franca of the related
work the paper compares against (Homa, Sincronia, pFabric).
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.simnet.fabric import FluidFabric
from repro.simnet.flows import Flow

_FIELDS = (
    "flow_id", "app", "coflow", "pl", "src", "dst", "size",
    "start_time", "finish_time", "duration", "mean_rate",
)


def flow_record(flow: Flow) -> Dict[str, object]:
    """One completed flow as a plain record."""
    duration = flow.duration
    return {
        "flow_id": flow.flow_id,
        "app": flow.app,
        "coflow": flow.coflow,
        "pl": flow.pl,
        "src": flow.src,
        "dst": flow.dst,
        "size": flow.size,
        "start_time": flow.start_time,
        "finish_time": flow.finish_time,
        "duration": duration,
        "mean_rate": (flow.size / duration) if duration else None,
    }


def flow_records(fabric: FluidFabric) -> List[Dict[str, object]]:
    """Records for every flow the fabric has completed."""
    return [flow_record(f) for f in fabric.completed]


def write_csv(records: Iterable[Dict[str, object]],
              path: Union[str, Path]) -> int:
    """Write records to CSV; returns the row count."""
    records = list(records)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_FIELDS)
        writer.writeheader()
        for record in records:
            writer.writerow({k: record.get(k) for k in _FIELDS})
    return len(records)


def write_json(records: Iterable[Dict[str, object]],
               path: Union[str, Path]) -> int:
    records = list(records)
    Path(path).write_text(json.dumps(records, indent=2))
    return len(records)


def read_json(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Read a JSON trace back (inverse of :func:`write_json`)."""
    records = json.loads(Path(path).read_text())
    if not isinstance(records, list):
        raise ValueError(f"{path}: expected a JSON list of flow records")
    return records


def read_csv(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Read a trace back; numeric fields are parsed."""
    numeric = {"flow_id", "pl", "size", "start_time", "finish_time",
               "duration", "mean_rate"}
    out: List[Dict[str, object]] = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            parsed: Dict[str, object] = {}
            for key, value in row.items():
                if value == "" or value is None:
                    parsed[key] = None
                elif key in numeric:
                    parsed[key] = float(value)
                else:
                    parsed[key] = value
            out.append(parsed)
    return out


# -- statistics -----------------------------------------------------------


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        raise ValueError("percentile of no values")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100]: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def cdf_points(values: Sequence[float]) -> List[tuple]:
    """(value, cumulative fraction) pairs, as plotted in Figures 8b/12."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


@dataclass(frozen=True)
class FctSummary:
    """Flow-completion-time summary of a trace."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: float

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (
            f"n={self.count} mean={self.mean:.3f} p50={self.p50:.3f} "
            f"p90={self.p90:.3f} p99={self.p99:.3f} max={self.max:.3f}"
        )


def summarize_fct(
    records: Iterable[Dict[str, object]],
    app: Optional[str] = None,
) -> FctSummary:
    """FCT summary over a trace, optionally for one application."""
    durations = [
        float(r["duration"])
        for r in records
        if r.get("duration") is not None and (app is None or r.get("app") == app)
    ]
    if not durations:
        raise ValueError("no completed flows matched")
    return FctSummary(
        count=len(durations),
        mean=sum(durations) / len(durations),
        p50=percentile(durations, 50),
        p90=percentile(durations, 90),
        p99=percentile(durations, 99),
        max=max(durations),
    )
