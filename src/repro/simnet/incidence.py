"""Flow↔link incidence and congestion components.

The fabric keeps a persistent index of which flows traverse which
links, maintained on flow start/finish, instead of rebuilding
``on_link`` maps inside every solver call.  Transitive sharing of
links partitions the active flows into *congestion components*:
max-min, WFQ and strict-priority allocations all decompose exactly
over link-disjoint components (no capacity, queue or scheduler state
crosses a component boundary), so an event only requires re-solving
the component it disturbs.  DESIGN.md section 5d states the
decomposition argument and its exactness conditions.

Determinism: every ordering here derives from insertion order (flow
start order) or an explicit sort key -- never from hash-randomised
``set`` iteration over strings -- so runs reproduce across processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.simnet.flows import Flow


class FlowIncidence:
    """Persistent link -> {flow_id -> Flow} index of active flows.

    Per-link flow maps are insertion-ordered dicts, so iterating a
    link's flows visits them in start order -- the same order the
    solver sees, which keeps floating-point accumulation identical to
    a from-scratch build.
    """

    def __init__(self) -> None:
        self._by_link: Dict[str, Dict[int, Flow]] = {}

    def add(self, flow: Flow) -> None:
        """Index ``flow`` under every link of its path."""
        by_link = self._by_link
        for lid in flow.path:
            entry = by_link.get(lid)
            if entry is None:
                entry = by_link[lid] = {}
            entry[flow.flow_id] = flow

    def remove(self, flow: Flow) -> None:
        """Drop ``flow`` from every link of its path."""
        by_link = self._by_link
        for lid in flow.path:
            entry = by_link.get(lid)
            if entry is None:
                continue
            entry.pop(flow.flow_id, None)
            if not entry:
                del by_link[lid]

    def links(self) -> Iterable[str]:
        """Link ids currently carrying flows, in first-use order."""
        return self._by_link.keys()

    def flows_on(self, link_id: str) -> Iterable[Flow]:
        """Flows traversing ``link_id``, in start order."""
        entry = self._by_link.get(link_id)
        return entry.values() if entry is not None else ()

    def count(self, link_id: str) -> int:
        """Number of active flows on ``link_id``."""
        entry = self._by_link.get(link_id)
        return len(entry) if entry is not None else 0

    def components(
        self,
        seed_links: Iterable[str],
        order_key: Callable[[Flow], int],
    ) -> List[Tuple[List[Flow], List[str]]]:
        """Congestion components reachable from ``seed_links``.

        Breadth-first search over shared links; each component's flows
        are returned sorted by ``order_key`` (the fabric passes the
        flow start sequence, i.e. active-dict order) and components
        themselves are ordered by their earliest flow, so the result
        is independent of the seed set that discovered them.
        """
        by_link = self._by_link
        visited_links: set = set()
        visited_flows: set = set()
        components: List[Tuple[List[Flow], List[str]]] = []
        for seed in seed_links:
            if seed in visited_links or seed not in by_link:
                continue
            visited_links.add(seed)
            comp_flows: List[Flow] = []
            comp_links: List[str] = [seed]
            frontier = [seed]
            while frontier:
                lid = frontier.pop()
                for flow in by_link[lid].values():
                    fid = flow.flow_id
                    if fid in visited_flows:
                        continue
                    visited_flows.add(fid)
                    comp_flows.append(flow)
                    for other in flow.path:
                        if other not in visited_links:
                            visited_links.add(other)
                            comp_links.append(other)
                            frontier.append(other)
            comp_flows.sort(key=order_key)
            components.append((comp_flows, comp_links))
        components.sort(key=lambda c: order_key(c[0][0]))
        return components


def split_components(flows: Sequence[Flow]) -> List[List[Flow]]:
    """Partition ``flows`` into link-connected components.

    Union-find keyed by link id; within a component flows keep their
    input order, and components are ordered by their earliest member,
    so the full solve visits flows exactly as a joint build would.
    """
    n = len(flows)
    if n <= 1:
        return [list(flows)] if flows else []
    parent = list(range(n))

    def find(i: int) -> int:
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:
            parent[i], i = root, parent[i]
        return root

    owner_of_link: Dict[str, int] = {}
    for i, flow in enumerate(flows):
        for lid in flow.path:
            j = owner_of_link.setdefault(lid, i)
            if j == i:
                continue
            ri, rj = find(i), find(j)
            if ri != rj:
                # Root at the smaller index: component identity (and
                # hence output order) is first-member order.
                if ri < rj:
                    parent[rj] = ri
                else:
                    parent[ri] = rj
    groups: Dict[int, List[Flow]] = {}
    for i, flow in enumerate(flows):
        groups.setdefault(find(i), []).append(flow)
    return [groups[root] for root in sorted(groups)]


@dataclass
class BatchCSR:
    """Flat CSR-style incidence over a batch of congestion components.

    Components are concatenated flow- and link-contiguously, so every
    per-component reduction is a ``reduceat`` over contiguous
    segments.  The central array is the (link, flow) *pair* list in
    link-major order -- for each link, its member flows in the same
    order the object solver iterates them (``on_link`` order):

    * ``pair_flow[p]`` / ``pair_link[p]`` -- batch-wide flow / link
      index of pair ``p``.
    * ``link_starts`` -- index of each link's first pair (``reduceat``
      offsets for per-link segment reductions over pairs).
    * ``flow_perm`` / ``flow_starts`` -- a stable permutation grouping
      the same pairs by flow (each flow's path links contiguous), for
      per-flow reductions such as "minimum offer along the path".
    * ``comp_flow_starts`` / ``comp_link_starts`` -- segment offsets of
      each component inside the flow / link axes.

    Built once per solve; all per-round solver state lives in flat
    arrays indexed by these.
    """

    flows: List[Flow]
    link_ids: List[str]
    comp_of_flow: np.ndarray
    comp_of_link: np.ndarray
    comp_flow_starts: np.ndarray
    comp_link_starts: np.ndarray
    pair_flow: np.ndarray
    pair_link: np.ndarray
    link_starts: np.ndarray
    link_counts: np.ndarray
    flow_perm: np.ndarray
    flow_starts: np.ndarray
    flow_counts: np.ndarray

    @property
    def n_flows(self) -> int:
        return len(self.flows)

    @property
    def n_links(self) -> int:
        return len(self.link_ids)

    @property
    def n_pairs(self) -> int:
        return len(self.pair_flow)


def build_batch_csr(
    components: Sequence[Tuple[Sequence[Flow], Mapping[str, Sequence[Flow]]]],
) -> BatchCSR:
    """Flatten ``(flows, on_link)`` components into one :class:`BatchCSR`.

    ``on_link`` iteration order defines the link axis and each link's
    member order defines its pair segment, mirroring exactly what the
    object solver would see -- the kernels rely on this to reproduce
    its floating-point accumulation order.  Every component must be
    closed (each member's path links all present in its ``on_link``)
    and non-empty.
    """
    flows: List[Flow] = []
    link_ids: List[str] = []
    comp_of_flow: List[int] = []
    comp_of_link: List[int] = []
    comp_flow_starts: List[int] = []
    comp_link_starts: List[int] = []
    pair_flow: List[int] = []
    pair_link: List[int] = []
    link_starts: List[int] = []
    for ci, (comp_flows, on_link) in enumerate(components):
        comp_flow_starts.append(len(flows))
        comp_link_starts.append(len(link_ids))
        idx_of = {f.flow_id: len(flows) + i for i, f in enumerate(comp_flows)}
        flows.extend(comp_flows)
        comp_of_flow.extend([ci] * len(comp_flows))
        for lid, members in on_link.items():
            li = len(link_ids)
            link_ids.append(lid)
            comp_of_link.append(ci)
            link_starts.append(len(pair_flow))
            for f in members:
                pair_flow.append(idx_of[f.flow_id])
                pair_link.append(li)
    pf = np.asarray(pair_flow, dtype=np.int64)
    pl = np.asarray(pair_link, dtype=np.int64)
    starts = np.asarray(link_starts, dtype=np.int64)
    counts = np.diff(np.append(starts, len(pf)))
    # Stable sort by flow groups each flow's pairs contiguously while
    # preserving link-major order within a flow's segment.
    perm = np.argsort(pf, kind="stable")
    flow_counts = np.bincount(pf, minlength=len(flows)).astype(np.int64)
    flow_starts = np.concatenate(
        ([0], np.cumsum(flow_counts)[:-1])
    ).astype(np.int64)
    return BatchCSR(
        flows=flows,
        link_ids=link_ids,
        comp_of_flow=np.asarray(comp_of_flow, dtype=np.int64),
        comp_of_link=np.asarray(comp_of_link, dtype=np.int64),
        comp_flow_starts=np.asarray(comp_flow_starts, dtype=np.int64),
        comp_link_starts=np.asarray(comp_link_starts, dtype=np.int64),
        pair_flow=pf,
        pair_link=pl,
        link_starts=starts,
        link_counts=counts.astype(np.int64),
        flow_perm=perm,
        flow_starts=flow_starts,
        flow_counts=flow_counts,
    )
