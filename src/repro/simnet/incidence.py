"""Flow↔link incidence and congestion components.

The fabric keeps a persistent index of which flows traverse which
links, maintained on flow start/finish, instead of rebuilding
``on_link`` maps inside every solver call.  Transitive sharing of
links partitions the active flows into *congestion components*:
max-min, WFQ and strict-priority allocations all decompose exactly
over link-disjoint components (no capacity, queue or scheduler state
crosses a component boundary), so an event only requires re-solving
the component it disturbs.  DESIGN.md section 5d states the
decomposition argument and its exactness conditions.

Determinism: every ordering here derives from insertion order (flow
start order) or an explicit sort key -- never from hash-randomised
``set`` iteration over strings -- so runs reproduce across processes.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.simnet.flows import Flow


class FlowIncidence:
    """Persistent link -> {flow_id -> Flow} index of active flows.

    Per-link flow maps are insertion-ordered dicts, so iterating a
    link's flows visits them in start order -- the same order the
    solver sees, which keeps floating-point accumulation identical to
    a from-scratch build.
    """

    def __init__(self) -> None:
        self._by_link: Dict[str, Dict[int, Flow]] = {}

    def add(self, flow: Flow) -> None:
        """Index ``flow`` under every link of its path."""
        by_link = self._by_link
        for lid in flow.path:
            entry = by_link.get(lid)
            if entry is None:
                entry = by_link[lid] = {}
            entry[flow.flow_id] = flow

    def remove(self, flow: Flow) -> None:
        """Drop ``flow`` from every link of its path."""
        by_link = self._by_link
        for lid in flow.path:
            entry = by_link.get(lid)
            if entry is None:
                continue
            entry.pop(flow.flow_id, None)
            if not entry:
                del by_link[lid]

    def links(self) -> Iterable[str]:
        """Link ids currently carrying flows, in first-use order."""
        return self._by_link.keys()

    def flows_on(self, link_id: str) -> Iterable[Flow]:
        """Flows traversing ``link_id``, in start order."""
        entry = self._by_link.get(link_id)
        return entry.values() if entry is not None else ()

    def count(self, link_id: str) -> int:
        """Number of active flows on ``link_id``."""
        entry = self._by_link.get(link_id)
        return len(entry) if entry is not None else 0

    def components(
        self,
        seed_links: Iterable[str],
        order_key: Callable[[Flow], int],
    ) -> List[Tuple[List[Flow], List[str]]]:
        """Congestion components reachable from ``seed_links``.

        Breadth-first search over shared links; each component's flows
        are returned sorted by ``order_key`` (the fabric passes the
        flow start sequence, i.e. active-dict order) and components
        themselves are ordered by their earliest flow, so the result
        is independent of the seed set that discovered them.
        """
        by_link = self._by_link
        visited_links: set = set()
        visited_flows: set = set()
        components: List[Tuple[List[Flow], List[str]]] = []
        for seed in seed_links:
            if seed in visited_links or seed not in by_link:
                continue
            visited_links.add(seed)
            comp_flows: List[Flow] = []
            comp_links: List[str] = [seed]
            frontier = [seed]
            while frontier:
                lid = frontier.pop()
                for flow in by_link[lid].values():
                    fid = flow.flow_id
                    if fid in visited_flows:
                        continue
                    visited_flows.add(fid)
                    comp_flows.append(flow)
                    for other in flow.path:
                        if other not in visited_links:
                            visited_links.add(other)
                            comp_links.append(other)
                            frontier.append(other)
            comp_flows.sort(key=order_key)
            components.append((comp_flows, comp_links))
        components.sort(key=lambda c: order_key(c[0][0]))
        return components


def split_components(flows: Sequence[Flow]) -> List[List[Flow]]:
    """Partition ``flows`` into link-connected components.

    Union-find keyed by link id; within a component flows keep their
    input order, and components are ordered by their earliest member,
    so the full solve visits flows exactly as a joint build would.
    """
    n = len(flows)
    if n <= 1:
        return [list(flows)] if flows else []
    parent = list(range(n))

    def find(i: int) -> int:
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:
            parent[i], i = root, parent[i]
        return root

    owner_of_link: Dict[str, int] = {}
    for i, flow in enumerate(flows):
        for lid in flow.path:
            j = owner_of_link.setdefault(lid, i)
            if j == i:
                continue
            ri, rj = find(i), find(j)
            if ri != rj:
                # Root at the smaller index: component identity (and
                # hence output order) is first-member order.
                if ri < rj:
                    parent[rj] = ri
                else:
                    parent[ri] = rj
    groups: Dict[int, List[Flow]] = {}
    for i, flow in enumerate(flows):
        groups.setdefault(find(i), []).append(flow)
    return [groups[root] for root in sorted(groups)]
