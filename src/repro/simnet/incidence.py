"""Flow↔link incidence and congestion components.

The fabric keeps a persistent index of which flows traverse which
links, maintained on flow start/finish, instead of rebuilding
``on_link`` maps inside every solver call.  Transitive sharing of
links partitions the active flows into *congestion components*:
max-min, WFQ and strict-priority allocations all decompose exactly
over link-disjoint components (no capacity, queue or scheduler state
crosses a component boundary), so an event only requires re-solving
the component it disturbs.  DESIGN.md section 5d states the
decomposition argument and its exactness conditions.

Determinism: every ordering here derives from insertion order (flow
start order) or an explicit sort key -- never from hash-randomised
``set`` iteration over strings -- so runs reproduce across processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.simnet.flows import Flow

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simnet.flowtable import FlowTable


def _gather_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[starts[i], starts[i] + counts[i])`` index ranges.

    The batched-gather workhorse: turns per-segment (start, count)
    descriptors into one flat fancy index without a Python loop.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    return np.repeat(starts - offsets, counts) + np.arange(
        total, dtype=np.int64
    )


def _exclusive_cumsum(counts: np.ndarray) -> np.ndarray:
    out = np.zeros(len(counts), dtype=np.int64)
    if len(counts) > 1:
        np.cumsum(counts[:-1], out=out[1:])
    return out


class FlowIncidence:
    """Persistent link -> {flow_id -> Flow} index of active flows.

    Per-link flow maps are insertion-ordered dicts, so iterating a
    link's flows visits them in start order -- the same order the
    solver sees, which keeps floating-point accumulation identical to
    a from-scratch build.
    """

    def __init__(self) -> None:
        self._by_link: Dict[str, Dict[int, Flow]] = {}

    def add(self, flow: Flow) -> None:
        """Index ``flow`` under every link of its path."""
        by_link = self._by_link
        for lid in flow.path:
            entry = by_link.get(lid)
            if entry is None:
                entry = by_link[lid] = {}
            entry[flow.flow_id] = flow

    def remove(self, flow: Flow) -> None:
        """Drop ``flow`` from every link of its path."""
        by_link = self._by_link
        for lid in flow.path:
            entry = by_link.get(lid)
            if entry is None:
                continue
            entry.pop(flow.flow_id, None)
            if not entry:
                del by_link[lid]

    def links(self) -> Iterable[str]:
        """Link ids currently carrying flows, in first-use order."""
        return self._by_link.keys()

    def flows_on(self, link_id: str) -> Iterable[Flow]:
        """Flows traversing ``link_id``, in start order."""
        entry = self._by_link.get(link_id)
        return entry.values() if entry is not None else ()

    def count(self, link_id: str) -> int:
        """Number of active flows on ``link_id``."""
        entry = self._by_link.get(link_id)
        return len(entry) if entry is not None else 0

    def remap(self, slot_map: np.ndarray) -> None:
        """Flow-table slot renumbering: nothing to do here.

        The object index references flows by identity, not slot; the
        array-native index overrides this to translate its slot
        arrays.
        """

    def components(
        self,
        seed_links: Iterable[str],
        order_key: Callable[[Flow], int],
    ) -> List[Tuple[List[Flow], List[str]]]:
        """Congestion components reachable from ``seed_links``.

        Breadth-first search over shared links; each component's flows
        are returned sorted by ``order_key`` (the fabric passes the
        flow start sequence, i.e. active-dict order) and components
        themselves are ordered by their earliest flow, so the result
        is independent of the seed set that discovered them.
        """
        by_link = self._by_link
        visited_links: set = set()
        visited_flows: set = set()
        components: List[Tuple[List[Flow], List[str]]] = []
        for seed in seed_links:
            if seed in visited_links or seed not in by_link:
                continue
            visited_links.add(seed)
            comp_flows: List[Flow] = []
            comp_links: List[str] = [seed]
            frontier = [seed]
            while frontier:
                lid = frontier.pop()
                for flow in by_link[lid].values():
                    fid = flow.flow_id
                    if fid in visited_flows:
                        continue
                    visited_flows.add(fid)
                    comp_flows.append(flow)
                    for other in flow.path:
                        if other not in visited_links:
                            visited_links.add(other)
                            comp_links.append(other)
                            frontier.append(other)
            comp_flows.sort(key=order_key)
            components.append((comp_flows, comp_links))
        components.sort(key=lambda c: order_key(c[0][0]))
        return components


def split_components(flows: Sequence[Flow]) -> List[List[Flow]]:
    """Partition ``flows`` into link-connected components.

    Union-find keyed by link id; within a component flows keep their
    input order, and components are ordered by their earliest member,
    so the full solve visits flows exactly as a joint build would.
    """
    n = len(flows)
    if n <= 1:
        return [list(flows)] if flows else []
    parent = list(range(n))

    def find(i: int) -> int:
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:
            parent[i], i = root, parent[i]
        return root

    owner_of_link: Dict[str, int] = {}
    for i, flow in enumerate(flows):
        for lid in flow.path:
            j = owner_of_link.setdefault(lid, i)
            if j == i:
                continue
            ri, rj = find(i), find(j)
            if ri != rj:
                # Root at the smaller index: component identity (and
                # hence output order) is first-member order.
                if ri < rj:
                    parent[rj] = ri
                else:
                    parent[ri] = rj
    groups: Dict[int, List[Flow]] = {}
    for i, flow in enumerate(flows):
        groups.setdefault(find(i), []).append(flow)
    return [groups[root] for root in sorted(groups)]


@dataclass
class BatchCSR:
    """Flat CSR-style incidence over a batch of congestion components.

    Components are concatenated flow- and link-contiguously, so every
    per-component reduction is a ``reduceat`` over contiguous
    segments.  The central array is the (link, flow) *pair* list in
    link-major order -- for each link, its member flows in the same
    order the object solver iterates them (``on_link`` order):

    * ``pair_flow[p]`` / ``pair_link[p]`` -- batch-wide flow / link
      index of pair ``p``.
    * ``link_starts`` -- index of each link's first pair (``reduceat``
      offsets for per-link segment reductions over pairs).
    * ``flow_perm`` / ``flow_starts`` -- a stable permutation grouping
      the same pairs by flow (each flow's path links contiguous), for
      per-flow reductions such as "minimum offer along the path".
    * ``comp_flow_starts`` / ``comp_link_starts`` -- segment offsets of
      each component inside the flow / link axes.

    Built once per solve; all per-round solver state lives in flat
    arrays indexed by these.  ``flows`` / ``link_ids`` materialize the
    two axes as objects for the object-level ``flow_id -> rate``
    contract; the array-native incidence leaves them ``None`` (its
    callers work in slot/interned-link space throughout), so counts
    derive from the segment-offset arrays.
    """

    comp_of_flow: np.ndarray
    comp_of_link: np.ndarray
    comp_flow_starts: np.ndarray
    comp_link_starts: np.ndarray
    pair_flow: np.ndarray
    pair_link: np.ndarray
    link_starts: np.ndarray
    link_counts: np.ndarray
    flow_perm: np.ndarray
    flow_starts: np.ndarray
    flow_counts: np.ndarray
    flows: Optional[List[Flow]] = None
    link_ids: Optional[List[str]] = None

    @property
    def n_flows(self) -> int:
        return len(self.flow_counts)

    @property
    def n_links(self) -> int:
        return len(self.link_starts)

    @property
    def n_pairs(self) -> int:
        return len(self.pair_flow)


def build_batch_csr(
    components: Sequence[Tuple[Sequence[Flow], Mapping[str, Sequence[Flow]]]],
) -> BatchCSR:
    """Flatten ``(flows, on_link)`` components into one :class:`BatchCSR`.

    ``on_link`` iteration order defines the link axis and each link's
    member order defines its pair segment, mirroring exactly what the
    object solver would see -- the kernels rely on this to reproduce
    its floating-point accumulation order.  Every component must be
    closed (each member's path links all present in its ``on_link``)
    and non-empty.
    """
    flows: List[Flow] = []
    link_ids: List[str] = []
    comp_of_flow: List[int] = []
    comp_of_link: List[int] = []
    comp_flow_starts: List[int] = []
    comp_link_starts: List[int] = []
    pair_flow: List[int] = []
    pair_link: List[int] = []
    link_starts: List[int] = []
    for ci, (comp_flows, on_link) in enumerate(components):
        comp_flow_starts.append(len(flows))
        comp_link_starts.append(len(link_ids))
        idx_of = {f.flow_id: len(flows) + i for i, f in enumerate(comp_flows)}
        flows.extend(comp_flows)
        comp_of_flow.extend([ci] * len(comp_flows))
        for lid, members in on_link.items():
            li = len(link_ids)
            link_ids.append(lid)
            comp_of_link.append(ci)
            link_starts.append(len(pair_flow))
            for f in members:
                pair_flow.append(idx_of[f.flow_id])
                pair_link.append(li)
    pf = np.asarray(pair_flow, dtype=np.int64)
    pl = np.asarray(pair_link, dtype=np.int64)
    starts = np.asarray(link_starts, dtype=np.int64)
    counts = np.diff(np.append(starts, len(pf)))
    # Stable sort by flow groups each flow's pairs contiguously while
    # preserving link-major order within a flow's segment.
    perm = np.argsort(pf, kind="stable")
    flow_counts = np.bincount(pf, minlength=len(flows)).astype(np.int64)
    flow_starts = np.concatenate(
        ([0], np.cumsum(flow_counts)[:-1])
    ).astype(np.int64)
    return BatchCSR(
        flows=flows,
        link_ids=link_ids,
        comp_of_flow=np.asarray(comp_of_flow, dtype=np.int64),
        comp_of_link=np.asarray(comp_of_link, dtype=np.int64),
        comp_flow_starts=np.asarray(comp_flow_starts, dtype=np.int64),
        comp_link_starts=np.asarray(comp_link_starts, dtype=np.int64),
        pair_flow=pf,
        pair_link=pl,
        link_starts=starts,
        link_counts=counts.astype(np.int64),
        flow_perm=perm,
        flow_starts=flow_starts,
        flow_counts=flow_counts,
    )


@dataclass
class ComponentBatch:
    """Array-native congestion components discovered in one recompute.

    The flow axis is the concatenation of every discovered component's
    flows (components ordered by earliest flow, flows by start
    sequence within a component); ``slots`` maps it to
    :class:`~repro.simnet.flowtable.FlowTable` rows.  The link axis is
    in first-use order over the flow axis -- the order the object
    recompute path discovers links when it walks each flow's path --
    and ``link_axis`` maps it to the incidence's interned link ids.
    ``csr`` carries the same pair structure :func:`build_batch_csr`
    produces for the object components (``flows``/``link_ids`` left
    ``None``): link-major pairs with members in start order, so the
    kernels' accumulation order is unchanged.
    """

    csr: BatchCSR
    slots: np.ndarray
    link_axis: np.ndarray
    incidence: "ArrayIncidence"
    #: On a :meth:`select` sub-batch: indices into the parent batch's
    #: flow / link / pair axes (for gathering parent-axis side arrays
    #: such as capacities and discipline codes).  ``None`` on a batch
    #: fresh from discovery.
    parent_flow_idx: Optional[np.ndarray] = None
    parent_link_idx: Optional[np.ndarray] = None
    parent_pair_idx: Optional[np.ndarray] = None

    @property
    def n_comps(self) -> int:
        return len(self.csr.comp_flow_starts)

    def comp_flow_counts(self) -> np.ndarray:
        csr = self.csr
        return np.diff(np.append(csr.comp_flow_starts, csr.n_flows))

    def comp_link_counts(self) -> np.ndarray:
        csr = self.csr
        return np.diff(np.append(csr.comp_link_starts, csr.n_links))

    def padded_cells_per_comp(self) -> np.ndarray:
        """Per component: links x max members-per-link (kernel pad size)."""
        csr = self.csr
        if csr.n_links == 0:
            return np.zeros(self.n_comps, dtype=np.int64)
        max_members = np.maximum.reduceat(
            csr.link_counts, csr.comp_link_starts
        )
        return self.comp_link_counts() * max_members

    # -- object materialisation (spec extraction, object-solver comps) -----

    def flow_slice(self, ci: int) -> Tuple[int, int]:
        csr = self.csr
        start = int(csr.comp_flow_starts[ci])
        end = (
            int(csr.comp_flow_starts[ci + 1])
            if ci + 1 < len(csr.comp_flow_starts)
            else csr.n_flows
        )
        return start, end

    def link_slice(self, ci: int) -> Tuple[int, int]:
        csr = self.csr
        start = int(csr.comp_link_starts[ci])
        end = (
            int(csr.comp_link_starts[ci + 1])
            if ci + 1 < len(csr.comp_link_starts)
            else csr.n_links
        )
        return start, end

    def comp_flows(self, ci: int) -> List[Flow]:
        flow_of = self.incidence.table.flow_of
        start, end = self.flow_slice(ci)
        out: List[Flow] = []
        for slot in self.slots[start:end]:
            flow = flow_of[slot]
            assert flow is not None
            out.append(flow)
        return out

    def link_id(self, li: int) -> str:
        return self.incidence.link_ids[int(self.link_axis[li])]

    def comp_on_link(self, ci: int) -> Dict[str, List[Flow]]:
        """One component's ``link id -> members`` map, object order."""
        csr = self.csr
        flow_of = self.incidence.table.flow_of
        slots = self.slots
        ls, le = self.link_slice(ci)
        pe = np.append(csr.link_starts, csr.n_pairs)
        on_link: Dict[str, List[Flow]] = {}
        for li in range(ls, le):
            members: List[Flow] = []
            for p in range(int(pe[li]), int(pe[li + 1])):
                flow = flow_of[slots[csr.pair_flow[p]]]
                assert flow is not None
                members.append(flow)
            on_link[self.link_id(li)] = members
        return on_link

    def select(self, comp_idx: np.ndarray) -> "ComponentBatch":
        """A new batch containing only the given components (in order).

        Components are contiguous along every axis, so subsetting is a
        gather of index ranges plus a renumbering; pair order within
        each kept component is untouched.
        """
        csr = self.csr
        F, L, P = csr.n_flows, csr.n_links, csr.n_pairs
        fcounts = self.comp_flow_counts()
        lcounts = self.comp_link_counts()
        f_idx = _gather_ranges(
            csr.comp_flow_starts[comp_idx], fcounts[comp_idx]
        )
        l_idx = _gather_ranges(
            csr.comp_link_starts[comp_idx], lcounts[comp_idx]
        )
        pair_ends = np.append(csr.link_starts, P)
        comp_pair_starts = pair_ends[csr.comp_link_starts]
        comp_pair_counts = (
            pair_ends[np.append(csr.comp_link_starts[1:], L)]
            - comp_pair_starts
        )
        p_idx = _gather_ranges(
            comp_pair_starts[comp_idx], comp_pair_counts[comp_idx]
        )
        fmap = np.full(F, -1, dtype=np.int64)
        fmap[f_idx] = np.arange(len(f_idx), dtype=np.int64)
        lmap = np.full(L, -1, dtype=np.int64)
        lmap[l_idx] = np.arange(len(l_idx), dtype=np.int64)
        pair_flow = fmap[csr.pair_flow[p_idx]]
        pair_link = lmap[csr.pair_link[p_idx]]
        link_counts = csr.link_counts[l_idx]
        flow_counts = csr.flow_counts[f_idx]
        k = len(comp_idx)
        sub = BatchCSR(
            comp_of_flow=np.repeat(
                np.arange(k, dtype=np.int64), fcounts[comp_idx]
            ),
            comp_of_link=np.repeat(
                np.arange(k, dtype=np.int64), lcounts[comp_idx]
            ),
            comp_flow_starts=_exclusive_cumsum(fcounts[comp_idx]),
            comp_link_starts=_exclusive_cumsum(lcounts[comp_idx]),
            pair_flow=pair_flow,
            pair_link=pair_link,
            link_starts=_exclusive_cumsum(link_counts),
            link_counts=link_counts,
            flow_perm=np.argsort(pair_flow, kind="stable"),
            flow_starts=_exclusive_cumsum(flow_counts),
            flow_counts=flow_counts,
        )
        return ComponentBatch(
            csr=sub,
            slots=self.slots[f_idx],
            link_axis=self.link_axis[l_idx],
            incidence=self.incidence,
            parent_flow_idx=f_idx,
            parent_link_idx=l_idx,
            parent_pair_idx=p_idx,
        )


class ArrayIncidence:
    """Structure-of-arrays flow<->link index with batched discovery.

    The array-native twin of :class:`FlowIncidence`: the same add /
    remove / flows_on / count / components contract, but all state
    lives in flat numpy buffers keyed by interned link index and
    :class:`~repro.simnet.flowtable.FlowTable` slot, and component
    discovery (:meth:`batch`) is a stamped level-synchronous BFS plus
    a vectorized label propagation that emits kernel-ready
    :class:`ComponentBatch` views directly -- no per-flow Python in
    the hot path.

    Layout.  Per interned link, a segment of the flat adjacency
    buffers ``_adj_slot`` / ``_adj_k`` (member slot, and that member's
    path position for this link) described by ``_adj_start`` /
    ``_adj_count`` / ``_adj_cap``; segments are unsorted and removal
    is O(path) swap-remove.  Per table slot, a segment of
    ``_path_buf`` / ``_path_pos`` (interned path link, and the slot's
    current position inside that link's segment) described by
    ``_path_start`` / ``_path_len``.  The two ``_adj_k`` /
    ``_path_pos`` columns index *each other*, which is what makes
    swap-remove O(1) per pair: moving a link segment's tail entry
    into a hole updates exactly one ``_path_pos`` cell.  Both flat
    buffers are bump-allocated and repacked (amortised) once garbage
    from removals and segment relocations dominates.

    Ordering contract: paths are simple (no repeated link -- BFS
    shortest paths guarantee this) and every ordering exposed --
    members in start-sequence order, links in first-use order over
    seq-sorted flows, components by earliest flow -- matches what the
    object recompute path derives, so solver accumulation order and
    hence floating-point results are identical.
    """

    def __init__(self, table: "FlowTable") -> None:
        self.table = table
        self.link_ids: List[str] = []
        self._link_index: Dict[str, int] = {}
        # -- per interned link: adjacency segment descriptors ----------
        self._adj_start = np.zeros(64, dtype=np.int64)
        self._adj_count = np.zeros(64, dtype=np.int64)
        self._adj_cap = np.zeros(64, dtype=np.int64)
        self._link_stamp = np.zeros(64, dtype=np.int64)
        self._adj_slot = np.zeros(1024, dtype=np.int64)
        self._adj_k = np.zeros(1024, dtype=np.int64)
        self._adj_tail = 0
        self._adj_live_cap = 0
        self._pairs = 0
        # -- per table slot: path segment descriptors ------------------
        cap = max(16, table.capacity)
        self._path_start = np.zeros(cap, dtype=np.int64)
        self._path_len = np.zeros(cap, dtype=np.int64)
        self._slot_stamp = np.zeros(cap, dtype=np.int64)
        self._path_buf = np.zeros(1024, dtype=np.int64)
        self._path_pos = np.zeros(1024, dtype=np.int64)
        self._path_tail = 0
        self._path_live = 0
        self._round = 0

    # -- buffer management -------------------------------------------------

    def _sync_slots(self) -> None:
        """Grow per-slot arrays after the flow table expanded."""
        cap = self.table.capacity
        if cap <= len(self._path_start):
            return
        new = len(self._path_start)
        while new < cap:
            new *= 2
        for name in ("_path_start", "_path_len", "_slot_stamp"):
            arr: np.ndarray = getattr(self, name)
            grown = np.zeros(new, dtype=np.int64)
            grown[: len(arr)] = arr
            setattr(self, name, grown)

    def _compact_adj(self, extra: int = 0) -> None:
        """Repack adjacency segments densely (dropping garbage).

        Sized so live capacity plus the pending reservation occupies
        at most half the buffer -- the amortisation invariant that
        keeps add/remove O(1) amortised.
        """
        n_links = len(self.link_ids)
        starts = self._adj_start[:n_links]
        counts = self._adj_count[:n_links]
        caps = self._adj_cap[:n_links]
        new_starts = _exclusive_cumsum(caps)
        total = self._adj_live_cap
        size = max(1024, len(self._adj_slot))
        while size < 2 * (total + extra):
            size *= 2
        while size > 1024 and size >= 4 * (total + extra):
            size //= 2
        new_slot = np.zeros(size, dtype=np.int64)
        new_k = np.zeros(size, dtype=np.int64)
        src = _gather_ranges(starts, counts)
        dst = _gather_ranges(new_starts, counts)
        new_slot[dst] = self._adj_slot[src]
        new_k[dst] = self._adj_k[src]
        self._adj_slot = new_slot
        self._adj_k = new_k
        self._adj_start[:n_links] = new_starts
        self._adj_tail = int(total)

    def _ensure_adj(self, extra: int) -> None:
        if self._adj_tail + extra > len(self._adj_slot):
            self._compact_adj(extra)

    def _compact_path(self, extra: int = 0) -> None:
        """Repack live path segments densely (dropping garbage)."""
        n_slots = len(self._path_start)
        lens = self._path_len[:n_slots]
        live = np.nonzero(lens > 0)[0]
        counts = lens[live]
        new_starts = _exclusive_cumsum(counts)
        total = self._path_live
        size = max(1024, len(self._path_buf))
        while size < 2 * (total + extra):
            size *= 2
        while size > 1024 and size >= 4 * (total + extra):
            size //= 2
        new_buf = np.zeros(size, dtype=np.int64)
        new_pos = np.zeros(size, dtype=np.int64)
        src = _gather_ranges(self._path_start[live], counts)
        dst = _gather_ranges(new_starts, counts)
        new_buf[dst] = self._path_buf[src]
        new_pos[dst] = self._path_pos[src]
        self._path_buf = new_buf
        self._path_pos = new_pos
        self._path_start[live] = new_starts
        self._path_tail = int(total)

    def _ensure_path(self, extra: int) -> None:
        if self._path_tail + extra > len(self._path_buf):
            self._compact_path(extra)

    def _intern(self, lid: str) -> int:
        idx = self._link_index.get(lid)
        if idx is not None:
            return idx
        idx = len(self.link_ids)
        self._link_index[lid] = idx
        self.link_ids.append(lid)
        if idx >= len(self._adj_start):
            new = 2 * len(self._adj_start)
            for name in (
                "_adj_start", "_adj_count", "_adj_cap", "_link_stamp"
            ):
                arr: np.ndarray = getattr(self, name)
                grown = np.zeros(new, dtype=np.int64)
                grown[: len(arr)] = arr
                setattr(self, name, grown)
        self._ensure_adj(4)
        self._adj_start[idx] = self._adj_tail
        self._adj_count[idx] = 0
        self._adj_cap[idx] = 4
        self._adj_tail += 4
        self._adj_live_cap += 4
        return idx

    def _grow_segment(self, li: int) -> None:
        """Relocate a full link segment to the tail at double capacity."""
        cap = int(self._adj_cap[li])
        new_cap = 2 * cap
        self._ensure_adj(new_cap)
        start = int(self._adj_start[li])
        count = int(self._adj_count[li])
        new_start = self._adj_tail
        self._adj_slot[new_start : new_start + count] = self._adj_slot[
            start : start + count
        ]
        self._adj_k[new_start : new_start + count] = self._adj_k[
            start : start + count
        ]
        self._adj_start[li] = new_start
        self._adj_cap[li] = new_cap
        self._adj_tail += new_cap
        self._adj_live_cap += new_cap - cap

    # -- FlowIncidence contract --------------------------------------------

    def add(self, flow: Flow) -> None:
        """Index a table-bound flow under every link of its path."""
        slot = flow._slot
        if slot < 0:
            raise ValueError(
                f"flow {flow.flow_id} must be table-bound before indexing"
            )
        if self.table.capacity > len(self._path_start):
            self._sync_slots()
        if self._path_len[slot] != 0:
            self.remove(flow)
        path = flow.path
        k_len = len(path)
        if k_len == 0:
            return
        self._ensure_path(k_len)
        ps = self._path_tail
        path_buf = self._path_buf
        path_pos = self._path_pos
        # Localised hot loop: numpy scalar indexing through ``self.``
        # attribute chains dominates add() at hyperscale.  The locals
        # must be re-fetched after _intern/_grow_segment, either of
        # which can compact or reallocate the adjacency buffers.
        link_get = self._link_index.get
        adj_start = self._adj_start
        adj_count = self._adj_count
        adj_cap = self._adj_cap
        adj_slot = self._adj_slot
        adj_k = self._adj_k
        for k, lid in enumerate(path):
            li = link_get(lid)
            if li is None:
                li = self._intern(lid)
                link_get = self._link_index.get
                adj_start = self._adj_start
                adj_count = self._adj_count
                adj_cap = self._adj_cap
                adj_slot = self._adj_slot
                adj_k = self._adj_k
            cnt = int(adj_count[li])
            if cnt == adj_cap[li]:
                self._grow_segment(li)
                adj_start = self._adj_start
                adj_slot = self._adj_slot
                adj_k = self._adj_k
            pos = int(adj_start[li]) + cnt
            adj_slot[pos] = slot
            adj_k[pos] = k
            adj_count[li] = cnt + 1
            path_buf[ps + k] = li
            path_pos[ps + k] = cnt
        self._path_start[slot] = ps
        self._path_len[slot] = k_len
        self._path_tail = ps + k_len
        self._path_live += k_len
        self._pairs += k_len

    def remove(self, flow: Flow) -> None:
        """Drop a flow from every link of its (indexed) path.

        Uses the path as indexed at add time, so callers may mutate
        ``flow.path`` after removal (reroute) without confusing the
        index.  Idempotent, like the object implementation.
        """
        slot = flow._slot
        if slot < 0 or slot >= len(self._path_len):
            return
        k_len = int(self._path_len[slot])
        if k_len == 0:
            return
        ps = int(self._path_start[slot])
        adj_start = self._adj_start
        adj_count = self._adj_count
        adj_slot = self._adj_slot
        adj_k = self._adj_k
        path_buf = self._path_buf
        path_pos = self._path_pos
        path_start = self._path_start
        for k in range(ps, ps + k_len):
            li = int(path_buf[k])
            p = int(path_pos[k])
            start = int(adj_start[li])
            last = int(adj_count[li]) - 1
            adj_count[li] = last
            if p != last:
                moved_slot = int(adj_slot[start + last])
                moved_k = int(adj_k[start + last])
                adj_slot[start + p] = moved_slot
                adj_k[start + p] = moved_k
                path_pos[path_start[moved_slot] + moved_k] = p
        self._path_len[slot] = 0
        self._path_live -= k_len
        self._pairs -= k_len

    def links(self) -> List[str]:
        """Link ids currently carrying flows, in first-interned order.

        Note: first-*interned* order (first use ever), not the object
        index's first-use-among-current-flows order.  Only consumed as
        a full-solve seed set, where discovery order does not affect
        the result (components are ordered by earliest flow).
        """
        counts = self._adj_count
        return [
            lid
            for li, lid in enumerate(self.link_ids)
            if counts[li] > 0
        ]

    def flows_on(self, link_id: str) -> List[Flow]:
        """Flows traversing ``link_id``, in start order."""
        li = self._link_index.get(link_id)
        if li is None:
            return []
        count = int(self._adj_count[li])
        if count == 0:
            return []
        start = int(self._adj_start[li])
        slots = self._adj_slot[start : start + count]
        order = np.argsort(self.table.seq[slots])
        flow_of = self.table.flow_of
        out: List[Flow] = []
        for slot in slots[order]:
            flow = flow_of[slot]
            assert flow is not None
            out.append(flow)
        return out

    def count(self, link_id: str) -> int:
        """Number of active flows on ``link_id``."""
        li = self._link_index.get(link_id)
        return int(self._adj_count[li]) if li is not None else 0

    def remap(self, slot_map: np.ndarray) -> None:
        """Translate all slot references after a table compaction."""
        n_links = len(self.link_ids)
        live = _gather_ranges(
            self._adj_start[:n_links], self._adj_count[:n_links]
        )
        if live.size:
            self._adj_slot[live] = slot_map[self._adj_slot[live]]
        new_cap = max(16, self.table.capacity)
        new_start = np.zeros(new_cap, dtype=np.int64)
        new_len = np.zeros(new_cap, dtype=np.int64)
        old = np.nonzero(self._path_len[: len(slot_map)] > 0)[0]
        if old.size:
            tgt = slot_map[old]
            keep = tgt >= 0
            old, tgt = old[keep], tgt[keep]
            new_start[tgt] = self._path_start[old]
            new_len[tgt] = self._path_len[old]
        self._path_start = new_start
        self._path_len = new_len
        self._slot_stamp = np.zeros(new_cap, dtype=np.int64)

    def components(
        self,
        seed_links: Iterable[str],
        order_key: Callable[[Flow], int],
    ) -> List[Tuple[List[Flow], List[str]]]:
        """Object-materialised components; see :meth:`batch`.

        Same contract as :meth:`FlowIncidence.components` (flows in
        start order, components by earliest flow); ``order_key`` is
        accepted for interface parity but the start sequence is built
        into the array ordering.  Component link lists come out in
        first-use order rather than BFS discovery order -- callers
        treat them as a set.
        """
        del order_key
        batch = self.batch(list(seed_links))
        if batch is None:
            return []
        out: List[Tuple[List[Flow], List[str]]] = []
        for ci in range(batch.n_comps):
            ls, le = batch.link_slice(ci)
            out.append(
                (
                    batch.comp_flows(ci),
                    [batch.link_id(li) for li in range(ls, le)],
                )
            )
        return out

    # -- batched component discovery ---------------------------------------

    def batch(
        self, seed_links: Optional[Sequence[str]] = None
    ) -> Optional[ComponentBatch]:
        """Discover components reachable from ``seed_links`` as arrays.

        ``None`` seeds the search with every populated link (a full
        solve).  Returns ``None`` when nothing is reachable.  The
        traversal is a level-synchronous BFS over the whole seed set
        at once -- alternating a gather of member slots from frontier
        links with a gather of path links from frontier slots, each
        deduplicated with a round-stamped visit mark -- followed by a
        min-label propagation that splits the visited flows into
        connected components without any per-flow Python.
        """
        n_links = len(self.link_ids)
        adj_start = self._adj_start
        adj_count = self._adj_count
        adj_slot = self._adj_slot
        path_start = self._path_start
        path_len = self._path_len
        path_buf = self._path_buf
        if seed_links is None:
            frontier = np.nonzero(adj_count[:n_links] > 0)[0]
        else:
            index = self._link_index
            seen: List[int] = []
            for lid in seed_links:
                li = index.get(lid)
                if li is not None and adj_count[li] > 0:
                    seen.append(li)
            frontier = np.asarray(sorted(set(seen)), dtype=np.int64)
        if frontier.size == 0:
            return None
        self._round += 1
        rnd = self._round
        link_stamp = self._link_stamp
        slot_stamp = self._slot_stamp
        link_stamp[frontier] = rnd
        slot_parts: List[np.ndarray] = []
        while frontier.size:
            member_idx = _gather_ranges(
                adj_start[frontier], adj_count[frontier]
            )
            cand = adj_slot[member_idx]
            cand = cand[slot_stamp[cand] != rnd]
            if cand.size == 0:
                break
            cand = np.unique(cand)
            slot_stamp[cand] = rnd
            slot_parts.append(cand)
            link_idx = _gather_ranges(path_start[cand], path_len[cand])
            nxt = path_buf[link_idx]
            nxt = nxt[link_stamp[nxt] != rnd]
            if nxt.size == 0:
                break
            nxt = np.unique(nxt)
            link_stamp[nxt] = rnd
            frontier = nxt
        if not slot_parts:
            return None
        slots = np.concatenate(slot_parts)
        # Flow axis: start-sequence order (seq values are unique).
        slots = slots[np.argsort(self.table.seq[slots])]
        n_f = len(slots)
        lens = path_len[slots]
        fp_starts = _exclusive_cumsum(lens)
        pair_gl = path_buf[_gather_ranges(path_start[slots], lens)]
        pair_fl = np.repeat(np.arange(n_f, dtype=np.int64), lens)
        # Min-label propagation: initial labels are seq ranks, so a
        # component's fixpoint label is its earliest flow's rank and
        # np.unique below orders components by earliest flow for free.
        u_links, inv = np.unique(pair_gl, return_inverse=True)
        n_l = len(u_links)
        lorder = np.argsort(inv, kind="stable")
        lm_flow = pair_fl[lorder]
        seg_starts = _exclusive_cumsum(
            np.bincount(inv, minlength=n_l).astype(np.int64)
        )
        lab = np.arange(n_f, dtype=np.int64)
        while True:
            lab_link = np.minimum.reduceat(lab[lm_flow], seg_starts)
            cand_lab = np.minimum.reduceat(lab_link[inv], fp_starts)
            new_lab = np.minimum(lab, cand_lab)
            if np.array_equal(new_lab, lab):
                break
            lab = new_lab
        labels, comp_of_flow = np.unique(lab, return_inverse=True)
        comp_of_flow = comp_of_flow.astype(np.int64)
        n_comps = len(labels)
        if n_comps > 1:
            # Regroup the flow axis component-contiguously (stable, so
            # seq order survives within each component) and regather
            # the flow-major pair arrays for the final order.
            forder = np.argsort(comp_of_flow, kind="stable")
            slots = slots[forder]
            comp_of_flow = comp_of_flow[forder]
            lens = lens[forder]
            fp_starts = _exclusive_cumsum(lens)
            pair_gl = path_buf[_gather_ranges(path_start[slots], lens)]
            pair_fl = np.repeat(np.arange(n_f, dtype=np.int64), lens)
        comp_flow_counts = np.bincount(
            comp_of_flow, minlength=n_comps
        ).astype(np.int64)
        # Link axis: first use over the (component-major, seq-sorted)
        # flow axis -- exactly the order the object path discovers
        # links when building on_link.
        u2, first_idx, inv2 = np.unique(
            pair_gl, return_index=True, return_inverse=True
        )
        axis_order = np.argsort(first_idx)
        rank_of_u = np.empty(n_l, dtype=np.int64)
        rank_of_u[axis_order] = np.arange(n_l, dtype=np.int64)
        pair_rank = rank_of_u[inv2]
        link_axis = u2[axis_order]
        comp_of_link = comp_of_flow[pair_fl[first_idx[axis_order]]]
        comp_link_counts = np.bincount(
            comp_of_link, minlength=n_comps
        ).astype(np.int64)
        # Link-major pairs: stable sort by link rank keeps members in
        # flow (start) order within each link's segment.
        qorder = np.argsort(pair_rank, kind="stable")
        pair_flow = pair_fl[qorder]
        pair_link = pair_rank[qorder]
        link_counts = np.bincount(pair_rank, minlength=n_l).astype(
            np.int64
        )
        csr = BatchCSR(
            comp_of_flow=comp_of_flow,
            comp_of_link=comp_of_link,
            comp_flow_starts=_exclusive_cumsum(comp_flow_counts),
            comp_link_starts=_exclusive_cumsum(comp_link_counts),
            pair_flow=pair_flow,
            pair_link=pair_link,
            link_starts=_exclusive_cumsum(link_counts),
            link_counts=link_counts,
            flow_perm=np.argsort(pair_flow, kind="stable"),
            flow_starts=fp_starts,
            flow_counts=lens.astype(np.int64),
        )
        return ComponentBatch(
            csr=csr, slots=slots, link_axis=link_axis, incidence=self
        )
