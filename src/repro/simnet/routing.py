"""Routing: shortest paths with deterministic ECMP.

The controller "gets the forwarding tables of switches in the network
to detect the path of each connection" (Section 7.2); here the router
*is* the forwarding state.  Paths are computed by breadth-first search
over the directed topology graph; when several shortest paths exist
(the spine tier), one is selected by a stable hash of the flow id, so
a given flow always takes the same path -- matching per-flow ECMP.

Results are cached per ``(src, dst)`` pair: the set of equal-cost
paths is computed once, and each flow indexes into it.  The cache is
kept honest under topology mutation two ways:

* callers that mutate the graph (``FluidFabric.set_link_state``) call
  :meth:`Router.invalidate` -- targeted by link ids after a link goes
  *down* (only pairs whose cached paths traverse it can change), full
  after a link comes *up* (any pair may gain equal-cost paths);
* as a safety net, the router compares the topology's
  ``generation`` counter on every lookup and performs a full
  invalidation if the graph changed without an explicit call, so a
  mutated topology can never serve stale paths.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import RoutingError
from repro.simnet.topology import Topology


def _stable_hash(value: int) -> int:
    """Deterministic across processes (``hash()`` is salted for str)."""
    digest = hashlib.blake2b(str(value).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class _IntGraph:
    """Interned adjacency snapshot of a topology at one generation.

    BFS over string-keyed dicts costs tens of microseconds per lookup
    chain; at hyperscale every flow pair is a fresh ``(src, dst)`` so
    the path cache never amortises it.  This snapshot assigns every
    node a dense integer, copies the (up-link filtered) adjacency into
    integer lists in the exact order ``Topology.neighbors`` yields,
    and keeps stamped visit/distance scratch arrays so a BFS allocates
    almost nothing.  Any topology mutation bumps ``generation`` and
    the router rebuilds the snapshot lazily.
    """

    def __init__(self, topology: Topology) -> None:
        self.generation = topology.generation
        adjacency = topology._adjacency
        names: List[str] = list(adjacency)
        index: Dict[str, int] = {name: i for i, name in enumerate(names)}
        self.names = names
        self.index = index
        # neighbors() applies the down-link filter while preserving
        # construction order -- the order the string BFS enumerates,
        # which the ECMP hash-index selection depends on.
        self.adj: List[List[int]] = [
            [index[dst] for dst in topology.neighbors(name)]
            for name in names
        ]
        #: Set form of ``adj`` for O(1) membership (the BFS dst test
        #: and the distance-<=2 fast path).
        self.adj_set: List[Set[int]] = [set(nbrs) for nbrs in self.adj]
        # Pre-rendered link-id strings per directed edge: building
        # ``f"{a}->{b}"`` per hop per path costs microseconds per flow
        # at hyperscale, for strings that never change within a
        # generation.
        self.edge_name: List[Dict[int, str]] = [
            {b: f"{names[a]}->{names[b]}" for b in nbrs}
            for a, nbrs in enumerate(self.adj)
        ]
        n = len(names)
        #: BFS scratch, reused across calls via the round stamp.
        self.stamp = [0] * n
        self.dist = [0] * n
        self.preds: List[List[int]] = [[] for _ in range(n)]
        self.round = 0


class Router:
    """Shortest-path ECMP router over a :class:`Topology`."""

    def __init__(self, topology: Topology, max_equal_paths: int = 8) -> None:
        self.topology = topology
        self.max_equal_paths = max_equal_paths
        self._cache: Dict[Tuple[str, str], List[List[str]]] = {}
        #: Bumped on every invalidation; callers caching per-flow path
        #: choices can compare it instead of the paths themselves.
        self.generation = 0
        self._topo_generation = topology.generation
        self._igraph: Optional[_IntGraph] = None

    def invalidate(self, link_ids: Optional[Iterable[str]] = None) -> int:
        """Drop cached equal-cost path sets; returns how many.

        With ``link_ids``, only ``(src, dst)`` pairs whose cached
        paths traverse one of those links are dropped -- sufficient
        (and exact) for links going *down*, since removing a link
        cannot change the shortest-path set of any pair that avoided
        it.  The affected keys are found by scanning the cache: link
        faults are orders of magnitude rarer than path lookups, so one
        O(cache) sweep per fault beats maintaining a link->keys
        reverse index on every cache fill (which dominated routing
        cost at hyperscale).  Without arguments the whole cache is
        cleared; required for additive mutations (link up, link added)
        where any pair may gain paths.  Either form acknowledges the
        topology's current ``generation`` and bumps the router's own.
        """
        self.generation += 1
        self._topo_generation = self.topology.generation
        if link_ids is None:
            dropped = len(self._cache)
            self._cache.clear()
            return dropped
        targets = set(link_ids)
        doomed = [
            key
            for key, paths in self._cache.items()
            if any(lid in targets for path in paths for lid in path)
        ]
        for key in doomed:
            del self._cache[key]
        return len(doomed)

    def equal_cost_paths(self, src: str, dst: str) -> List[List[str]]:
        """All (up to ``max_equal_paths``) shortest paths, as link-id lists."""
        if self._topo_generation != self.topology.generation:
            # The graph changed and nobody told us: never serve stale
            # paths (the pre-invalidation cache had exactly this bug).
            self.invalidate()
        key = (src, dst)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        paths = self._bfs_paths(src, dst)
        if not paths:
            raise RoutingError(f"no route from {src!r} to {dst!r}")
        self._cache[key] = paths
        return paths

    def path_for_flow(self, src: str, dst: str, flow_id: int) -> List[str]:
        """The ECMP-selected shortest path for one flow."""
        paths = self.equal_cost_paths(src, dst)
        if len(paths) == 1:
            # Any hash mod 1 is 0 -- skipping the blake2b digest for
            # unique-shortest-path pairs is exact, not an approximation.
            return paths[0]
        index = _stable_hash(flow_id) % len(paths)
        return paths[index]

    def _graph(self) -> _IntGraph:
        """The interned snapshot for the topology's current generation."""
        graph = self._igraph
        if graph is None or graph.generation != self.topology.generation:
            graph = self._igraph = _IntGraph(self.topology)
        return graph

    def _bfs_paths(self, src: str, dst: str) -> List[List[str]]:
        """Enumerate shortest node-paths via BFS levels, then convert to links.

        Runs on the interned integer graph; visit order, predecessor
        lists and the backtrack enumeration replicate the string BFS
        exactly, so the equal-cost path *order* (and hence every ECMP
        hash selection) is unchanged.
        """
        topo = self.topology
        if not topo.has_node(src):
            raise RoutingError(f"unknown source {src!r}")
        if not topo.has_node(dst):
            raise RoutingError(f"unknown destination {dst!r}")
        if src == dst:
            raise RoutingError("src == dst")
        graph = self._graph()
        si = graph.index[src]
        di = graph.index[dst]
        adj_set = graph.adj_set
        edge_name = graph.edge_name
        # Distance <= 2 fast path.  Most datacenter pairs are short
        # (rack-local traffic is one ToR hop), and at hyperscale every
        # flow is a fresh (src, dst) pair, so skipping the BFS
        # machinery for them dominates routing cost.  Exact: a direct
        # edge is the unique shortest path, and the two-hop
        # enumeration scans ``adj[src]`` in the same order BFS
        # accumulates dst's predecessors, so the path list (and every
        # ECMP hash selection) is identical to the full search.
        if di in adj_set[si]:
            return [[edge_name[si][di]]]
        mids = [n for n in graph.adj[si] if di in adj_set[n]]
        if mids:
            return [
                [edge_name[si][m], edge_name[m][di]]
                for m in mids[: self.max_equal_paths]
            ]
        graph.round += 1
        rnd = graph.round
        stamp = graph.stamp
        dist = graph.dist
        preds = graph.preds
        adj = graph.adj
        # BFS recording predecessor lists at the shortest level.
        stamp[si] = rnd
        dist[si] = 0
        frontier = [si]
        head = 0
        found_level = -1
        while head < len(frontier):
            node = frontier[head]
            head += 1
            d_node = dist[node]
            if found_level >= 0 and d_node >= found_level:
                break
            d_next = d_node + 1
            if found_level >= 0:
                # dst is already discovered at ``d_next``: nodes not
                # yet stamped sit at ``found_level`` or deeper and
                # cannot lie on a shortest path to dst, so the only
                # update that still matters is extending dst's own
                # predecessor list.  Appends happen in the same
                # frontier order as the full scan, so the equal-cost
                # path enumeration (and every ECMP hash selection) is
                # unchanged.
                if di in adj_set[node]:
                    preds[di].append(node)
                continue
            for nxt in adj[node]:
                if stamp[nxt] != rnd:
                    if found_level >= 0:
                        # dst was discovered earlier in this same
                        # scan; see above.
                        continue
                    stamp[nxt] = rnd
                    dist[nxt] = d_next
                    preds[nxt] = [node]
                    if nxt == di:
                        found_level = d_next
                    frontier.append(nxt)
                elif dist[nxt] == d_next:
                    preds[nxt].append(node)
        if stamp[di] != rnd:
            return []
        # Walk predecessor DAG back from dst, capped at max_equal_paths.
        node_paths: List[List[int]] = []
        max_paths = self.max_equal_paths

        def backtrack(node: int, suffix: List[int]) -> None:
            # Follow single-predecessor chain segments iteratively --
            # at hyperscale most hops are unique, so this fast path
            # turns the per-hop recursion into a tight loop.  A single
            # chain yields exactly one path, in the same position the
            # recursive enumeration would emit it.
            while node != si:
                ps = preds[node]
                if len(ps) != 1:
                    break
                suffix = [node] + suffix
                node = ps[0]
            if len(node_paths) >= max_paths:
                return
            if node == si:
                node_paths.append([si] + suffix)
                return
            for pred in preds[node]:
                backtrack(pred, [node] + suffix)

        backtrack(di, [])
        edge_name = graph.edge_name
        link_paths = []
        for nodes in node_paths:
            link_paths.append(
                [edge_name[a][b] for a, b in zip(nodes, nodes[1:])]
            )
        return link_paths
