"""Routing: shortest paths with deterministic ECMP.

The controller "gets the forwarding tables of switches in the network
to detect the path of each connection" (Section 7.2); here the router
*is* the forwarding state.  Paths are computed by breadth-first search
over the directed topology graph; when several shortest paths exist
(the spine tier), one is selected by a stable hash of the flow id, so
a given flow always takes the same path -- matching per-flow ECMP.

Results are cached per ``(src, dst)`` pair: the set of equal-cost
paths is computed once, and each flow indexes into it.  The cache is
kept honest under topology mutation two ways:

* callers that mutate the graph (``FluidFabric.set_link_state``) call
  :meth:`Router.invalidate` -- targeted by link ids after a link goes
  *down* (only pairs whose cached paths traverse it can change), full
  after a link comes *up* (any pair may gain equal-cost paths);
* as a safety net, the router compares the topology's
  ``generation`` counter on every lookup and performs a full
  invalidation if the graph changed without an explicit call, so a
  mutated topology can never serve stale paths.
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import RoutingError
from repro.simnet.topology import Topology


def _stable_hash(value: int) -> int:
    """Deterministic across processes (``hash()`` is salted for str)."""
    digest = hashlib.blake2b(str(value).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class Router:
    """Shortest-path ECMP router over a :class:`Topology`."""

    def __init__(self, topology: Topology, max_equal_paths: int = 8) -> None:
        self.topology = topology
        self.max_equal_paths = max_equal_paths
        self._cache: Dict[Tuple[str, str], List[List[str]]] = {}
        #: link id -> (src, dst) keys whose cached paths traverse it.
        #: Entries may linger after their key was evicted (popping a
        #: missing cache key is harmless); re-caching re-adds them.
        self._keys_via: Dict[str, Set[Tuple[str, str]]] = {}
        #: Bumped on every invalidation; callers caching per-flow path
        #: choices can compare it instead of the paths themselves.
        self.generation = 0
        self._topo_generation = topology.generation

    def invalidate(self, link_ids: Optional[Iterable[str]] = None) -> int:
        """Drop cached equal-cost path sets; returns how many.

        With ``link_ids``, only ``(src, dst)`` pairs whose cached
        paths traverse one of those links are dropped -- sufficient
        (and exact) for links going *down*, since removing a link
        cannot change the shortest-path set of any pair that avoided
        it.  Without arguments the whole cache is cleared; required
        for additive mutations (link up, link added) where any pair
        may gain paths.  Either form acknowledges the topology's
        current ``generation`` and bumps the router's own.
        """
        self.generation += 1
        self._topo_generation = self.topology.generation
        if link_ids is None:
            dropped = len(self._cache)
            self._cache.clear()
            self._keys_via.clear()
            return dropped
        keys: Set[Tuple[str, str]] = set()
        for lid in link_ids:
            keys |= self._keys_via.pop(lid, set())
        dropped = 0
        for key in keys:
            if self._cache.pop(key, None) is not None:
                dropped += 1
        return dropped

    def equal_cost_paths(self, src: str, dst: str) -> List[List[str]]:
        """All (up to ``max_equal_paths``) shortest paths, as link-id lists."""
        if self._topo_generation != self.topology.generation:
            # The graph changed and nobody told us: never serve stale
            # paths (the pre-invalidation cache had exactly this bug).
            self.invalidate()
        key = (src, dst)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        paths = self._bfs_paths(src, dst)
        if not paths:
            raise RoutingError(f"no route from {src!r} to {dst!r}")
        self._cache[key] = paths
        keys_via = self._keys_via
        for path in paths:
            for lid in path:
                bucket = keys_via.get(lid)
                if bucket is None:
                    bucket = keys_via[lid] = set()
                bucket.add(key)
        return paths

    def path_for_flow(self, src: str, dst: str, flow_id: int) -> List[str]:
        """The ECMP-selected shortest path for one flow."""
        paths = self.equal_cost_paths(src, dst)
        index = _stable_hash(flow_id) % len(paths)
        return paths[index]

    def _bfs_paths(self, src: str, dst: str) -> List[List[str]]:
        """Enumerate shortest node-paths via BFS levels, then convert to links."""
        topo = self.topology
        if not topo.has_node(src):
            raise RoutingError(f"unknown source {src!r}")
        if not topo.has_node(dst):
            raise RoutingError(f"unknown destination {dst!r}")
        if src == dst:
            raise RoutingError("src == dst")
        # BFS recording predecessor lists at the shortest level.
        dist: Dict[str, int] = {src: 0}
        preds: Dict[str, List[str]] = {}
        frontier = deque([src])
        found_level: Optional[int] = None
        while frontier:
            node = frontier.popleft()
            if found_level is not None and dist[node] >= found_level:
                break
            for nxt in topo.neighbors(node):
                if nxt not in dist:
                    dist[nxt] = dist[node] + 1
                    preds[nxt] = [node]
                    if nxt == dst:
                        found_level = dist[nxt]
                    frontier.append(nxt)
                elif dist[nxt] == dist[node] + 1:
                    preds[nxt].append(node)
        if dst not in dist:
            return []
        # Walk predecessor DAG back from dst, capped at max_equal_paths.
        node_paths: List[List[str]] = []

        def backtrack(node: str, suffix: List[str]) -> None:
            if len(node_paths) >= self.max_equal_paths:
                return
            if node == src:
                node_paths.append([src] + suffix)
                return
            for pred in preds.get(node, []):
                backtrack(pred, [node] + suffix)

        backtrack(dst, [])
        link_paths = []
        for nodes in node_paths:
            link_paths.append(
                [f"{a}->{b}" for a, b in zip(nodes, nodes[1:])]
            )
        return link_paths
