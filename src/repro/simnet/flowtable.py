"""Structure-of-arrays store for per-flow numeric runtime state.

The fluid fabric keeps every active flow's mutable numbers --
``remaining``, ``rate``, ``aux_rate``, demand ``limit``,
``last_update`` and the predicted ``finish_at`` instant -- in parallel
numpy arrays keyed by a small integer *slot*, so the per-event hot
paths (lazy sync, completion scan, rate scatter) are single vectorized
passes instead of attribute walks over Python objects.  A
:class:`~repro.simnet.flows.Flow` bound to the table becomes a thin
view: its runtime properties read and write the table row.

Slots are recycled through a free list when flows finish, and the
table compacts (packs live rows densely and shrinks) once free
capacity dominates, so long-running services with churn keep O(active)
memory.  Compaction renumbers slots; the fabric propagates the
returned old->new map to every slot-holding index (the array incidence
and the bound flows themselves are remapped here).

Numeric contract: every vectorized update mirrors the scalar
``Flow.sync`` / completion-prediction arithmetic operation for
operation on float64, so trajectories are bit-identical to the
object-walking implementation they replace -- the pinned goldens rely
on this.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.simnet.flows import Flow

#: Residual-byte threshold below which a zero-drain flow counts as
#: complete; matches ``fabric._EPS``.
_EPS = 1e-9

#: Numeric columns carried per slot (``seq`` is int64, the rest float64).
_FLOAT_COLS = (
    "remaining",
    "rate",
    "aux",
    "limit",
    "last_update",
    "finish_at",
)


class FlowTable:
    """Slot-keyed parallel arrays of per-flow runtime state.

    ``seq`` holds the fabric's start-sequence number (-1 for free
    slots): it is the tiebreak/order key for every "in start order"
    guarantee, and doubles as the liveness mask.  ``finish_at`` is the
    predicted completion instant (+inf while undrained or free), so
    the event loop's next-completion peek is one ``min`` reduction and
    the completion scan one boolean gather -- replacing the lazy heap.
    """

    def __init__(self, capacity: int = 64) -> None:
        capacity = max(16, int(capacity))
        self.remaining = np.zeros(capacity)
        self.rate = np.zeros(capacity)
        self.aux = np.zeros(capacity)
        self.limit = np.zeros(capacity)
        self.last_update = np.zeros(capacity)
        self.finish_at = np.full(capacity, np.inf)
        self.seq = np.full(capacity, -1, dtype=np.int64)
        self.flow_of: List[Optional[Flow]] = [None] * capacity
        # LIFO free list (ascending slot numbers pop first).
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self.n_active = 0
        #: Bumped whenever the slot space changes shape (growth or
        #: compaction); holders of capacity-sized scratch arrays
        #: (the array incidence) compare it before reuse.
        self.generation = 0

    @property
    def capacity(self) -> int:
        return len(self.seq)

    # -- slot lifecycle ----------------------------------------------------

    def _grow(self) -> None:
        old = self.capacity
        new = old * 2
        for name in _FLOAT_COLS:
            arr: np.ndarray = getattr(self, name)
            fill = np.inf if name == "finish_at" else 0.0
            grown = np.full(new, fill)
            grown[:old] = arr
            setattr(self, name, grown)
        seq = np.full(new, -1, dtype=np.int64)
        seq[:old] = self.seq
        self.seq = seq
        self.flow_of.extend([None] * (new - old))
        self._free.extend(range(new - 1, old - 1, -1))
        self.generation += 1

    def bind(self, flow: Flow, seq: int, now: float) -> int:
        """Adopt ``flow`` into a slot; its properties now view the row.

        The flow's current instance-level state (remaining bytes, rate)
        is carried over, ``last_update`` is stamped at ``now`` and the
        finish prediction reset to +inf (an unsolved flow cannot
        complete).  Returns the slot.
        """
        if not self._free:
            self._grow()
        slot = self._free.pop()
        self.remaining[slot] = flow._remaining
        self.rate[slot] = flow._rate
        self.aux[slot] = flow.aux_rate
        self.limit[slot] = (
            flow.rate_cap if flow.rate_cap is not None else np.inf
        )
        self.last_update[slot] = now
        self.finish_at[slot] = np.inf
        self.seq[slot] = seq
        self.flow_of[slot] = flow
        flow._table = self
        flow._slot = slot
        flow._seq = seq
        self.n_active += 1
        return slot

    def unbind(self, flow: Flow) -> None:
        """Release the flow's slot, copying state back onto the object."""
        slot = flow._slot
        flow._remaining = float(self.remaining[slot])
        flow._rate = float(self.rate[slot])
        flow._last_update = float(self.last_update[slot])
        flow._table = None
        flow._slot = -1
        self.flow_of[slot] = None
        self.seq[slot] = -1
        self.rate[slot] = 0.0
        self.aux[slot] = 0.0
        self.finish_at[slot] = np.inf
        self._free.append(slot)
        self.n_active -= 1

    # -- vectorized runtime updates ---------------------------------------

    def sync_slots(self, slots: np.ndarray, now: float) -> None:
        """Materialise ``remaining`` at ``now`` for the given slots.

        Operation-for-operation the vector twin of
        :meth:`repro.simnet.flows.Flow.sync`: only stale rows are
        touched, only positive-drain rows lose bytes, and the clamp at
        zero uses the same ``max`` ordering -- bit-identical results.
        """
        lu = self.last_update[slots]
        stale = lu != now
        if not stale.any():
            return
        s = slots[stale]
        lu = lu[stale]
        drain = self.rate[s] + self.aux[s]
        pos = drain > 0.0
        if pos.any():
            sp = s[pos]
            self.remaining[sp] = np.maximum(
                0.0, self.remaining[sp] - drain[pos] * (now - lu[pos])
            )
        self.last_update[s] = now

    def active_slots(self) -> np.ndarray:
        """Slots currently bound, ascending."""
        return np.nonzero(self.seq >= 0)[0]

    def sync_active(self, now: float) -> None:
        """Materialise every bound flow's progress at ``now``."""
        self.sync_slots(self.active_slots(), now)

    def update_finish(self, slots: np.ndarray, now: float) -> None:
        """Refresh completion predictions after a rate change.

        Rows must be synced at ``now``.  Mirrors the former lazy-heap
        rekey exactly: draining rows predict ``now + remaining /
        drain``; zero-drain rows are due immediately when already
        within the completion residue, and never otherwise.
        """
        rem = self.remaining[slots]
        drain = self.rate[slots] + self.aux[slots]
        with np.errstate(divide="ignore", invalid="ignore"):
            finish = np.where(
                drain > 0.0,
                now + rem / drain,
                np.where(rem <= _EPS, now, np.inf),
            )
        self.finish_at[slots] = finish

    def peek_finish(self) -> Optional[float]:
        """Earliest predicted completion, or ``None``."""
        earliest = self.finish_at.min()
        if earliest == np.inf:
            return None
        return float(earliest)

    def pop_finished(self, limit: float) -> List[Flow]:
        """Flows predicted to finish within ``limit``, in start order.

        Clears their predictions so they are not reported twice; the
        caller finishes (or re-rates) every returned flow.
        """
        idx = np.nonzero(self.finish_at <= limit)[0]
        if len(idx) == 0:
            return []
        if len(idx) > 1:
            idx = idx[np.argsort(self.seq[idx], kind="stable")]
        self.finish_at[idx] = np.inf
        out: List[Flow] = []
        for i in idx:
            flow = self.flow_of[i]
            assert flow is not None
            out.append(flow)
        return out

    # -- compaction --------------------------------------------------------

    def compact(self) -> np.ndarray:
        """Pack live rows densely and shrink; returns the old->new map.

        The map has one entry per *old* slot (-1 for freed slots).
        Live rows keep their relative slot order.  Bound flows are
        re-pointed here; every other slot-holding structure must be
        remapped by the caller before its next use.
        """
        old_cap = self.capacity
        used = np.nonzero(self.seq >= 0)[0]
        n = len(used)
        new_cap = 16
        while new_cap < 2 * n:
            new_cap *= 2
        remap = np.full(old_cap, -1, dtype=np.int64)
        remap[used] = np.arange(n, dtype=np.int64)
        for name in _FLOAT_COLS:
            arr = getattr(self, name)
            fill = np.inf if name == "finish_at" else 0.0
            packed = np.full(new_cap, fill)
            packed[:n] = arr[used]
            setattr(self, name, packed)
        seq = np.full(new_cap, -1, dtype=np.int64)
        seq[:n] = self.seq[used]
        self.seq = seq
        flow_of: List[Optional[Flow]] = [None] * new_cap
        for new_slot, old_slot in enumerate(used):
            flow = self.flow_of[old_slot]
            assert flow is not None
            flow._slot = new_slot
            flow_of[new_slot] = flow
        self.flow_of = flow_of
        self._free = list(range(new_cap - 1, n - 1, -1))
        self.generation += 1
        return remap


__all__ = ["FlowTable"]
