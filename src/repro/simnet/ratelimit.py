"""Token-bucket rate limiter.

The paper's profiler enforces bandwidth caps "by a token bucket rate
limiter in the InfiniBand driver" (Section 7.1).  The fluid simulator
only needs the *average* rate cap (``LinkState.throttle``), but the
token bucket is implemented faithfully here because the examples use
it to demonstrate NIC-level throttling, and because it gives the test
suite a self-contained, property-testable component.

The bucket accumulates tokens (bytes) at ``rate`` up to ``burst``;
:meth:`consume` succeeds when enough tokens are present, and
:meth:`earliest_available` reports when a given amount could next be
sent -- which is what a driver uses to pace DMA doorbells.
"""

from __future__ import annotations


class TokenBucket:
    """A classic token bucket over continuous time.

    Args:
        rate: refill rate in bytes/second.
        burst: bucket depth in bytes (maximum instantaneous burst).
        initial: starting fill; defaults to a full bucket.
    """

    def __init__(self, rate: float, burst: float, initial: float | None = None) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst <= 0:
            raise ValueError(f"burst must be > 0, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = self.burst if initial is None else min(float(initial), self.burst)
        if self._tokens < 0:
            raise ValueError("initial fill must be >= 0")
        self._last_update = 0.0

    @property
    def tokens(self) -> float:
        """Fill level as of the last update (no implicit refill)."""
        return self._tokens

    def refill(self, now: float) -> None:
        """Accrue tokens up to ``now``."""
        if now < self._last_update:
            raise ValueError(
                f"time moved backwards: {now} < {self._last_update}"
            )
        self._tokens = min(
            self.burst, self._tokens + (now - self._last_update) * self.rate
        )
        self._last_update = now

    def consume(self, amount: float, now: float) -> bool:
        """Try to take ``amount`` bytes at time ``now``.

        Returns True and debits the bucket on success; leaves the
        bucket untouched (beyond the refill) on failure.
        """
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        self.refill(now)
        if amount <= self._tokens + 1e-12:
            self._tokens -= amount
            return True
        return False

    def earliest_available(self, amount: float, now: float) -> float:
        """Earliest time at which ``amount`` bytes could be consumed.

        Returns ``now`` if the bucket already holds enough.  ``amount``
        larger than the burst can never be sent in one piece; callers
        must fragment, so this raises ``ValueError``.
        """
        if amount > self.burst:
            raise ValueError(
                f"amount {amount} exceeds burst {self.burst}; fragment it"
            )
        self.refill(now)
        if amount <= self._tokens:
            return now
        deficit = amount - self._tokens
        return now + deficit / self.rate
