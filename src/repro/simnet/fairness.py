"""Rate allocation: per-link schedulers and the network-wide solver.

Three per-link disciplines cover every policy in the paper:

* :class:`FairScheduler` -- per-flow max-min within a link (InfiniBand
  FECN baseline and the *ideal max-min* baseline).
* :class:`WFQScheduler` -- two-level weighted fair queueing: link
  capacity is divided among the port's queues in proportion to their
  weights (work-conserving), then max-min within each queue.  This is
  the discipline Saba programs (Section 5.2).
* :class:`PriorityScheduler` -- strict priority across queues, max-min
  within a queue (fluid approximations of Homa and Sincronia).

Network-wide rates come from progressive residual filling
(:func:`network_rates`): starting from zero, each round offers every
link's unclaimed capacity to the flows that can still grow, divided by
the link's discipline, and each flow claims the minimum offer along
its path.  For unweighted fair queueing the result equals classic
max-min fairness -- :func:`max_min_rates` implements exact progressive
filling independently, the test suite pins the two against each other
on random networks, and an all-:class:`FairScheduler` network
short-circuits to it directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.simnet.flows import Flow

#: Maps a flow to the queue index it occupies at a given link, or to a
#: priority for strict-priority disciplines.
QueueOfFlow = Callable[[str, Flow], int]

#: How a scheduler exposes its discipline to the vectorized kernels
#: (:mod:`repro.simnet.kernels`): a ``(kind, per-member group ids,
#: group weights)`` triple.  ``kind`` is ``"fair"`` (one shared queue,
#: per-flow max-min), ``"wfq"`` (weighted fair queueing: group ids are
#: queue indices, weights map queue -> WFQ weight) or ``"prio"``
#: (strict priority: group ids are priority classes, lower served
#: first).  ``None`` means the scheduler cannot be vectorized and its
#: component must use the object solver.
KernelSpec = Tuple[str, Optional[List[int]], Optional[Dict[int, float]]]

_EPS = 1e-9


def water_fill(capacity: float, demands: Sequence[float]) -> List[float]:
    """Max-min allocation of ``capacity`` among flows capped at ``demands``.

    Classic bounded water-filling: repeatedly grant the smallest
    unsatisfied demand its cap if the equal share exceeds it, otherwise
    split the remaining capacity equally.  Runs in O(n log n).

    >>> water_fill(10.0, [2.0, 100.0, 100.0])
    [2.0, 4.0, 4.0]
    """
    n = len(demands)
    if n == 0:
        return []
    if capacity <= 0:
        return [0.0] * n
    order = sorted(range(n), key=lambda i: demands[i])
    alloc = [0.0] * n
    remaining = capacity
    left = n
    for i in order:
        share = remaining / left
        grant = min(demands[i], share)
        alloc[i] = grant
        remaining -= grant
        left -= 1
    return alloc


def weighted_water_fill(
    capacity: float, demands: Sequence[float], weights: Sequence[float]
) -> List[float]:
    """Weighted max-min allocation of ``capacity``.

    Each entry receives capacity in proportion to its weight, capped at
    its demand, with unused share redistributed (work conservation).

    >>> weighted_water_fill(13.0, [100.0, 100.0, 1.0], [1.0, 2.0, 1.0])
    [4.0, 8.0, 1.0]
    """
    n = len(demands)
    if n != len(weights):
        raise ValueError("demands and weights must have equal length")
    if n == 0:
        return []
    if capacity <= 0:
        return [0.0] * n
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    alloc = [0.0] * n
    active = [i for i in range(n) if weights[i] > 0]
    # Zero-weight entries get capacity only if everyone else is satisfied;
    # handle them by a final unweighted fill over the leftovers.
    remaining = capacity
    while active:
        total_w = sum(weights[i] for i in active)
        # Find the smallest normalised demand; grant every entry whose
        # demand is below its proportional share, then recurse.
        fill_level = remaining / total_w
        satisfied = [i for i in active if demands[i] - alloc[i] <= fill_level * weights[i] + _EPS]
        if not satisfied:
            for i in active:
                alloc[i] += fill_level * weights[i]
            remaining = 0.0
            break
        for i in satisfied:
            grant = min(demands[i] - alloc[i], remaining)
            alloc[i] += grant
            remaining -= grant
        satisfied_set = set(satisfied)
        active = [i for i in active if i not in satisfied_set]
        if remaining <= _EPS:
            break
    if remaining > _EPS:
        zero_w = [i for i in range(n) if weights[i] == 0]
        if zero_w:
            extra = water_fill(remaining, [demands[i] - alloc[i] for i in zero_w])
            for j, i in enumerate(zero_w):
                alloc[i] += extra[j]
    return alloc


#: Maps the number of flows sharing one congestion-control domain (a
#: queue) to the fraction of its bandwidth the transport actually
#: delivers.  ``None`` models an ideal transport.
EfficiencyFn = Optional[Callable[[int], float]]

#: Shared empty offer map (links with no growing candidates).
_NO_OFFERS: Dict[int, float] = {}


def fecn_collapse(alpha: float) -> Callable[[int], float]:
    """FECN-style congestion-control throughput collapse.

    ``efficiency(n) = 1 / (1 + alpha * (n - 1))``: a single flow uses
    the full queue bandwidth; every additional flow sharing the
    control loop adds rate-hunting losses.  The shape follows the
    authors' own switch measurement study (Katebzadeh et al.,
    ISPASS'20), which found InfiniBand throughput degrading steadily
    with the number of competing flows per queue.
    """
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0: {alpha}")

    def efficiency(n_flows: int) -> float:
        if n_flows <= 1:
            return 1.0
        return 1.0 / (1.0 + alpha * (n_flows - 1))

    return efficiency


def _efficient(capacity: float, n_flows: int, efficiency_fn: EfficiencyFn) -> float:
    if efficiency_fn is None or n_flows <= 0:
        return capacity
    return capacity * min(1.0, max(0.0, efficiency_fn(n_flows)))


class LinkScheduler:
    """Interface: divide one link's capacity among traversing flows.

    Schedulers own the congestion-control efficiency model: real
    transports lose throughput as more flows share one queue (sources
    hunting for the fair rate under FECN marking; see the InfiniBand
    baseline), and the loss applies *per queue* because each VL is an
    independent congestion-control domain.  Splitting flows across
    queues therefore mitigates the collapse -- one of the effects that
    separates the baseline from every queue-using policy in Figure 10.

    The loss derates the link's *usable capacity*, evaluated once per
    rate recomputation over the link's full flow population
    (:meth:`usable_capacity`); :meth:`allocate` itself is loss-free.
    Applying the loss inside the allocation rounds instead would
    compound it across progressive-filling iterations.
    """

    #: True when :meth:`allocate` is exactly unweighted per-flow
    #: max-min (``water_fill`` over all traversing flows).  Components
    #: whose links all claim this short-circuit to the exact
    #: progressive-filling solver (:func:`max_min_rates`).  Subclasses
    #: that override :meth:`allocate` with anything else must leave
    #: this False.
    uniform_fair: bool = False

    #: True when :meth:`kernel_spec` is a pure per-flow mapping: the
    #: group id and weight of a flow do not depend on which other
    #: flows share the link.  The array-native recompute then extracts
    #: the spec once per scheduler over the whole solve batch and
    #: gathers per-link group arrays from it, instead of calling
    #: :meth:`kernel_spec` per link.  Subclasses whose spec inspects
    #: the member *set* (not just each flow) must leave this False.
    kernel_spec_elementwise: bool = False

    def usable_capacity(self, capacity: float, flows: Sequence[Flow]) -> float:
        """Line rate minus congestion-control losses for ``flows``."""
        return capacity

    def kernel_spec(self, flows: Sequence[Flow]) -> Optional[KernelSpec]:
        """Describe this link's discipline for the vectorized kernels.

        Returns ``None`` when the discipline cannot be expressed as
        one of the three array kernels, which routes the whole
        component onto the object solver.  Called once per solve; the
        returned group ids must stay valid for the solve's duration
        (flow state is frozen between events, so disciplines keyed on
        e.g. ``flow.remaining`` are safe).
        """
        if self.uniform_fair:
            return ("fair", None, None)
        return None

    def allocate(
        self, capacity: float, flows: Sequence[Flow], demands: Sequence[float]
    ) -> List[float]:
        """Return a per-flow share of ``capacity``.

        ``demands[i]`` is an upper bound on what flow ``i`` can use
        (its bottleneck elsewhere); shares must not exceed demands and
        must sum to at most ``capacity``.
        """
        raise NotImplementedError


class FairScheduler(LinkScheduler):
    """Per-flow max-min within the link (one shared queue)."""

    uniform_fair = True

    def __init__(self, efficiency_fn: EfficiencyFn = None) -> None:
        self._efficiency_fn = efficiency_fn

    def usable_capacity(self, capacity: float, flows: Sequence[Flow]) -> float:
        return _efficient(capacity, len(flows), self._efficiency_fn)

    def allocate(
        self, capacity: float, flows: Sequence[Flow], demands: Sequence[float]
    ) -> List[float]:
        return water_fill(capacity, demands)


class WFQScheduler(LinkScheduler):
    """Weighted fair queueing across queues, max-min within a queue.

    ``queue_of`` maps a flow to its queue index at this link;
    ``weight_of`` maps a queue index to its configured weight.  Both are
    late-bound callables so the controller can reprogram ports without
    rebuilding schedulers.  Congestion-control losses apply per queue
    (each VL runs its own control loop): the link's usable capacity is
    the weight-proportional mix of its populated queues' efficiencies.
    """

    kernel_spec_elementwise = True

    def __init__(
        self,
        queue_of: Callable[[Flow], int],
        weight_of: Callable[[int], float],
        efficiency_fn: EfficiencyFn = None,
    ) -> None:
        self._queue_of = queue_of
        self._weight_of = weight_of
        self._efficiency_fn = efficiency_fn

    def usable_capacity(self, capacity: float, flows: Sequence[Flow]) -> float:
        if self._efficiency_fn is None or not flows:
            return capacity
        counts: Dict[int, int] = {}
        for flow in flows:
            q = self._queue_of(flow)
            counts[q] = counts.get(q, 0) + 1
        weights = {
            q: max(0.0, float(self._weight_of(q))) for q in counts
        }
        total_w = sum(weights.values())
        if total_w <= 0:
            # Unweighted port: flows share one effective control loop
            # per queue; use the population-weighted mix.
            total_n = sum(counts.values())
            mix = sum(
                n * self._efficiency_fn(n) for n in counts.values()
            ) / total_n
            return capacity * mix
        mix = sum(
            weights[q] * self._efficiency_fn(n) for q, n in counts.items()
        ) / total_w
        return capacity * mix

    def kernel_spec(self, flows: Sequence[Flow]) -> Optional[KernelSpec]:
        queues = [self._queue_of(f) for f in flows]
        weights = {
            q: max(0.0, float(self._weight_of(q))) for q in set(queues)
        }
        return ("wfq", queues, weights)

    def allocate(
        self, capacity: float, flows: Sequence[Flow], demands: Sequence[float]
    ) -> List[float]:
        by_queue: Dict[int, List[int]] = {}
        for i, flow in enumerate(flows):
            by_queue.setdefault(self._queue_of(flow), []).append(i)
        queues = sorted(by_queue)
        q_weights = [max(0.0, float(self._weight_of(q))) for q in queues]
        q_demands = [sum(demands[i] for i in by_queue[q]) for q in queues]
        q_alloc = weighted_water_fill(capacity, q_demands, q_weights)
        shares = [0.0] * len(flows)
        for q_idx, q in enumerate(queues):
            members = by_queue[q]
            inner = water_fill(q_alloc[q_idx], [demands[i] for i in members])
            for j, i in enumerate(members):
                shares[i] = inner[j]
        return shares


class PriorityScheduler(LinkScheduler):
    """Strict priority across classes, max-min within a class.

    ``priority_of`` maps a flow to an integer class; *lower* values are
    served first (priority 0 preempts priority 1).  This is the fluid
    limit of priority queueing used to approximate Homa and Sincronia.
    Congestion-control losses apply per class (one queue per class);
    the link's usable capacity mixes class efficiencies by population.
    """

    kernel_spec_elementwise = True

    def __init__(
        self,
        priority_of: Callable[[Flow], int],
        efficiency_fn: EfficiencyFn = None,
    ) -> None:
        self._priority_of = priority_of
        self._efficiency_fn = efficiency_fn

    def usable_capacity(self, capacity: float, flows: Sequence[Flow]) -> float:
        if self._efficiency_fn is None or not flows:
            return capacity
        counts: Dict[int, int] = {}
        for flow in flows:
            c = self._priority_of(flow)
            counts[c] = counts.get(c, 0) + 1
        total_n = sum(counts.values())
        mix = sum(
            n * self._efficiency_fn(n) for n in counts.values()
        ) / total_n
        return capacity * mix

    def kernel_spec(self, flows: Sequence[Flow]) -> Optional[KernelSpec]:
        return ("prio", [self._priority_of(f) for f in flows], None)

    def allocate(
        self, capacity: float, flows: Sequence[Flow], demands: Sequence[float]
    ) -> List[float]:
        by_prio: Dict[int, List[int]] = {}
        for i, flow in enumerate(flows):
            by_prio.setdefault(self._priority_of(flow), []).append(i)
        shares = [0.0] * len(flows)
        remaining = capacity
        for prio in sorted(by_prio):
            members = by_prio[prio]
            inner = water_fill(remaining, [demands[i] for i in members])
            for j, i in enumerate(members):
                shares[i] = inner[j]
            remaining -= sum(inner)
            if remaining <= _EPS:
                remaining = 0.0  # lower priorities receive zero
        return shares


def max_min_rates(
    flows: Sequence[Flow],
    capacities: Mapping[str, float],
    weights: Optional[Mapping[int, float]] = None,
) -> Dict[int, float]:
    """Exact (weighted) max-min fairness by progressive filling.

    ``capacities`` maps link id -> capacity; each flow's ``path`` lists
    the link ids it traverses.  ``weights`` optionally assigns a scalar
    weight per ``flow_id`` (default 1.0).  Returns flow_id -> rate.

    This is the reference implementation of the *ideal max-min
    fairness* baseline (Section 8.4 study 4): it is what a round-robin
    scheduler with per-flow queues achieves in the fluid limit.
    """
    active = {f.flow_id: f for f in flows if not f.done}
    rates: Dict[int, float] = {fid: 0.0 for fid in active}
    if not active:
        return rates
    w = {fid: (weights.get(fid, 1.0) if weights else 1.0) for fid in active}
    headroom = dict(capacities)
    unfrozen = set(active)
    for f in active.values():
        for lid in f.path:
            if lid not in headroom:
                raise SimulationError(f"flow {f.flow_id} uses unknown link {lid}")
    while unfrozen:
        # Fill level each link supports for its unfrozen flows.
        link_weight: Dict[str, float] = {}
        for fid in unfrozen:
            for lid in active[fid].path:
                link_weight[lid] = link_weight.get(lid, 0.0) + w[fid]
        if not link_weight:
            break
        bottleneck = None
        best_level = float("inf")
        for lid, total_w in link_weight.items():
            if total_w <= 0:
                continue
            level = headroom[lid] / total_w
            if level < best_level - _EPS:
                best_level = level
                bottleneck = lid
        if bottleneck is None:
            break
        # Application-limited flows saturate at their demand cap before
        # the bottleneck fill level: freeze those first and re-derive
        # the bottleneck with the freed capacity (bounded max-min).
        capped_now = [
            fid
            for fid in unfrozen
            if w[fid] > 0
            and active[fid].demand_limit / w[fid] <= best_level + _EPS
        ]
        if capped_now:
            for fid in capped_now:
                rates[fid] = min(
                    active[fid].demand_limit, best_level * w[fid]
                )
                unfrozen.discard(fid)
                for lid in active[fid].path:
                    headroom[lid] = max(0.0, headroom[lid] - rates[fid])
            continue
        frozen_now = [
            fid for fid in unfrozen if bottleneck in active[fid].path
        ]
        if not frozen_now:
            break
        for fid in frozen_now:
            rates[fid] = best_level * w[fid]
            unfrozen.discard(fid)
            for lid in active[fid].path:
                headroom[lid] -= rates[fid]
                if headroom[lid] < 0:
                    headroom[lid] = 0.0
    return rates


def network_rates(
    flows: Sequence[Flow],
    capacity_of: Callable[[str, int], float],
    scheduler_of: Callable[[str], LinkScheduler],
    max_rounds: int = 80,
    tol: float = 1e-4,
) -> Dict[int, float]:
    """Network-wide rate allocation by progressive residual filling.

    Starting from zero, each round recomputes every link's *target*
    allocation over the flows that can still grow (their own rate cap
    not reached and no link on their path saturated): the link's
    capacity, minus what blocked flows already hold, is divided among
    the growing flows by the link's scheduling discipline, and each
    flow is offered ``max(0, target - current)``.  A flow then claims
    the minimum offer along its path.  Rates grow monotonically, so
    the procedure terminates when every flow is either cap-limited or
    blocked by a saturated link -- which is exactly the
    work-conserving (weighted/prioritised) max-min allocation.  For
    per-flow fair queueing it reproduces classic progressive filling
    (the test suite pins it against :func:`max_min_rates` on random
    networks).  Recomputing full targets rather than splitting the
    residual evenly is what keeps it exact: flows held back by another
    link do not permanently forfeit their share here.

    A naive demand-coupled fixed point is *not* used because any
    mutually-consistent under-allocation is a fixed point of that map;
    residual filling cannot stall below the work-conserving optimum.

    Args:
        flows: active flows; each must have a non-empty ``path``.
        capacity_of: ``(link_id, n_flows_on_link) -> capacity`` in
            bytes/s.  The flow count lets the InfiniBand baseline model
            fan-in-dependent congestion-control inefficiency.
        scheduler_of: returns the discipline installed at a link.
        max_rounds: safety cap on filling rounds.
        tol: stop once a round adds less than ``tol`` of the largest
            link capacity.  The default trades the last 0.01 % of rate
            precision for far fewer trickle rounds; completion times
            are insensitive at that scale.

    Returns:
        flow_id -> rate (bytes/s).
    """
    active = [f for f in flows if not f.done]
    if not active:
        return {}
    for f in active:
        if not f.path:
            raise SimulationError(f"flow {f.flow_id} has no path")
    # Solve each congestion component independently: allocations are
    # link-local, so link-disjoint flow sets never interact and the
    # joint solution is the union of per-component solutions.  This is
    # the same decomposition the incremental fabric uses to re-solve
    # only disturbed components (DESIGN.md 5d), so incremental and
    # full solves agree exactly by construction.
    from repro.simnet.incidence import split_components

    rates: Dict[int, float] = {}
    for comp in split_components(active):
        on_link: Dict[str, List[Flow]] = {}
        for f in comp:
            for lid in f.path:
                on_link.setdefault(lid, []).append(f)
        schedulers = {lid: scheduler_of(lid) for lid in on_link}
        caps = {
            lid: schedulers[lid].usable_capacity(capacity_of(lid, len(fl)), fl)
            for lid, fl in on_link.items()
        }
        rates.update(solve_component(
            comp, on_link, schedulers, caps, max_rounds=max_rounds, tol=tol,
        ))
    return rates


def solve_component(
    flows: Sequence[Flow],
    on_link: Mapping[str, Sequence[Flow]],
    schedulers: Mapping[str, LinkScheduler],
    caps: Mapping[str, float],
    max_rounds: int = 80,
    tol: float = 1e-4,
) -> Dict[int, float]:
    """Progressive residual filling over one congestion component.

    ``flows`` must be the component's active flows in a stable order
    (the fabric passes start order), ``on_link`` its link -> member
    lists in that same order, and ``caps`` the already-derated usable
    capacity per link.  The component must be closed: every link on
    every member's path appears in all three maps.  The stopping
    tolerance is *local* (``tol`` of the component's largest link
    capacity), so the solution is independent of any other traffic --
    the property that makes incremental re-solving exact.
    """
    # Fast path: unweighted per-flow fairness everywhere (the
    # InfiniBand baseline and ideal max-min) is solved exactly by
    # classic progressive filling in one pass.  ``uniform_fair`` is an
    # explicit declaration, so FairScheduler subclasses that keep the
    # allocate contract stay on this path (a ``type is`` check used to
    # silently route them onto the slower weighted rounds).  Duck-typed
    # schedulers without the attribute take the general path.
    if all(
        getattr(s, "uniform_fair", False) for s in schedulers.values()
    ):
        return max_min_rates(flows, caps)
    max_cap = max(caps.values())
    eps = tol * max_cap
    rate: Dict[int, float] = {f.flow_id: 0.0 for f in flows}
    used: Dict[str, float] = {lid: 0.0 for lid in on_link}
    limit: Dict[int, float] = {
        f.flow_id: f.demand_limit for f in flows
    }
    path_of: Dict[int, tuple] = {f.flow_id: tuple(f.path) for f in flows}
    growing = set(rate)

    def _run_rounds(compute_offers) -> None:
        """Shared grant loop with touched-link offer caching.

        A link's cached offers stay valid until a rate on it changes
        (every granted flow marks its whole path touched) or its
        blocked set changes (newly saturated links untrack their
        flows, whose other links get touched too).
        """
        offer_at: Dict[str, Dict[int, float]] = {}
        touched = set(on_link)
        for _ in range(max_rounds):
            if not growing:
                return
            for lid in touched:
                members = on_link[lid]
                candidates = [
                    f for f in members if f.flow_id in growing
                ]
                if not candidates:
                    offer_at.pop(lid, None)
                    continue
                offer_at[lid] = compute_offers(lid, members, candidates)
            touched = set()
            added = 0.0
            granted: List[int] = []
            for fid in growing:
                path = path_of[fid]
                extra = min(
                    offer_at.get(lid, _NO_OFFERS).get(fid, 0.0)
                    for lid in path
                )
                if extra <= 0.0:
                    continue
                rate[fid] += extra
                added = max(added, extra)
                granted.append(fid)
                for lid in path:
                    used[lid] += extra
                    touched.add(lid)
            # Retire flows that reached their own cap, and flows
            # blocked by links that just saturated.
            for fid in granted:
                if rate[fid] >= limit[fid] - eps:
                    growing.discard(fid)
            for lid in list(touched):
                if used[lid] >= caps[lid] - eps:
                    for f in on_link[lid]:
                        if f.flow_id in growing:
                            growing.discard(f.flow_id)
                            touched.update(path_of[f.flow_id])
            if added <= eps:
                return

    def _weighted_offers(lid, members, candidates):
        """Main phase: discipline targets minus current holdings."""
        blocked_usage = 0.0
        for f in members:
            if f.flow_id not in growing:
                blocked_usage += rate[f.flow_id]
        usable = max(0.0, caps[lid] - blocked_usage)
        demands = [limit[f.flow_id] for f in candidates]
        targets = schedulers[lid].allocate(usable, candidates, demands)
        offers = {
            f.flow_id: max(0.0, targets[i] - rate[f.flow_id])
            for i, f in enumerate(candidates)
        }
        # A flow may already hold more than this round's target for it
        # (targets shrink as the candidate set changes), and held
        # bandwidth is never reclaimed -- so cap the round's total
        # hand-out at the link's true residual.
        residual = max(0.0, caps[lid] - used[lid])
        total_offer = sum(offers.values())
        if total_offer > residual and total_offer > 0.0:
            factor = residual / total_offer
            offers = {fid: o * factor for fid, o in offers.items()}
        return offers

    def _mopup_offers(lid, members, candidates):
        """Mop-up phase: leftover capacity, per-flow fair."""
        residual = max(0.0, caps[lid] - used[lid])
        headrooms = [
            limit[f.flow_id] - rate[f.flow_id] for f in candidates
        ]
        grants = water_fill(residual, headrooms)
        return {f.flow_id: grants[i] for i, f in enumerate(candidates)}

    _run_rounds(_weighted_offers)

    # -- work-conserving mop-up -----------------------------------------
    # The weighted rounds above can stall with residual capacity left:
    # a queue's share may be unclaimable because its members are
    # limited elsewhere, while sibling-queue flows still hunger.  A
    # real WRR scheduler grants unclaimed slots to whichever backlogged
    # queue is next, so leftover capacity is distributed per-flow fair
    # to any unblocked, under-cap flow.
    growing = {
        fid
        for fid in rate
        if rate[fid] < limit[fid] - eps
        and all(used[lid] < caps[lid] - eps for lid in path_of[fid])
    }
    _run_rounds(_mopup_offers)
    return rate
