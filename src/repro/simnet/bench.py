"""Fluid-fabric benchmarks (``python -m repro fabric bench``).

Three scenarios, selected with ``--scenario``:

``corun`` (default)
    The incremental-vs-full rate-solving benchmark: the same synthetic
    co-run on a fig10-scale spine-leaf fabric runs once with
    component-scoped incremental solving, once with the
    full-recompute baseline (``FluidFabric(incremental=False)``), and
    once with the vectorized solver backend
    (:mod:`repro.simnet.kernels`), reporting events/sec, solver calls
    per event and mean re-solved component size plus cross-mode
    completion-time agreement checks.

``hyperscale``
    A 100,000-server (2,500 racks x 40 servers) fabric running
    1,072,500 rack-local incast flows in successive waves.  Flows are
    generated lazily wave by wave, the symmetric waves complete
    simultaneously so ``completion_quantum`` coalesces each wave-end
    into a single batched rate recompute, and the ~39-flow incast
    components solve on the vectorized kernels.  Runs on both solver
    backends and checks completion-time agreement; the headline
    metric is completed flows per wall-clock second.

``fig10``
    A first full-scale smoke run of the paper's simulated cluster
    shape: the 1,944-server topology (54 spine / 102 leaf / 108 ToR /
    18 servers) under the co-run workload, one app per rack, on both
    solver backends with an agreement check.

The co-run models locality-aware placement: ``apps`` applications are
pinned round-robin to racks and each runs ``waves`` successive waves
of ``fanout`` concurrent rack-local flows under a WFQ policy, so the
traffic graph decomposes into per-rack congestion components and a
completion disturbs only its own rack -- the regime the incremental
solver targets.  (A fully cross-rack co-run merges into one giant
component and degrades the incremental path toward full solves; see
DESIGN.md 5d.)

The committed ``BENCH_fabric.json`` at the repo root is a snapshot of
the ``corun`` output (regenerate with ``python -m repro fabric bench
--out BENCH_fabric.json``); ``BENCH_hyperscale.json`` snapshots the
``hyperscale`` scenario.
"""

from __future__ import annotations

import json
import os
import platform
import time
from random import Random
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.export import code_version
from repro.simnet.fabric import FluidFabric
from repro.simnet.fairness import LinkScheduler, WFQScheduler
from repro.simnet.flows import Flow
from repro.simnet.routing import Router
from repro.simnet.topology import spine_leaf
from repro.units import GBPS_56

#: Default scenario: the fig10 default simulated cluster shape.
DEFAULT_SCENARIO = dict(
    n_spine=8, n_leaf=8, n_tor=8, servers_per_tor=10,
    apps=16, fanout=8, waves=6, seed=7,
)

#: Hyperscale scenario: O(10^5) servers, O(10^6) flows.  Each rack
#: runs ``waves`` successive equal-size incast waves (every server
#: sends to a rotating sink), so a wave's flows finish simultaneously
#: and ``completion_quantum`` coalesces the wave-end into one batched
#: recompute of a ~``servers_per_tor``-flow component.
HYPERSCALE_SCENARIO = dict(
    n_spine=4, n_leaf=16, n_tor=2500, servers_per_tor=40,
    waves=11, seed=7, completion_quantum=1e-3,
)

#: Full-scale fig10 smoke: the paper's 1,944-server cluster shape
#: under the co-run workload, one app per rack.
FIG10_SCENARIO = dict(
    n_spine=54, n_leaf=102, n_tor=108, servers_per_tor=18,
    apps=108, fanout=8, waves=3, seed=7,
)

SCENARIOS = ("corun", "hyperscale", "fig10")

#: cProfile rows reported with ``--profile``.
_PROFILE_TOP = 25


def env_metadata(solver_backend: Optional[str] = None) -> Dict[str, Any]:
    """Interpreter / library provenance for benchmark payloads."""
    meta: Dict[str, Any] = {
        "python_version": platform.python_version(),
        "numpy_version": np.__version__,
    }
    if solver_backend is not None:
        meta["solver_backend"] = solver_backend
    return meta


def _profile_lines(prof: Any) -> List[str]:
    """Top cumulative-time rows of a cProfile run, as text lines."""
    import io
    import pstats

    buf = io.StringIO()
    stats = pstats.Stats(prof, stream=buf)
    stats.sort_stats("cumulative").print_stats(_PROFILE_TOP)
    return [line.rstrip() for line in buf.getvalue().splitlines() if line.strip()]


class _WFQBenchPolicy:
    """Static WFQ by priority level; exercises the weighted solver.

    Pure function of the flow's own header and the queue index, so
    component-scoped solving is exact (``component_safe`` defaults to
    ``True``).
    """

    name = "bench-wfq"

    def __init__(self, num_queues: int = 8) -> None:
        self._num_queues = num_queues
        self._scheduler = WFQScheduler(
            queue_of=self._queue_of, weight_of=self._weight_of,
        )

    def _queue_of(self, flow: Flow) -> int:
        return (flow.pl or 0) % self._num_queues

    def _weight_of(self, queue: int) -> float:
        return float(queue + 1)

    def attach(self, fabric: FluidFabric) -> None:  # noqa: D102
        pass

    def scheduler_of(self, link_id: str) -> LinkScheduler:  # noqa: D102
        return self._scheduler

    def on_flow_started(self, flow: Flow) -> None:  # noqa: D102
        pass

    def on_flow_finished(self, flow: Flow) -> None:  # noqa: D102
        pass


def _timed_run(fabric: FluidFabric, profile: bool) -> Tuple[float, float, List[str]]:
    """Run the fabric to completion; returns (horizon, wall, profile)."""
    if profile:
        import cProfile

        prof = cProfile.Profile()
        t0 = time.perf_counter()
        prof.enable()
        horizon = fabric.run()
        prof.disable()
        wall = time.perf_counter() - t0
        return horizon, wall, _profile_lines(prof)
    t0 = time.perf_counter()
    horizon = fabric.run()
    wall = time.perf_counter() - t0
    return horizon, wall, []


def _solver_stats(fabric: FluidFabric, wall: float) -> Dict[str, Any]:
    """The per-run stat block shared by every scenario."""
    events = fabric.loop_events
    solves = fabric.rate_recomputes
    return {
        "solver_backend": fabric.solver_backend,
        "wall_seconds": round(wall, 4),
        "events": events,
        "events_per_sec": round(events / wall, 1) if wall > 0 else None,
        "rate_recomputes": solves,
        "solver_calls_per_event": round(solves / events, 4) if events else 0.0,
        "components_solved": fabric.components_solved,
        "flows_solved": fabric.flows_solved,
        "mean_component_flows": round(
            fabric.flows_solved / fabric.components_solved, 2
        ) if fabric.components_solved else 0.0,
        "vector_components": fabric.vector_components,
        "object_components": fabric.object_components,
        "vector_solver_seconds": round(fabric.vector_seconds, 4),
        "object_solver_seconds": round(fabric.object_seconds, 4),
        # The recompute pipeline split: time spent building solver
        # inputs (caps/spec marshalling, CSR assembly) vs inside the
        # solve kernels themselves.  With the array-native incidence
        # the marshal share should be a small fraction of the solve.
        "marshal_seconds": round(fabric.marshal_seconds, 4),
        "solve_seconds": round(fabric.solve_seconds, 4),
        "incidence_backend": fabric.incidence_backend_resolved,
        "flows_completed": len(fabric.completed),
        "flows_per_sec": round(len(fabric.completed) / wall, 1)
        if wall > 0 else None,
    }


def _run_mode(
    incremental: bool,
    n_spine: int, n_leaf: int, n_tor: int, servers_per_tor: int,
    apps: int, fanout: int, waves: int, seed: int,
    solver_backend: str = "object",
    profile: bool = False,
) -> Tuple[Dict[str, Any], Dict[Tuple[int, int, int], float], List[str]]:
    """One co-run benchmark run.

    Returns (stats, completion times by flow key, profile lines).
    """
    topology = spine_leaf(
        n_spine=n_spine, n_leaf=n_leaf, n_tor=n_tor,
        servers_per_tor=servers_per_tor, capacity=GBPS_56,
    )
    fabric = FluidFabric(
        topology, incremental=incremental, solver_backend=solver_backend,
    )
    fabric.set_policy(_WFQBenchPolicy())
    router = Router(topology)
    completions: Dict[Tuple[int, int, int], float] = {}

    def launch_app(app_idx: int) -> None:
        rack = app_idx % n_tor
        servers = [
            f"server{rack * servers_per_tor + s}"
            for s in range(servers_per_tor)
        ]
        rng = Random(seed * 7919 + app_idx)
        state = {"wave": 0, "outstanding": 0}

        def start_wave() -> None:
            if state["wave"] >= waves:
                return
            wave = state["wave"]
            state["wave"] += 1
            for i in range(fanout):
                src, dst = rng.sample(servers, 2)
                flow = Flow(
                    src=src, dst=dst,
                    size=rng.uniform(0.05, 2.0) * 1e9,
                    app=f"app{app_idx}", pl=rng.randrange(16),
                    # Routed with a mode-independent ECMP key: global
                    # flow ids differ between the two runs and would
                    # otherwise pick different equal-cost paths.
                    path=tuple(router.path_for_flow(
                        src, dst, app_idx * 1_000_000 + wave * 1000 + i
                    )),
                )
                key = (app_idx, wave, i)
                state["outstanding"] += 1

                def done(f: Flow, key=key) -> None:
                    completions[key] = f.finish_time
                    state["outstanding"] -= 1
                    if state["outstanding"] == 0:
                        start_wave()

                fabric.start_flow(flow, on_complete=done)

        # Stagger app arrivals so starts do not all coincide.
        fabric.sim.schedule_at(app_idx * 1.3e-4, start_wave)

    for app_idx in range(apps):
        launch_app(app_idx)

    horizon, wall, prof_lines = _timed_run(fabric, profile)
    stats = _solver_stats(fabric, wall)
    stats["incremental"] = incremental
    stats["sim_horizon"] = round(horizon, 6)
    return stats, completions, prof_lines


def _run_incast(
    n_spine: int, n_leaf: int, n_tor: int, servers_per_tor: int,
    waves: int, seed: int, completion_quantum: float,
    solver_backend: str = "auto",
    profile: bool = False,
) -> Tuple[Dict[str, Any], Dict[Tuple[int, int, int], float], List[str]]:
    """One hyperscale incast run (lazy wave-by-wave flow generation).

    Every rack runs ``waves`` successive incast waves: each of its
    servers sends one equal-size flow to a rotating sink server.  A
    wave's flows are only materialized when the previous wave
    drains, so at most ``n_tor * (servers_per_tor - 1)`` flow objects
    are live at once even though the whole scenario pushes
    ``n_tor * (servers_per_tor - 1) * waves`` flows through the
    fabric.
    """
    topology = spine_leaf(
        n_spine=n_spine, n_leaf=n_leaf, n_tor=n_tor,
        servers_per_tor=servers_per_tor, capacity=GBPS_56,
    )
    fabric = FluidFabric(
        topology, incremental=True, solver_backend=solver_backend,
        completion_quantum=completion_quantum,
    )
    fabric.set_policy(_WFQBenchPolicy())
    router = Router(topology)
    completions: Dict[Tuple[int, int, int], float] = {}

    def launch_rack(rack: int) -> None:
        base = rack * servers_per_tor
        servers = [f"server{base + s}" for s in range(servers_per_tor)]
        state = {"wave": 0, "outstanding": 0}

        def start_wave() -> None:
            if state["wave"] >= waves:
                return
            wave = state["wave"]
            state["wave"] += 1
            sink = servers[wave % servers_per_tor]
            for i, src in enumerate(servers):
                if src == sink:
                    continue
                flow = Flow(
                    src=src, dst=sink, size=1.0e9,
                    app=f"rack{rack}", pl=wave % 16,
                    path=tuple(router.path_for_flow(
                        src, sink, rack * 1_000_000 + wave * 1000 + i
                    )),
                )
                key = (rack, wave, i)
                state["outstanding"] += 1

                def done(f: Flow, key=key) -> None:
                    completions[key] = f.finish_time
                    state["outstanding"] -= 1
                    if state["outstanding"] == 0:
                        start_wave()

                fabric.start_flow(flow, on_complete=done)

        fabric.sim.schedule_at(rack * 1.3e-4, start_wave)

    for rack in range(n_tor):
        launch_rack(rack)

    horizon, wall, prof_lines = _timed_run(fabric, profile)
    stats = _solver_stats(fabric, wall)
    stats["incremental"] = True
    stats["completion_quantum"] = completion_quantum
    stats["sim_horizon"] = round(horizon, 6)
    return stats, completions, prof_lines


def _completion_diff(
    a: Dict[Tuple[int, int, int], float],
    b: Dict[Tuple[int, int, int], float],
) -> float:
    """Max relative completion-time difference between two runs."""
    max_rel = 0.0
    for key, t_a in a.items():
        t_b = b.get(key)
        if t_b is None:
            return float("inf")
        denom = max(abs(t_a), abs(t_b), 1e-30)
        max_rel = max(max_rel, abs(t_a - t_b) / denom)
    return max_rel


def _payload_header(bench: str, backend: str) -> Dict[str, Any]:
    header = {
        "bench": bench,
        "created_unix": time.time(),
        "code_version": code_version(),
        "cpu_count": os.cpu_count(),
    }
    header.update(env_metadata(backend))
    return header


def run_bench(
    scenario: Optional[Dict[str, int]] = None,
    progress: Optional[Callable[[str], None]] = None,
    backend: str = "auto",
    profile: bool = False,
) -> Dict[str, Any]:
    """Benchmark full vs incremental vs vectorized solving on one
    synthetic co-run.

    Returns the ``BENCH_fabric.json`` payload.  ``scenario`` overrides
    :data:`DEFAULT_SCENARIO` keys (CI passes a reduced grid);
    ``backend`` is the solver backend of the third, vectorized run.
    """
    params = dict(DEFAULT_SCENARIO)
    if scenario:
        params.update({k: v for k, v in scenario.items() if v is not None})

    def narrate(message: str) -> None:
        if progress is not None:
            progress(message)

    total_flows = params["apps"] * params["fanout"] * params["waves"]
    narrate(
        f"bench: {params['apps']} apps x {params['waves']} waves x "
        f"{params['fanout']} flows = {total_flows} flows on "
        f"{params['n_tor'] * params['servers_per_tor']} servers"
    )
    full, full_times, _ = _run_mode(incremental=False, **params)
    narrate(
        f"bench: full recompute done in {full['wall_seconds']:.2f}s "
        f"({full['events_per_sec']} events/s)"
    )
    incr, incr_times, _ = _run_mode(incremental=True, **params)
    narrate(
        f"bench: incremental done in {incr['wall_seconds']:.2f}s "
        f"({incr['events_per_sec']} events/s)"
    )
    vec, vec_times, prof_lines = _run_mode(
        incremental=True, solver_backend=backend, profile=profile, **params
    )
    narrate(
        f"bench: incremental[{backend}] done in "
        f"{vec['wall_seconds']:.2f}s ({vec['events_per_sec']} events/s, "
        f"{vec['vector_components']} components on the vector kernels)"
    )
    max_rel = _completion_diff(full_times, incr_times)
    vec_rel = _completion_diff(incr_times, vec_times)
    full_evps = full["events_per_sec"] or 0.0
    incr_evps = incr["events_per_sec"] or 0.0
    vec_evps = vec["events_per_sec"] or 0.0
    speedup = incr_evps / full_evps if full_evps > 0 else float("inf")
    payload = _payload_header("fabric.incremental-rate-solving", backend)
    payload.update({
        "scenario": params,
        "full": full,
        "incremental": incr,
        "vector": vec,
        "speedup": round(speedup, 3),
        "max_rel_completion_diff": max_rel,
        "identical_results": (
            len(full_times) == len(incr_times) and max_rel <= 1e-9
        ),
        "vector_speedup": round(
            vec_evps / incr_evps if incr_evps > 0 else float("inf"), 3
        ),
        "vector_max_rel_completion_diff": vec_rel,
        "vector_identical_results": (
            len(incr_times) == len(vec_times) and vec_rel <= 1e-9
        ),
    })
    if prof_lines:
        payload["profile_top25"] = prof_lines
    return payload


def run_hyperscale(
    scenario: Optional[Dict[str, Any]] = None,
    progress: Optional[Callable[[str], None]] = None,
    backend: str = "auto",
    profile: bool = False,
) -> Dict[str, Any]:
    """Benchmark the hyperscale incast scenario on both backends.

    Returns the ``BENCH_hyperscale.json`` payload.  ``scenario``
    overrides :data:`HYPERSCALE_SCENARIO` keys (CI passes a reduced
    grid; the committed snapshot uses the full one).
    """
    params = dict(HYPERSCALE_SCENARIO)
    if scenario:
        params.update({k: v for k, v in scenario.items() if v is not None})

    def narrate(message: str) -> None:
        if progress is not None:
            progress(message)

    servers = params["n_tor"] * params["servers_per_tor"]
    total_flows = (
        params["n_tor"] * (params["servers_per_tor"] - 1) * params["waves"]
    )
    narrate(
        f"hyperscale: {servers} servers, {params['n_tor']} racks x "
        f"{params['waves']} incast waves = {total_flows} flows"
    )
    vec, vec_times, prof_lines = _run_incast(
        solver_backend=backend, profile=profile, **params
    )
    narrate(
        f"hyperscale[{backend}]: {vec['flows_completed']} flows in "
        f"{vec['wall_seconds']:.1f}s ({vec['flows_per_sec']} flows/s)"
    )
    obj, obj_times, _ = _run_incast(solver_backend="object", **params)
    narrate(
        f"hyperscale[object]: {obj['flows_completed']} flows in "
        f"{obj['wall_seconds']:.1f}s ({obj['flows_per_sec']} flows/s)"
    )
    max_rel = _completion_diff(obj_times, vec_times)
    vec_fps = vec["flows_per_sec"] or 0.0
    obj_fps = obj["flows_per_sec"] or 0.0
    payload = _payload_header("fabric.hyperscale-incast", backend)
    payload.update({
        "scenario": params,
        "servers": servers,
        "total_flows": total_flows,
        "vector": vec,
        "object": obj,
        "vector_speedup": round(
            vec_fps / obj_fps if obj_fps > 0 else float("inf"), 3
        ),
        "max_rel_completion_diff": max_rel,
        "identical_results": (
            len(obj_times) == len(vec_times)
            and vec["flows_completed"] == total_flows
            and max_rel <= 1e-9
        ),
    })
    if prof_lines:
        payload["profile_top25"] = prof_lines
    return payload


def run_fig10_smoke(
    scenario: Optional[Dict[str, int]] = None,
    progress: Optional[Callable[[str], None]] = None,
    backend: str = "auto",
    profile: bool = False,
) -> Dict[str, Any]:
    """Smoke-run the co-run workload on the full 1,944-server fig10
    topology, on both solver backends, with an agreement check."""
    params = dict(FIG10_SCENARIO)
    if scenario:
        params.update({k: v for k, v in scenario.items() if v is not None})

    def narrate(message: str) -> None:
        if progress is not None:
            progress(message)

    servers = params["n_tor"] * params["servers_per_tor"]
    total_flows = params["apps"] * params["fanout"] * params["waves"]
    narrate(
        f"fig10 smoke: {servers} servers, {params['apps']} apps, "
        f"{total_flows} flows"
    )
    vec, vec_times, prof_lines = _run_mode(
        incremental=True, solver_backend=backend, profile=profile, **params
    )
    narrate(
        f"fig10[{backend}]: done in {vec['wall_seconds']:.1f}s "
        f"({vec['events_per_sec']} events/s)"
    )
    obj, obj_times, _ = _run_mode(incremental=True, **params)
    narrate(
        f"fig10[object]: done in {obj['wall_seconds']:.1f}s "
        f"({obj['events_per_sec']} events/s)"
    )
    max_rel = _completion_diff(obj_times, vec_times)
    payload = _payload_header("fabric.fig10-full-scale-smoke", backend)
    payload.update({
        "scenario": params,
        "servers": servers,
        "total_flows": total_flows,
        "vector": vec,
        "object": obj,
        "max_rel_completion_diff": max_rel,
        "identical_results": (
            len(obj_times) == len(vec_times)
            and vec["flows_completed"] == total_flows
            and max_rel <= 1e-9
        ),
    })
    if prof_lines:
        payload["profile_top25"] = prof_lines
    return payload


def write_bench(payload: Dict[str, Any], out: str) -> None:
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
