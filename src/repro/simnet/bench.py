"""Incremental-vs-full rate-solving benchmark (``python -m repro fabric bench``).

Runs the same synthetic co-run twice on a fig10-scale spine-leaf
fabric -- once with component-scoped incremental solving, once with
the full-recompute baseline (``FluidFabric(incremental=False)``, the
pre-incremental behaviour: every event advances all flows and
re-solves every component) -- and reports events/sec, solver calls
per event and mean re-solved component size for both modes, plus a
cross-mode completion-time agreement check.

The co-run models locality-aware placement: ``apps`` applications are
pinned round-robin to racks and each runs ``waves`` successive waves
of ``fanout`` concurrent rack-local flows under a WFQ policy, so the
traffic graph decomposes into per-rack congestion components and a
completion disturbs only its own rack -- the regime the incremental
solver targets.  (A fully cross-rack co-run merges into one giant
component and degrades the incremental path toward full solves; see
DESIGN.md 5d.)

The committed ``BENCH_fabric.json`` at the repo root is a snapshot of
this output; regenerate it with ``python -m repro fabric bench --out
BENCH_fabric.json``.
"""

from __future__ import annotations

import json
import os
import time
from random import Random
from typing import Any, Callable, Dict, Optional, Tuple

from repro.obs.export import code_version
from repro.simnet.fabric import FluidFabric
from repro.simnet.fairness import LinkScheduler, WFQScheduler
from repro.simnet.flows import Flow
from repro.simnet.routing import Router
from repro.simnet.topology import spine_leaf
from repro.units import GBPS_56

#: Default scenario: the fig10 default simulated cluster shape.
DEFAULT_SCENARIO = dict(
    n_spine=8, n_leaf=8, n_tor=8, servers_per_tor=10,
    apps=16, fanout=8, waves=6, seed=7,
)


class _WFQBenchPolicy:
    """Static WFQ by priority level; exercises the weighted solver.

    Pure function of the flow's own header and the queue index, so
    component-scoped solving is exact (``component_safe`` defaults to
    ``True``).
    """

    name = "bench-wfq"

    def __init__(self, num_queues: int = 8) -> None:
        self._num_queues = num_queues
        self._scheduler = WFQScheduler(
            queue_of=self._queue_of, weight_of=self._weight_of,
        )

    def _queue_of(self, flow: Flow) -> int:
        return (flow.pl or 0) % self._num_queues

    def _weight_of(self, queue: int) -> float:
        return float(queue + 1)

    def attach(self, fabric: FluidFabric) -> None:  # noqa: D102
        pass

    def scheduler_of(self, link_id: str) -> LinkScheduler:  # noqa: D102
        return self._scheduler

    def on_flow_started(self, flow: Flow) -> None:  # noqa: D102
        pass

    def on_flow_finished(self, flow: Flow) -> None:  # noqa: D102
        pass


def _run_mode(
    incremental: bool,
    n_spine: int, n_leaf: int, n_tor: int, servers_per_tor: int,
    apps: int, fanout: int, waves: int, seed: int,
) -> Tuple[Dict[str, Any], Dict[Tuple[int, int, int], float]]:
    """One benchmark run; returns (stats, completion times by flow key)."""
    topology = spine_leaf(
        n_spine=n_spine, n_leaf=n_leaf, n_tor=n_tor,
        servers_per_tor=servers_per_tor, capacity=GBPS_56,
    )
    fabric = FluidFabric(topology, incremental=incremental)
    fabric.set_policy(_WFQBenchPolicy())
    router = Router(topology)
    completions: Dict[Tuple[int, int, int], float] = {}

    def launch_app(app_idx: int) -> None:
        rack = app_idx % n_tor
        servers = [
            f"server{rack * servers_per_tor + s}"
            for s in range(servers_per_tor)
        ]
        rng = Random(seed * 7919 + app_idx)
        state = {"wave": 0, "outstanding": 0}

        def start_wave() -> None:
            if state["wave"] >= waves:
                return
            wave = state["wave"]
            state["wave"] += 1
            for i in range(fanout):
                src, dst = rng.sample(servers, 2)
                flow = Flow(
                    src=src, dst=dst,
                    size=rng.uniform(0.05, 2.0) * 1e9,
                    app=f"app{app_idx}", pl=rng.randrange(16),
                    # Routed with a mode-independent ECMP key: global
                    # flow ids differ between the two runs and would
                    # otherwise pick different equal-cost paths.
                    path=tuple(router.path_for_flow(
                        src, dst, app_idx * 1_000_000 + wave * 1000 + i
                    )),
                )
                key = (app_idx, wave, i)
                state["outstanding"] += 1

                def done(f: Flow, key=key) -> None:
                    completions[key] = f.finish_time
                    state["outstanding"] -= 1
                    if state["outstanding"] == 0:
                        start_wave()

                fabric.start_flow(flow, on_complete=done)

        # Stagger app arrivals so starts do not all coincide.
        fabric.sim.schedule_at(app_idx * 1.3e-4, start_wave)

    for app_idx in range(apps):
        launch_app(app_idx)

    t0 = time.perf_counter()
    horizon = fabric.run()
    wall = time.perf_counter() - t0
    events = fabric.loop_events
    solves = fabric.rate_recomputes
    stats = {
        "incremental": incremental,
        "wall_seconds": round(wall, 4),
        "events": events,
        "events_per_sec": round(events / wall, 1) if wall > 0 else None,
        "rate_recomputes": solves,
        "solver_calls_per_event": round(solves / events, 4) if events else 0.0,
        "components_solved": fabric.components_solved,
        "flows_solved": fabric.flows_solved,
        "mean_component_flows": round(
            fabric.flows_solved / fabric.components_solved, 2
        ) if fabric.components_solved else 0.0,
        "sim_horizon": round(horizon, 6),
        "flows_completed": len(fabric.completed),
    }
    return stats, completions


def run_bench(
    scenario: Optional[Dict[str, int]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Benchmark full vs incremental solving on one synthetic co-run.

    Returns the ``BENCH_fabric.json`` payload.  ``scenario`` overrides
    :data:`DEFAULT_SCENARIO` keys (CI passes a reduced grid).
    """
    params = dict(DEFAULT_SCENARIO)
    if scenario:
        params.update({k: v for k, v in scenario.items() if v is not None})

    def narrate(message: str) -> None:
        if progress is not None:
            progress(message)

    total_flows = params["apps"] * params["fanout"] * params["waves"]
    narrate(
        f"bench: {params['apps']} apps x {params['waves']} waves x "
        f"{params['fanout']} flows = {total_flows} flows on "
        f"{params['n_tor'] * params['servers_per_tor']} servers"
    )
    full, full_times = _run_mode(incremental=False, **params)
    narrate(
        f"bench: full recompute done in {full['wall_seconds']:.2f}s "
        f"({full['events_per_sec']} events/s)"
    )
    incr, incr_times = _run_mode(incremental=True, **params)
    narrate(
        f"bench: incremental done in {incr['wall_seconds']:.2f}s "
        f"({incr['events_per_sec']} events/s)"
    )
    max_rel = 0.0
    for key, t_full in full_times.items():
        t_incr = incr_times.get(key)
        if t_incr is None:
            max_rel = float("inf")
            break
        denom = max(abs(t_full), abs(t_incr), 1e-30)
        max_rel = max(max_rel, abs(t_full - t_incr) / denom)
    full_evps = full["events_per_sec"] or 0.0
    incr_evps = incr["events_per_sec"] or 0.0
    speedup = incr_evps / full_evps if full_evps > 0 else float("inf")
    return {
        "bench": "fabric.incremental-rate-solving",
        "created_unix": time.time(),
        "code_version": code_version(),
        "cpu_count": os.cpu_count(),
        "scenario": params,
        "full": full,
        "incremental": incr,
        "speedup": round(speedup, 3),
        "max_rel_completion_diff": max_rel,
        "identical_results": (
            len(full_times) == len(incr_times) and max_rel <= 1e-9
        ),
    }


def write_bench(payload: Dict[str, Any], out: str) -> None:
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
