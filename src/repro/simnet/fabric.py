"""The fluid fabric: ties topology, routing, scheduling and the event
loop together.

Rates of fluid flows are piecewise constant between *events* (flow
start, flow completion, timer expiry, reconfiguration), so the
simulation is exact: on each event the fabric re-solves rates and
jumps straight to the next event.

The rate pipeline is *incremental*: a persistent flow↔link incidence
index (:mod:`repro.simnet.incidence`) partitions active flows into
congestion components, and an event re-solves only the components
containing dirtied flows or reconfigured ports -- allocation is
link-local, so link-disjoint components never interact and the
component-scoped solution equals the full one exactly (DESIGN.md 5d).
Per-link ``usable_capacity`` deratings are cached until the link's
flow population or queue programming changes, and flow completions
live in a lazy heap keyed by predicted finish time, so per-event work
is O(disturbed component + log n) instead of O(active flows × links).

Allocation policies plug in through two hooks:

* ``scheduler_of(link_id)`` -- the queueing discipline at each link
  (installed via :meth:`FluidFabric.set_policy`);
* flow lifecycle callbacks -- the policy (and the Saba library) learn
  about flow starts/completions to drive re-allocation.

A policy whose per-link allocation depends on state *outside* the
link's own flow population and queue programming -- e.g. Homa's
priority classes read each flow's continuously-draining ``remaining``
-- must set ``component_safe = False``; the fabric then advances all
flows eagerly and re-solves everything on each recomputation, exactly
reproducing the non-incremental behaviour.
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from repro.errors import RoutingError, SimulationError
from repro.obs.events import (
    FLOW_FINISHED,
    FLOW_REROUTED,
    FLOW_STARTED,
    LINK_DOWN,
    LINK_UP,
    NULL_OBSERVER,
    PORT_UTILIZATION,
    RATE_SOLVE,
    Observer,
)
from repro.simnet.engine import Simulator
from repro.simnet.fairness import FairScheduler, LinkScheduler, solve_component
from repro.simnet.flows import Flow
from repro.simnet.incidence import FlowIncidence
from repro.simnet.kernels import (
    KernelComponent,
    component_specs,
    padded_cells,
    solve_batch,
)
from repro.simnet.routing import Router
from repro.simnet.telemetry import UtilizationRecorder
from repro.simnet.topology import Topology

_EPS = 1e-9

#: Padded work-array cell budget for the vector kernels; components
#: whose (links x max members-per-link) estimate exceeds this fall
#: back to the object solver rather than allocating a huge 2-D array.
_PAD_CELL_LIMIT = 32_000_000


@dataclass(frozen=True)
class RerouteReport:
    """Outcome of one link up/down transition.

    ``rerouted`` pairs each moved flow with the path it left; the flow
    itself already carries the new path.  ``stranded`` lists flows for
    which no route exists after the transition (network partition, or
    a downed NIC link): they stay on their dead path with zero usable
    capacity and stall until a recovery reroutes them.
    """

    link_id: str
    up: bool
    rerouted: Tuple[Tuple[Flow, Tuple[str, ...]], ...]
    stranded: Tuple[int, ...]

    @property
    def changed(self) -> bool:
        return bool(self.rerouted or self.stranded)


class FabricPolicy(Protocol):
    """What the fabric needs from an allocation policy.

    Policies may additionally expose a ``component_safe`` class
    attribute (default ``True``): set it to ``False`` when a link's
    allocation depends on globally-varying flow state (e.g. remaining
    bytes), which disables component-scoped solving and capacity
    caching for exactness.
    """

    name: str

    def attach(self, fabric: "FluidFabric") -> None:
        """Called once when installed; may set link efficiency, etc."""

    def scheduler_of(self, link_id: str) -> LinkScheduler:
        """Queueing discipline at ``link_id``."""

    def on_flow_started(self, flow: Flow) -> None:
        """A flow entered the network."""

    def on_flow_finished(self, flow: Flow) -> None:
        """A flow delivered its last byte."""


class _DefaultPolicy:
    """Per-flow fair queueing everywhere; no lifecycle behaviour."""

    name = "fair"

    def __init__(self) -> None:
        self._scheduler = FairScheduler()

    def attach(self, fabric: "FluidFabric") -> None:  # noqa: D102
        pass

    def scheduler_of(self, link_id: str) -> LinkScheduler:  # noqa: D102
        return self._scheduler

    def on_flow_started(self, flow: Flow) -> None:  # noqa: D102
        pass

    def on_flow_finished(self, flow: Flow) -> None:  # noqa: D102
        pass


class FluidFabric:
    """Event-driven fluid network simulation over a topology."""

    def __init__(
        self,
        topology: Topology,
        simulator: Optional[Simulator] = None,
        recorder: Optional[UtilizationRecorder] = None,
        validate: bool = False,
        completion_quantum: float = 0.0,
        observer: Optional[Observer] = None,
        incremental: bool = True,
        solver_backend: str = "object",
        vector_min_flows: int = 32,
        vector_min_batch: int = 256,
    ) -> None:
        """
        Args:
            topology: the network to simulate.
            simulator: shared event engine (one is created if absent).
            recorder: optional utilization telemetry sink.
            observer: observability sink (:mod:`repro.obs`); the no-op
                default keeps all instrumentation dormant.
            validate: after every rate recomputation, assert the
                physical invariants (no link over its line rate, no
                negative or cap-exceeding flow rate).  Costs a pass
                over all flows per event; intended for tests and
                debugging.
            completion_quantum: batch flow completions that fall within
                this many simulated seconds of an event into that
                event.  The default (0) is exact; large co-runs set a
                quantum a few orders of magnitude below stage durations
                so the near-simultaneous completions of a stage's
                symmetric flows cost one rate recomputation instead of
                dozens, at a completion-time error bounded by the
                quantum.
            incremental: re-solve only dirty congestion components
                (exact for component-safe policies).  ``False`` forces
                a full re-solve plus an eager advance of every active
                flow on each event -- the pre-incremental behaviour,
                kept as the benchmark baseline.
            solver_backend: ``"object"`` (default) keeps the pure
                Python solver everywhere -- its trajectories are
                bit-identical to the pre-kernel releases, which the
                pinned experiment recipes rely on.  ``"auto"`` solves
                large components -- or large dirty batches -- with
                the vectorized numpy kernels
                (:mod:`repro.simnet.kernels`) and everything else
                with the object solver; ``"vector"`` forces the
                kernels wherever the schedulers support them.  Kernel
                results match the object solver to ~1e-12 relative
                (reassociation noise only, DESIGN.md 5i); benchmarks
                and hyperscale runs opt into ``"auto"``/``"vector"``.
            vector_min_flows: in ``auto`` mode, a component solves on
                the vector backend once it has at least this many
                flows (below it, array setup costs more than the
                interpreter loop it replaces).
            vector_min_batch: in ``auto`` mode, when one recompute's
                dirty components together reach this many flows they
                are all batched into a single kernel invocation even
                if each is individually small.
        """
        if completion_quantum < 0:
            raise SimulationError("completion_quantum must be >= 0")
        if solver_backend not in ("auto", "vector", "object"):
            raise SimulationError(
                f"unknown solver backend {solver_backend!r}"
            )
        self.topology = topology
        self.router = Router(topology)
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.sim = (
            simulator if simulator is not None
            else Simulator(observer=self.observer)
        )
        if self.observer.enabled and not self.sim.observer.enabled:
            # Adopt a shared engine into this fabric's observer so
            # ``sim.*`` metrics land in the same registry.
            self.sim.observer = self.observer
        self.recorder = recorder
        self._last_port_util: Dict[str, float] = {}
        self.validate = validate
        self.completion_quantum = completion_quantum
        self.incremental = incremental
        self.solver_backend = solver_backend
        self.vector_min_flows = vector_min_flows
        self.vector_min_batch = vector_min_batch
        self.policy: FabricPolicy = _DefaultPolicy()
        self._component_safe = True
        self._active: Dict[int, Flow] = {}
        self.completed: List[Flow] = []
        self._completion_callbacks: Dict[int, List[Callable[[Flow], None]]] = {}
        # -- incremental-solve state -----------------------------------
        self._incidence = FlowIncidence()
        #: Dirty ports, in dirtying order (dict-as-ordered-set: string
        #: sets iterate in hash order, which is not reproducible).
        self._dirty_links: Dict[str, None] = {}
        self._dirty_all = True
        self._rates_dirty = True
        self._sched_cache: Dict[str, LinkScheduler] = {}
        #: link -> ((queue-table generation, throttle), usable capacity)
        self._caps_cache: Dict[str, Tuple[Tuple[int, float], float]] = {}
        self._link_used: Dict[str, float] = {}
        #: NIC egress link -> server, for telemetry sampling.
        self._nic_server: Dict[str, str] = {
            topology.nic_link(server).link_id: server
            for server in topology.servers
        }
        # -- lazy completion heap --------------------------------------
        self._seq = itertools.count()
        self._start_seq: Dict[int, int] = {}
        self._finish_heap: List[Tuple[float, int, int]] = []
        #: flow_id -> its live heap entry (None when undrained/absent);
        #: stale heap entries fail the identity check and are skipped.
        self._finish_key: Dict[int, Optional[Tuple[float, int, int]]] = {}
        # -- plain perf counters (bench reads these without an observer)
        self.loop_events = 0
        self.rate_recomputes = 0
        self.components_solved = 0
        self.flows_solved = 0
        self.vector_components = 0
        self.object_components = 0
        self.vector_seconds = 0.0
        self.object_seconds = 0.0

    # -- configuration -----------------------------------------------------

    def set_policy(self, policy: FabricPolicy) -> None:
        """Install the allocation policy (before or between runs)."""
        self.policy = policy
        policy.attach(self)
        self._component_safe = bool(getattr(policy, "component_safe", True))
        self._sched_cache.clear()
        self._caps_cache.clear()
        self.invalidate_rates()

    def invalidate_rates(self, link_ids: Optional[Iterable[str]] = None) -> None:
        """Force a rate recomputation at the next loop step.

        The Saba controller calls this after reprogramming queue
        tables, mirroring a switch configuration update taking effect.
        With ``link_ids`` only the congestion components touching
        those ports are re-solved; without, everything is.
        """
        if link_ids is None:
            self._dirty_all = True
        else:
            dirty = self._dirty_links
            for lid in link_ids:
                dirty[lid] = None
        self._rates_dirty = True

    # -- dynamic topology --------------------------------------------------

    def set_link_state(self, link_id: str, up: bool) -> RerouteReport:
        """Transition a link and reroute the flows it affects.

        On *down*: the routing cache entries traversing the link are
        invalidated and exactly the flows riding it are re-hashed onto
        the surviving equal-cost paths (other flows' paths remain
        shortest -- removing a link cannot improve a path that avoided
        it).  On *up*: the whole routing cache is invalidated and
        every active flow is re-hashed; flows whose canonical ECMP
        choice lies on the recovered link move back, so the
        path assignment converges to exactly what a fresh router over
        the repaired topology would pick -- the no-fault baseline.

        Rerouted flows keep their identity and remaining bytes
        (progress is materialised at the transition instant); both the
        old and new path links are marked dirty so the next event
        re-solves precisely the disturbed components.  A no-op
        transition (already in that state) returns an empty report.
        """
        changed = self.topology.set_link_up(link_id, up)
        if not changed:
            return RerouteReport(link_id, up, (), ())
        now = self.sim.now
        dirty = self._dirty_links
        dirty[link_id] = None
        if up:
            self.router.invalidate()
            candidates = sorted(
                self._active.values(), key=self._order_key
            )
        else:
            self.router.invalidate([link_id])
            candidates = sorted(
                self._incidence.flows_on(link_id), key=self._order_key
            )
        rerouted: List[Tuple[Flow, Tuple[str, ...]]] = []
        stranded: List[int] = []
        for flow in candidates:
            try:
                new_path = tuple(
                    self.router.path_for_flow(flow.src, flow.dst, flow.flow_id)
                )
            except RoutingError:
                stranded.append(flow.flow_id)
                continue
            old_path = tuple(flow.path)
            if new_path == old_path:
                continue
            flow.sync(now)
            self._incidence.remove(flow)
            flow.path = new_path
            self._incidence.add(flow)
            for lid in old_path:
                dirty[lid] = None
            for lid in new_path:
                dirty[lid] = None
            rerouted.append((flow, old_path))
        self._rates_dirty = True
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter(
                "fabric.link_ups" if up else "fabric.link_downs"
            ).inc()
            obs.emit(
                LINK_UP if up else LINK_DOWN, now, link=link_id,
                rerouted=len(rerouted), stranded=len(stranded),
            )
            if rerouted:
                obs.metrics.counter("fabric.flows_rerouted").inc(
                    len(rerouted)
                )
                for flow, old_path in rerouted:
                    obs.emit(
                        FLOW_REROUTED, now, flow_id=flow.flow_id,
                        app=flow.app, link=link_id, up=up,
                        old_path=list(old_path), new_path=list(flow.path),
                    )
            if stranded:
                obs.metrics.counter("fabric.flows_stranded").inc(
                    len(stranded)
                )
        return RerouteReport(link_id, up, tuple(rerouted), tuple(stranded))

    # -- flow lifecycle ------------------------------------------------------

    @property
    def active_flows(self) -> List[Flow]:
        return list(self._active.values())

    def start_flow(
        self,
        flow: Flow,
        on_complete: Optional[Callable[[Flow], None]] = None,
    ) -> Flow:
        """Inject a flow; routes it and marks its component dirty."""
        if flow.flow_id in self._active:
            raise SimulationError(f"flow {flow.flow_id} already active")
        if flow.done:
            raise SimulationError(f"flow {flow.flow_id} already complete")
        if not flow.path:
            flow.path = tuple(
                self.router.path_for_flow(flow.src, flow.dst, flow.flow_id)
            )
        flow.start_time = self.sim.now
        flow.last_update = self.sim.now
        self._active[flow.flow_id] = flow
        self._incidence.add(flow)
        self._start_seq[flow.flow_id] = next(self._seq)
        self._finish_key[flow.flow_id] = None
        dirty = self._dirty_links
        for lid in flow.path:
            dirty[lid] = None
        if on_complete is not None:
            self._completion_callbacks.setdefault(flow.flow_id, []).append(
                on_complete
            )
        self.policy.on_flow_started(flow)
        self._rates_dirty = True
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter("fabric.flows_started").inc()
            obs.emit(
                FLOW_STARTED, self.sim.now, flow_id=flow.flow_id,
                app=flow.app, pl=flow.pl, src=flow.src, dst=flow.dst,
                size=flow.size,
            )
        return flow

    def cancel_flow(self, flow_id: int) -> Flow:
        """Tear down an active flow before it drains (service
        ``conn_destroy``).

        The flow leaves the network at the current instant with its
        undelivered bytes still in ``remaining``; completion callbacks
        and policy hooks run exactly as for a natural completion, so
        connection managers announce the teardown to the controller
        the same way.
        """
        flow = self._active.get(flow_id)
        if flow is None:
            raise SimulationError(f"flow {flow_id} is not active")
        flow.sync(self.sim.now)
        self._finish_flow(flow)
        return flow

    def _finish_flow(self, flow: Flow) -> None:
        flow.finish_time = self.sim.now
        flow.rate = 0.0
        flow.last_update = self.sim.now
        del self._active[flow.flow_id]
        self._incidence.remove(flow)
        self._start_seq.pop(flow.flow_id, None)
        self._finish_key.pop(flow.flow_id, None)
        dirty = self._dirty_links
        for lid in flow.path:
            dirty[lid] = None
        self.completed.append(flow)
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter("fabric.flows_finished").inc()
            obs.metrics.histogram("fabric.fct_seconds").observe(
                flow.duration or 0.0
            )
            obs.emit(
                FLOW_FINISHED, self.sim.now, flow_id=flow.flow_id,
                app=flow.app, pl=flow.pl, size=flow.size,
                duration=flow.duration,
            )
        self.policy.on_flow_finished(flow)
        for callback in self._completion_callbacks.pop(flow.flow_id, []):
            callback(flow)
        self._rates_dirty = True

    # -- rate computation ---------------------------------------------------

    def _capacity_of(self, link_id: str, n_flows: int) -> float:
        return self.topology.link_states[link_id].effective_capacity(n_flows)

    def _usable_capacity(
        self, link_id: str, scheduler: LinkScheduler, members: List[Flow],
        use_cache: bool,
    ) -> float:
        """Scheduler-derated capacity, cached while the link is stable.

        A cache entry is valid only if the link was not dirtied (its
        flow population is unchanged) and its queue-table generation
        and throttle still match; component-unsafe policies bypass the
        cache entirely (their derating can depend on flow state).
        """
        state = self.topology.link_states[link_id]
        key = (self.topology.port_table(link_id).generation, state.throttle)
        if use_cache and link_id not in self._dirty_links:
            cached = self._caps_cache.get(link_id)
            if cached is not None and cached[0] == key:
                return cached[1]
        usable = scheduler.usable_capacity(
            state.effective_capacity(len(members)), members
        )
        if use_cache:
            self._caps_cache[link_id] = (key, usable)
        return usable

    def recompute_rates(self) -> None:
        """Re-solve every dirty congestion component.

        With ``incremental`` solving active this touches only the
        components reachable from dirtied ports; a full invalidation
        (or a component-unsafe policy) re-solves all components.  The
        per-component results are exactly what a joint solve produces
        (:func:`repro.simnet.fairness.network_rates` decomposes the
        same way).
        """
        obs = self.observer
        t0 = _time.perf_counter() if obs.enabled else 0.0
        now = self.sim.now
        scoped = self.incremental and self._component_safe
        full = self._dirty_all or not scoped
        incidence = self._incidence
        order_key = self._order_key
        seeds = incidence.links() if full else self._dirty_links
        components = incidence.components(seeds, order_key)
        changed: Dict[str, None] = {}
        link_used = self._link_used
        sched_cache = self._sched_cache
        scheduler_of = self.policy.scheduler_of
        n_flows_solved = 0
        # Backend selection: the vector kernels win once a component
        # (or the whole dirty batch, solved in one kernel invocation)
        # is large enough to amortise array setup; tiny components
        # keep the object solver and its exact numerics.
        backend = self.solver_backend
        total_flows = sum(len(cf) for cf, _ in components)
        pool_all = backend == "vector" or (
            backend == "auto" and total_flows >= self.vector_min_batch
        )
        vec_batch: List[KernelComponent] = []
        # Rates are applied strictly in component-discovery order after
        # every solve has finished, whichever backend produced them.
        # ``_rekey`` breaks completion-time ties with a global sequence
        # counter, so interleaving object-path application with a
        # deferred batch solve would reorder tied completions and change
        # trajectories even when every rate is identical.
        pending: List[
            Tuple[List[Flow], Dict[str, List[Flow]], Optional[Dict[int, float]]]
        ] = []
        obj_elapsed = 0.0
        for comp_flows, _comp_links in components:
            on_link: Dict[str, List[Flow]] = {}
            for flow in comp_flows:
                flow.sync(now)
                for lid in flow.path:
                    members = on_link.get(lid)
                    if members is None:
                        members = on_link[lid] = []
                    members.append(flow)
            schedulers: Dict[str, LinkScheduler] = {}
            caps: Dict[str, float] = {}
            for lid, members in on_link.items():
                scheduler = sched_cache.get(lid)
                if scheduler is None:
                    scheduler = sched_cache[lid] = scheduler_of(lid)
                schedulers[lid] = scheduler
                caps[lid] = self._usable_capacity(
                    lid, scheduler, members, scoped
                )
            n_flows_solved += len(comp_flows)
            if backend != "object" and (
                pool_all or len(comp_flows) >= self.vector_min_flows
            ) and padded_cells(on_link) <= _PAD_CELL_LIMIT:
                specs = component_specs(on_link, schedulers)
                if specs is not None:
                    vec_batch.append(
                        KernelComponent(comp_flows, on_link, caps, specs)
                    )
                    pending.append((comp_flows, on_link, None))
                    continue
            ts = _time.perf_counter()
            rates = solve_component(comp_flows, on_link, schedulers, caps)
            obj_elapsed += _time.perf_counter() - ts
            self.object_components += 1
            pending.append((comp_flows, on_link, rates))
        vec_elapsed = 0.0
        batch_rates: Dict[int, float] = {}
        if vec_batch:
            ts = _time.perf_counter()
            batch_rates = solve_batch(vec_batch)
            vec_elapsed = _time.perf_counter() - ts
            self.vector_components += len(vec_batch)
        for comp_flows, on_link, rates_opt in pending:
            self._apply_rates(
                comp_flows, on_link,
                batch_rates if rates_opt is None else rates_opt,
                now, changed,
            )
        self.object_seconds += obj_elapsed
        self.vector_seconds += vec_elapsed
        # Dirty ports that no longer carry flows (last flow finished,
        # or a reconfigured idle port) drop to zero utilization.
        for lid in self._dirty_links:
            if lid not in changed and link_used.get(lid, 0.0) != 0.0:
                link_used[lid] = 0.0
                changed[lid] = None
        if full:
            for lid, used in link_used.items():
                if used != 0.0 and incidence.count(lid) == 0:
                    link_used[lid] = 0.0
                    changed[lid] = None
        self._dirty_links.clear()
        self._dirty_all = False
        self._rates_dirty = False
        self.rate_recomputes += 1
        self.components_solved += len(components)
        self.flows_solved += n_flows_solved
        if self.validate:
            self._check_invariants(list(self._active.values()))
        self._sample_network_telemetry(changed)
        if obs.enabled:
            metrics = obs.metrics
            metrics.counter("fabric.rate_recomputes").inc()
            metrics.counter("fabric.components_solved").inc(len(components))
            size_hist = metrics.histogram("fabric.component_size")
            for comp_flows, _comp_links in components:
                size_hist.observe(len(comp_flows))
            elapsed = _time.perf_counter() - t0
            metrics.histogram("fabric.solver_seconds").observe(elapsed)
            if vec_batch:
                metrics.histogram("fabric.solver_seconds.vector").observe(
                    vec_elapsed
                )
                metrics.counter("fabric.vector_components").inc(
                    len(vec_batch)
                )
            if obj_elapsed > 0.0:
                metrics.histogram("fabric.solver_seconds.object").observe(
                    obj_elapsed
                )
            obs.emit(
                RATE_SOLVE, now, components=len(components),
                flows=n_flows_solved, links=len(changed), full=full,
                duration=elapsed, vector_components=len(vec_batch),
            )
            self._emit_port_utilization(changed)

    def _apply_rates(
        self,
        comp_flows: Sequence[Flow],
        on_link: Mapping[str, Sequence[Flow]],
        rates: Mapping[int, float],
        now: float,
        changed: Dict[str, None],
    ) -> None:
        """Scatter one component's solved rates back onto its flows
        and refresh the per-link usage totals."""
        link_used = self._link_used
        for flow in comp_flows:
            flow.rate = rates.get(flow.flow_id, 0.0)
            self._rekey(flow, now)
        for lid, members in on_link.items():
            used = 0.0
            for flow in members:
                used += flow.rate
            link_used[lid] = used
            changed[lid] = None

    def _order_key(self, flow: Flow) -> int:
        return self._start_seq[flow.flow_id]

    def _check_invariants(self, flows: List[Flow]) -> None:
        """Physical sanity of the current rate assignment."""
        link_used: Dict[str, float] = {}
        for flow in flows:
            if flow.rate < -1e-6:
                raise SimulationError(
                    f"flow {flow.flow_id} has negative rate {flow.rate}"
                )
            if flow.rate_cap is not None and flow.rate > flow.rate_cap * (
                1 + 1e-6
            ):
                raise SimulationError(
                    f"flow {flow.flow_id} exceeds its rate cap: "
                    f"{flow.rate} > {flow.rate_cap}"
                )
            for lid in flow.path:
                link_used[lid] = link_used.get(lid, 0.0) + flow.rate
        for lid, used in link_used.items():
            line_rate = self.topology.link_states[lid].link.capacity
            if used > line_rate * (1 + 1e-6):
                raise SimulationError(
                    f"link {lid} over line rate: {used} > {line_rate}"
                )

    def _emit_port_utilization(self, changed: Dict[str, None]) -> None:
        """Publish per-port utilization changes (observer enabled only).

        Rates are piecewise constant between events, so emitting on
        change yields an *exact* step series per port; the summarizer
        integrates it into time-weighted means.  Only links whose
        component was re-solved (or which drained) can have changed,
        so the maintained ``link_used`` totals replace the former
        walk over every flow's path.
        """
        obs = self.observer
        now = self.sim.now
        last = self._last_port_util
        for lid in sorted(changed):
            capacity = self.topology.link_states[lid].link.capacity
            util = self._link_used.get(lid, 0.0) / capacity
            if abs(util - last.get(lid, 0.0)) <= 1e-12:
                continue
            last[lid] = util
            obs.metrics.time_gauge(f"port.{lid}.utilization").set(util, now)
            obs.emit(
                PORT_UTILIZATION, now, link=lid, utilization=util,
                flows=self._incidence.count(lid),
            )

    def queue_occupancy(self, link_id: str) -> Dict[int, int]:
        """Active flows per queue at ``link_id``'s output port."""
        qtable = self.topology.port_table(link_id)
        return qtable.occupancy(
            flow.pl for flow in self._incidence.flows_on(link_id)
        )

    # -- read-only hooks for external checkers (repro.storm) ------------------

    def link_members(self, link_id: str) -> List[Flow]:
        """Active flows traversing ``link_id``, in start order."""
        return list(self._incidence.flows_on(link_id))

    def link_used_rate(self, link_id: str) -> float:
        """Sum of solved rates currently crossing ``link_id``."""
        return self._link_used.get(link_id, 0.0)

    def link_usable_capacity(self, link_id: str) -> float:
        """Scheduler-derated capacity of ``link_id`` right now.

        Computed fresh from the link state and current membership --
        never reads or writes the solver's capacity cache, so external
        invariant checkers cannot perturb a run.
        """
        members = list(self._incidence.flows_on(link_id))
        scheduler = self._sched_cache.get(link_id)
        if scheduler is None:
            scheduler = self.policy.scheduler_of(link_id)
        state = self.topology.link_states[link_id]
        return scheduler.usable_capacity(
            state.effective_capacity(len(members)), members
        )

    def _sample_network_telemetry(self, changed: Dict[str, None]) -> None:
        """Record NIC egress utilization for servers whose rate changed.

        A server's egress equals its NIC link's maintained usage total
        (only flows sourced at the server traverse its egress link).
        Unchanged links would re-record their previous value, which
        the step series treats identically, so they are skipped.
        """
        if self.recorder is None:
            return
        now = self.sim.now
        nic_server = self._nic_server
        for lid in changed:
            server = nic_server.get(lid)
            if server is None:
                continue
            capacity = self.topology.links[lid].capacity
            self.recorder.record_network(
                server, now, self._link_used.get(lid, 0.0) / capacity
            )

    # -- lazy completion heap -------------------------------------------------

    def _rekey(self, flow: Flow, now: float) -> None:
        """Refresh the flow's predicted completion after a rate change.

        ``flow`` must be synced at ``now``.  Undrained flows carry no
        heap entry (they cannot complete); superseded entries stay in
        the heap and are skipped via the identity check in
        ``_finish_key`` (lazy deletion).
        """
        fid = flow.flow_id
        drain = flow.drain_rate
        if drain <= 0.0:
            if flow.remaining <= _EPS:
                # Zero-rate but already drained to residue: due now.
                entry = (now, next(self._seq), fid)
                self._finish_key[fid] = entry
                heapq.heappush(self._finish_heap, entry)
            else:
                self._finish_key[fid] = None
            return
        entry = (now + flow.remaining / drain, next(self._seq), fid)
        self._finish_key[fid] = entry
        heapq.heappush(self._finish_heap, entry)

    def _peek_completion(self) -> Optional[float]:
        """Earliest predicted flow completion, or ``None``."""
        heap = self._finish_heap
        finish_key = self._finish_key
        while heap:
            entry = heap[0]
            if finish_key.get(entry[2]) is entry:
                return entry[0]
            heapq.heappop(heap)
        return None

    def _pop_finished(self, limit: float) -> List[Flow]:
        """Flows whose predicted completion is within ``limit``.

        Returned in start order, matching the active-dict scan the
        heap replaces (completion callbacks observe the same order).
        """
        heap = self._finish_heap
        finish_key = self._finish_key
        finished: List[Flow] = []
        while heap:
            entry = heap[0]
            fid = entry[2]
            if finish_key.get(fid) is not entry:
                heapq.heappop(heap)
                continue
            if entry[0] > limit:
                break
            heapq.heappop(heap)
            finish_key[fid] = None
            finished.append(self._active[fid])
        if len(finished) > 1:
            finished.sort(key=self._order_key)
        return finished

    def _compact_heap(self) -> None:
        """Drop superseded entries once they dominate the heap."""
        if len(self._finish_heap) <= 64 + 4 * len(self._active):
            return
        finish_key = self._finish_key
        live = [e for e in self._finish_heap if finish_key.get(e[2]) is e]
        heapq.heapify(live)
        self._finish_heap = live

    # -- event loop -----------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 10_000_000,
    ) -> float:
        """Advance until no flows and no timers remain (or ``until``).

        Returns the simulation time at exit.  Raises
        :class:`SimulationError` if flows exist but none can make
        progress (all rates zero with no pending timers), which would
        otherwise hang the loop.
        """
        eager = not (self.incremental and self._component_safe)
        events = 0
        while True:
            if events >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; livelock?"
                )
            if self._rates_dirty:
                self.recompute_rates()
                self._compact_heap()
                eager = not (self.incremental and self._component_safe)
            timer_t = self.sim.peek_time()
            flow_t = self._peek_completion()
            if timer_t is None and flow_t is None:
                if self._active:
                    raise SimulationError(
                        "active flows are stalled (zero rate) and no "
                        "timers are pending"
                    )
                break
            if flow_t is None:
                next_t = timer_t
            elif timer_t is None or flow_t < timer_t:
                next_t = flow_t
            else:
                next_t = timer_t
            if until is not None and next_t > until:
                self._sync_active(until)
                self.sim.advance_to(until)
                self.sim.report_metrics()
                return self.sim.now
            if eager:
                # Component-unsafe policies read remaining bytes
                # outside the solver; keep every flow materialised.
                self._sync_active(next_t)
            self.sim.advance_to(next_t)
            # Fire timer events scheduled at exactly next_t.
            self.sim.run_due(self.sim.now + _EPS)
            # Collect flow completions at this instant.  Floating-point
            # residue can leave a few bytes after the exact-completion
            # jump, so a flow counts as done when its residual would
            # drain within a nanosecond at its current rate -- or
            # within the configured completion quantum (event
            # batching; see the constructor).
            horizon = max(1e-9, self.completion_quantum)
            for flow in self._pop_finished(self.sim.now + horizon):
                flow.remaining = 0.0
                self._finish_flow(flow)
            events += 1
            self.loop_events += 1
        self.sim.report_metrics()
        return self.sim.now

    def _sync_active(self, now: float) -> None:
        """Materialise every active flow's progress at ``now``."""
        for flow in self._active.values():
            flow.sync(now)
