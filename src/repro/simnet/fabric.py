"""The fluid fabric: ties topology, routing, scheduling and the event
loop together.

Rates of fluid flows are piecewise constant between *events* (flow
start, flow completion, timer expiry, reconfiguration), so the
simulation is exact: on each event the fabric re-solves rates and
jumps straight to the next event.

The rate pipeline is *incremental*: a persistent flow↔link incidence
index (:mod:`repro.simnet.incidence`) partitions active flows into
congestion components, and an event re-solves only the components
containing dirtied flows or reconfigured ports -- allocation is
link-local, so link-disjoint components never interact and the
component-scoped solution equals the full one exactly (DESIGN.md 5d).
Per-link ``usable_capacity`` deratings are cached until the link's
flow population or queue programming changes, and flow completions
live in a lazy heap keyed by predicted finish time, so per-event work
is O(disturbed component + log n) instead of O(active flows × links).

Allocation policies plug in through two hooks:

* ``scheduler_of(link_id)`` -- the queueing discipline at each link
  (installed via :meth:`FluidFabric.set_policy`);
* flow lifecycle callbacks -- the policy (and the Saba library) learn
  about flow starts/completions to drive re-allocation.

A policy whose per-link allocation depends on state *outside* the
link's own flow population and queue programming -- e.g. Homa's
priority classes read each flow's continuously-draining ``remaining``
-- must set ``component_safe = False``; the fabric then advances all
flows eagerly and re-solves everything on each recomputation, exactly
reproducing the non-incremental behaviour.
"""

from __future__ import annotations

import itertools
import time as _time
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

import numpy as np

from repro.errors import RoutingError, SimulationError
from repro.obs.events import (
    FLOW_FINISHED,
    FLOW_REROUTED,
    FLOW_STARTED,
    LINK_DOWN,
    LINK_UP,
    NULL_OBSERVER,
    PORT_UTILIZATION,
    RATE_SOLVE,
    Observer,
)
from repro.simnet.engine import Simulator
from repro.simnet.fairness import FairScheduler, LinkScheduler, solve_component
from repro.simnet.flows import Flow
from repro.simnet.flowtable import FlowTable
from repro.simnet.incidence import (
    ArrayIncidence,
    ComponentBatch,
    FlowIncidence,
    _gather_ranges,
)
from repro.simnet.kernels import (
    KIND_FAIR,
    KIND_PRIO,
    KIND_WFQ,
    KernelComponent,
    PreparedBatch,
    component_specs,
    padded_cells,
    solve_batch,
    solve_maxmin_prepared,
    solve_residual_prepared,
)
from repro.simnet.routing import Router
from repro.simnet.telemetry import UtilizationRecorder
from repro.simnet.topology import Topology

_EPS = 1e-9

#: Padded work-array cell budget for the vector kernels; components
#: whose (links x max members-per-link) estimate exceeds this fall
#: back to the object solver rather than allocating a huge 2-D array.
_PAD_CELL_LIMIT = 32_000_000


@dataclass(frozen=True)
class RerouteReport:
    """Outcome of one link up/down transition.

    ``rerouted`` pairs each moved flow with the path it left; the flow
    itself already carries the new path.  ``stranded`` lists flows for
    which no route exists after the transition (network partition, or
    a downed NIC link): they stay on their dead path with zero usable
    capacity and stall until a recovery reroutes them.
    """

    link_id: str
    up: bool
    rerouted: Tuple[Tuple[Flow, Tuple[str, ...]], ...]
    stranded: Tuple[int, ...]

    @property
    def changed(self) -> bool:
        return bool(self.rerouted or self.stranded)


class FabricPolicy(Protocol):
    """What the fabric needs from an allocation policy.

    Policies may additionally expose a ``component_safe`` class
    attribute (default ``True``): set it to ``False`` when a link's
    allocation depends on globally-varying flow state (e.g. remaining
    bytes), which disables component-scoped solving and capacity
    caching for exactness.
    """

    name: str

    def attach(self, fabric: "FluidFabric") -> None:
        """Called once when installed; may set link efficiency, etc."""

    def scheduler_of(self, link_id: str) -> LinkScheduler:
        """Queueing discipline at ``link_id``."""

    def on_flow_started(self, flow: Flow) -> None:
        """A flow entered the network."""

    def on_flow_finished(self, flow: Flow) -> None:
        """A flow delivered its last byte."""


class _DefaultPolicy:
    """Per-flow fair queueing everywhere; no lifecycle behaviour."""

    name = "fair"

    def __init__(self) -> None:
        self._scheduler = FairScheduler()

    def attach(self, fabric: "FluidFabric") -> None:  # noqa: D102
        pass

    def scheduler_of(self, link_id: str) -> LinkScheduler:  # noqa: D102
        return self._scheduler

    def on_flow_started(self, flow: Flow) -> None:  # noqa: D102
        pass

    def on_flow_finished(self, flow: Flow) -> None:  # noqa: D102
        pass


class _LinkMembers(Sequence):
    """Lazy ``Sequence[Flow]`` over one batch link's pairs.

    Indexes the persistent batch axes on access: element ``i`` is the
    flow bound to slot ``slots[pair_flow[start + i]]``.  Iteration
    order is pair order -- identical to the eagerly-built member lists
    the object recompute hands schedulers, so ``usable_capacity`` and
    ``kernel_spec`` see the same flows in the same order either way.
    """

    __slots__ = ("_slots", "_pair_flow", "_start", "_n", "_flow_of")

    def __init__(
        self,
        slots: np.ndarray,
        pair_flow: np.ndarray,
        start: int,
        n: int,
        flow_of: List[Optional[Flow]],
    ) -> None:
        self._slots = slots
        self._pair_flow = pair_flow
        self._start = start
        self._n = n
        self._flow_of = flow_of

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._n))]
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError(index)
        flow = self._flow_of[
            int(self._slots[self._pair_flow[self._start + index]])
        ]
        assert flow is not None
        return flow

    def __iter__(self):
        flow_of = self._flow_of
        member_slots = self._slots[
            self._pair_flow[self._start : self._start + self._n]
        ].tolist()
        for slot in member_slots:
            flow = flow_of[slot]
            assert flow is not None
            yield flow


class FluidFabric:
    """Event-driven fluid network simulation over a topology."""

    def __init__(
        self,
        topology: Topology,
        simulator: Optional[Simulator] = None,
        recorder: Optional[UtilizationRecorder] = None,
        validate: bool = False,
        completion_quantum: float = 0.0,
        observer: Optional[Observer] = None,
        incremental: bool = True,
        solver_backend: str = "object",
        vector_min_flows: int = 32,
        vector_min_batch: int = 256,
        incidence_backend: str = "auto",
    ) -> None:
        """
        Args:
            topology: the network to simulate.
            simulator: shared event engine (one is created if absent).
            recorder: optional utilization telemetry sink.
            observer: observability sink (:mod:`repro.obs`); the no-op
                default keeps all instrumentation dormant.
            validate: after every rate recomputation, assert the
                physical invariants (no link over its line rate, no
                negative or cap-exceeding flow rate).  Costs a pass
                over all flows per event; intended for tests and
                debugging.
            completion_quantum: batch flow completions that fall within
                this many simulated seconds of an event into that
                event.  The default (0) is exact; large co-runs set a
                quantum a few orders of magnitude below stage durations
                so the near-simultaneous completions of a stage's
                symmetric flows cost one rate recomputation instead of
                dozens, at a completion-time error bounded by the
                quantum.
            incremental: re-solve only dirty congestion components
                (exact for component-safe policies).  ``False`` forces
                a full re-solve plus an eager advance of every active
                flow on each event -- the pre-incremental behaviour,
                kept as the benchmark baseline.
            solver_backend: ``"object"`` (default) keeps the pure
                Python solver everywhere -- its trajectories are
                bit-identical to the pre-kernel releases, which the
                pinned experiment recipes rely on.  ``"auto"`` solves
                large components -- or large dirty batches -- with
                the vectorized numpy kernels
                (:mod:`repro.simnet.kernels`) and everything else
                with the object solver; ``"vector"`` forces the
                kernels wherever the schedulers support them.  Kernel
                results match the object solver to ~1e-12 relative
                (reassociation noise only, DESIGN.md 5i); benchmarks
                and hyperscale runs opt into ``"auto"``/``"vector"``.
            vector_min_flows: in ``auto`` mode, a component solves on
                the vector backend once it has at least this many
                flows (below it, array setup costs more than the
                interpreter loop it replaces).
            vector_min_batch: in ``auto`` mode, when one recompute's
                dirty components together reach this many flows they
                are all batched into a single kernel invocation even
                if each is individually small.
            incidence_backend: which flow<->link index maintains the
                congestion components.  ``"object"`` is the dict-based
                :class:`~repro.simnet.incidence.FlowIncidence` whose
                recompute path walks Flow objects -- byte-identical to
                previous releases.  ``"array"`` is the persistent
                structure-of-arrays
                :class:`~repro.simnet.incidence.ArrayIncidence`:
                component discovery, CSR marshalling and rate scatter
                become vectorized gathers over persistent axes (same
                orderings, hence the same floating-point results as
                marshalling through objects).  ``"auto"`` (default)
                follows the solver: array-native when
                ``solver_backend`` is ``"auto"``/``"vector"``, object
                otherwise -- so the pinned object-backend goldens are
                untouched while kernel users get the fast path.
        """
        if completion_quantum < 0:
            raise SimulationError("completion_quantum must be >= 0")
        if solver_backend not in ("auto", "vector", "object"):
            raise SimulationError(
                f"unknown solver backend {solver_backend!r}"
            )
        if incidence_backend not in ("auto", "array", "object"):
            raise SimulationError(
                f"unknown incidence backend {incidence_backend!r}"
            )
        self.topology = topology
        self.router = Router(topology)
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.sim = (
            simulator if simulator is not None
            else Simulator(observer=self.observer)
        )
        if self.observer.enabled and not self.sim.observer.enabled:
            # Adopt a shared engine into this fabric's observer so
            # ``sim.*`` metrics land in the same registry.
            self.sim.observer = self.observer
        self.recorder = recorder
        self._last_port_util: Dict[str, float] = {}
        self.validate = validate
        self.completion_quantum = completion_quantum
        self.incremental = incremental
        self.solver_backend = solver_backend
        self.vector_min_flows = vector_min_flows
        self.vector_min_batch = vector_min_batch
        self.incidence_backend = incidence_backend
        self.policy: FabricPolicy = _DefaultPolicy()
        self._component_safe = True
        self._active: Dict[int, Flow] = {}
        self.completed: List[Flow] = []
        self._completion_callbacks: Dict[int, List[Callable[[Flow], None]]] = {}
        # -- array-native flow state -----------------------------------
        #: Structure-of-arrays store of per-flow runtime numbers; every
        #: active flow is bound to a slot, and the completion scan /
        #: lazy sync are vectorized passes over it (the former lazy
        #: completion heap lives in its ``finish_at`` column).
        self._table = FlowTable()
        self._seq = itertools.count()
        # -- incremental-solve state -----------------------------------
        self._array_incidence = incidence_backend == "array" or (
            incidence_backend == "auto"
            and solver_backend in ("auto", "vector")
        )
        self._incidence: "FlowIncidence | ArrayIncidence" = (
            ArrayIncidence(self._table)
            if self._array_incidence
            else FlowIncidence()
        )
        #: What ``incidence_backend`` resolved to after "auto"
        #: dispatch; bench payloads report this alongside the request.
        self.incidence_backend_resolved = (
            "array" if self._array_incidence else "object"
        )
        #: Dirty ports, in dirtying order (dict-as-ordered-set: string
        #: sets iterate in hash order, which is not reproducible).
        self._dirty_links: Dict[str, None] = {}
        self._dirty_all = True
        self._rates_dirty = True
        self._sched_cache: Dict[str, LinkScheduler] = {}
        #: Scheduler + uniform-fair flag per *interned* link index
        #: (array-incidence recompute hot loop: list indexing instead
        #: of dict lookups).  Grown lazily; reset with ``_sched_cache``.
        self._sched_by_gi: List[Optional[LinkScheduler]] = []
        self._fair_by_gi: List[bool] = []
        #: link -> ((queue-table generation, throttle), usable capacity)
        self._caps_cache: Dict[str, Tuple[Tuple[int, float], float]] = {}
        self._link_used: Dict[str, float] = {}
        #: NIC egress link -> server, for telemetry sampling.
        self._nic_server: Dict[str, str] = {
            topology.nic_link(server).link_id: server
            for server in topology.servers
        }
        # -- plain perf counters (bench reads these without an observer)
        self.loop_events = 0
        self.rate_recomputes = 0
        self.components_solved = 0
        self.flows_solved = 0
        self.vector_components = 0
        self.object_components = 0
        self.vector_seconds = 0.0
        self.object_seconds = 0.0
        #: Cumulative recompute time spent marshalling (component
        #: discovery, view/CSR/caps/spec assembly, rate scatter) vs in
        #: the numeric solves themselves; ``marshal + solve`` is the
        #: whole rate pipeline (validation and telemetry excluded).
        self.marshal_seconds = 0.0
        self.solve_seconds = 0.0

    # -- configuration -----------------------------------------------------

    def set_policy(self, policy: FabricPolicy) -> None:
        """Install the allocation policy (before or between runs)."""
        self.policy = policy
        policy.attach(self)
        self._component_safe = bool(getattr(policy, "component_safe", True))
        self._sched_cache.clear()
        self._sched_by_gi.clear()
        self._fair_by_gi.clear()
        self._caps_cache.clear()
        self.invalidate_rates()

    def invalidate_rates(self, link_ids: Optional[Iterable[str]] = None) -> None:
        """Force a rate recomputation at the next loop step.

        The Saba controller calls this after reprogramming queue
        tables, mirroring a switch configuration update taking effect.
        With ``link_ids`` only the congestion components touching
        those ports are re-solved; without, everything is.
        """
        if link_ids is None:
            self._dirty_all = True
        else:
            dirty = self._dirty_links
            for lid in link_ids:
                dirty[lid] = None
        self._rates_dirty = True

    # -- dynamic topology --------------------------------------------------

    def set_link_state(self, link_id: str, up: bool) -> RerouteReport:
        """Transition a link and reroute the flows it affects.

        On *down*: the routing cache entries traversing the link are
        invalidated and exactly the flows riding it are re-hashed onto
        the surviving equal-cost paths (other flows' paths remain
        shortest -- removing a link cannot improve a path that avoided
        it).  On *up*: the whole routing cache is invalidated and
        every active flow is re-hashed; flows whose canonical ECMP
        choice lies on the recovered link move back, so the
        path assignment converges to exactly what a fresh router over
        the repaired topology would pick -- the no-fault baseline.

        Rerouted flows keep their identity and remaining bytes
        (progress is materialised at the transition instant); both the
        old and new path links are marked dirty so the next event
        re-solves precisely the disturbed components.  A no-op
        transition (already in that state) returns an empty report.
        """
        changed = self.topology.set_link_up(link_id, up)
        if not changed:
            return RerouteReport(link_id, up, (), ())
        now = self.sim.now
        dirty = self._dirty_links
        dirty[link_id] = None
        if up:
            self.router.invalidate()
            candidates = sorted(
                self._active.values(), key=self._order_key
            )
        else:
            self.router.invalidate([link_id])
            candidates = sorted(
                self._incidence.flows_on(link_id), key=self._order_key
            )
        rerouted: List[Tuple[Flow, Tuple[str, ...]]] = []
        stranded: List[int] = []
        for flow in candidates:
            try:
                new_path = tuple(
                    self.router.path_for_flow(flow.src, flow.dst, flow.flow_id)
                )
            except RoutingError:
                stranded.append(flow.flow_id)
                continue
            old_path = tuple(flow.path)
            if new_path == old_path:
                continue
            flow.sync(now)
            self._incidence.remove(flow)
            flow.path = new_path
            self._incidence.add(flow)
            for lid in old_path:
                dirty[lid] = None
            for lid in new_path:
                dirty[lid] = None
            rerouted.append((flow, old_path))
        self._rates_dirty = True
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter(
                "fabric.link_ups" if up else "fabric.link_downs"
            ).inc()
            obs.emit(
                LINK_UP if up else LINK_DOWN, now, link=link_id,
                rerouted=len(rerouted), stranded=len(stranded),
            )
            if rerouted:
                obs.metrics.counter("fabric.flows_rerouted").inc(
                    len(rerouted)
                )
                for flow, old_path in rerouted:
                    obs.emit(
                        FLOW_REROUTED, now, flow_id=flow.flow_id,
                        app=flow.app, link=link_id, up=up,
                        old_path=list(old_path), new_path=list(flow.path),
                    )
            if stranded:
                obs.metrics.counter("fabric.flows_stranded").inc(
                    len(stranded)
                )
        return RerouteReport(link_id, up, tuple(rerouted), tuple(stranded))

    # -- flow lifecycle ------------------------------------------------------

    @property
    def active_flows(self) -> List[Flow]:
        return list(self._active.values())

    def start_flow(
        self,
        flow: Flow,
        on_complete: Optional[Callable[[Flow], None]] = None,
    ) -> Flow:
        """Inject a flow; routes it and marks its component dirty."""
        if flow.flow_id in self._active:
            raise SimulationError(f"flow {flow.flow_id} already active")
        if flow.done:
            raise SimulationError(f"flow {flow.flow_id} already complete")
        if not flow.path:
            flow.path = tuple(
                self.router.path_for_flow(flow.src, flow.dst, flow.flow_id)
            )
        flow.start_time = self.sim.now
        self._table.bind(flow, next(self._seq), self.sim.now)
        self._active[flow.flow_id] = flow
        self._incidence.add(flow)
        dirty = self._dirty_links
        for lid in flow.path:
            dirty[lid] = None
        if on_complete is not None:
            self._completion_callbacks.setdefault(flow.flow_id, []).append(
                on_complete
            )
        self.policy.on_flow_started(flow)
        self._rates_dirty = True
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter("fabric.flows_started").inc()
            obs.emit(
                FLOW_STARTED, self.sim.now, flow_id=flow.flow_id,
                app=flow.app, pl=flow.pl, src=flow.src, dst=flow.dst,
                size=flow.size,
            )
        return flow

    def cancel_flow(self, flow_id: int) -> Flow:
        """Tear down an active flow before it drains (service
        ``conn_destroy``).

        The flow leaves the network at the current instant with its
        undelivered bytes still in ``remaining``; completion callbacks
        and policy hooks run exactly as for a natural completion, so
        connection managers announce the teardown to the controller
        the same way.
        """
        flow = self._active.get(flow_id)
        if flow is None:
            raise SimulationError(f"flow {flow_id} is not active")
        flow.sync(self.sim.now)
        self._finish_flow(flow)
        return flow

    def _finish_flow(self, flow: Flow) -> None:
        flow.finish_time = self.sim.now
        flow.rate = 0.0
        flow.last_update = self.sim.now
        del self._active[flow.flow_id]
        self._incidence.remove(flow)
        self._table.unbind(flow)
        dirty = self._dirty_links
        for lid in flow.path:
            dirty[lid] = None
        self.completed.append(flow)
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter("fabric.flows_finished").inc()
            obs.metrics.histogram("fabric.fct_seconds").observe(
                flow.duration or 0.0
            )
            obs.emit(
                FLOW_FINISHED, self.sim.now, flow_id=flow.flow_id,
                app=flow.app, pl=flow.pl, size=flow.size,
                duration=flow.duration,
            )
        self.policy.on_flow_finished(flow)
        for callback in self._completion_callbacks.pop(flow.flow_id, []):
            callback(flow)
        self._rates_dirty = True

    # -- rate computation ---------------------------------------------------

    def _capacity_of(self, link_id: str, n_flows: int) -> float:
        return self.topology.link_states[link_id].effective_capacity(n_flows)

    def _usable_capacity(
        self, link_id: str, scheduler: LinkScheduler, members: List[Flow],
        use_cache: bool,
    ) -> float:
        """Scheduler-derated capacity, cached while the link is stable.

        A cache entry is valid only if the link was not dirtied (its
        flow population is unchanged) and its queue-table generation
        and throttle still match; component-unsafe policies bypass the
        cache entirely (their derating can depend on flow state).
        """
        state = self.topology.link_states[link_id]
        key = (self.topology.port_table(link_id).generation, state.throttle)
        if use_cache and link_id not in self._dirty_links:
            cached = self._caps_cache.get(link_id)
            if cached is not None and cached[0] == key:
                return cached[1]
        usable = scheduler.usable_capacity(
            state.effective_capacity(len(members)), members
        )
        if use_cache:
            self._caps_cache[link_id] = (key, usable)
        return usable

    def recompute_rates(self) -> None:
        """Re-solve every dirty congestion component.

        With ``incremental`` solving active this touches only the
        components reachable from dirtied ports; a full invalidation
        (or a component-unsafe policy) re-solves all components.  The
        per-component results are exactly what a joint solve produces
        (:func:`repro.simnet.fairness.network_rates` decomposes the
        same way).
        """
        if self._array_incidence:
            self._recompute_array()
            return
        obs = self.observer
        t0 = _time.perf_counter()
        now = self.sim.now
        scoped = self.incremental and self._component_safe
        full = self._dirty_all or not scoped
        incidence = self._incidence
        order_key = self._order_key
        seeds = incidence.links() if full else self._dirty_links
        components = incidence.components(seeds, order_key)
        changed: Dict[str, None] = {}
        link_used = self._link_used
        sched_cache = self._sched_cache
        scheduler_of = self.policy.scheduler_of
        n_flows_solved = 0
        # Backend selection: the vector kernels win once a component
        # (or the whole dirty batch, solved in one kernel invocation)
        # is large enough to amortise array setup; tiny components
        # keep the object solver and its exact numerics.
        backend = self.solver_backend
        total_flows = sum(len(cf) for cf, _ in components)
        pool_all = backend == "vector" or (
            backend == "auto" and total_flows >= self.vector_min_batch
        )
        vec_batch: List[KernelComponent] = []
        # Rates are applied strictly in component-discovery order after
        # every solve has finished, whichever backend produced them, so
        # the apply/refresh sequence is independent of which components
        # took the batched kernel path.
        pending: List[
            Tuple[List[Flow], Dict[str, List[Flow]], Optional[Dict[int, float]]]
        ] = []
        obj_elapsed = 0.0
        table = self._table
        for comp_flows, _comp_links in components:
            table.sync_slots(
                np.fromiter(
                    (f._slot for f in comp_flows),
                    dtype=np.int64,
                    count=len(comp_flows),
                ),
                now,
            )
            on_link: Dict[str, List[Flow]] = {}
            for flow in comp_flows:
                for lid in flow.path:
                    members = on_link.get(lid)
                    if members is None:
                        members = on_link[lid] = []
                    members.append(flow)
            schedulers: Dict[str, LinkScheduler] = {}
            caps: Dict[str, float] = {}
            for lid, members in on_link.items():
                scheduler = sched_cache.get(lid)
                if scheduler is None:
                    scheduler = sched_cache[lid] = scheduler_of(lid)
                schedulers[lid] = scheduler
                caps[lid] = self._usable_capacity(
                    lid, scheduler, members, scoped
                )
            n_flows_solved += len(comp_flows)
            if backend != "object" and (
                pool_all or len(comp_flows) >= self.vector_min_flows
            ) and padded_cells(on_link) <= _PAD_CELL_LIMIT:
                specs = component_specs(on_link, schedulers)
                if specs is not None:
                    vec_batch.append(
                        KernelComponent(comp_flows, on_link, caps, specs)
                    )
                    pending.append((comp_flows, on_link, None))
                    continue
            ts = _time.perf_counter()
            rates = solve_component(comp_flows, on_link, schedulers, caps)
            obj_elapsed += _time.perf_counter() - ts
            self.object_components += 1
            pending.append((comp_flows, on_link, rates))
        vec_elapsed = 0.0
        batch_rates: Dict[int, float] = {}
        if vec_batch:
            ts = _time.perf_counter()
            batch_rates = solve_batch(vec_batch)
            vec_elapsed = _time.perf_counter() - ts
            self.vector_components += len(vec_batch)
        for comp_flows, on_link, rates_opt in pending:
            self._apply_rates(
                comp_flows, on_link,
                batch_rates if rates_opt is None else rates_opt,
                now, changed,
            )
        self.object_seconds += obj_elapsed
        self.vector_seconds += vec_elapsed
        # Dirty ports that no longer carry flows (last flow finished,
        # or a reconfigured idle port) drop to zero utilization.
        for lid in self._dirty_links:
            if lid not in changed and link_used.get(lid, 0.0) != 0.0:
                link_used[lid] = 0.0
                changed[lid] = None
        if full:
            for lid, used in link_used.items():
                if used != 0.0 and incidence.count(lid) == 0:
                    link_used[lid] = 0.0
                    changed[lid] = None
        self._dirty_links.clear()
        self._dirty_all = False
        self._rates_dirty = False
        self.rate_recomputes += 1
        self.components_solved += len(components)
        self.flows_solved += n_flows_solved
        # Everything in the pipeline that is not a numeric solve is
        # marshalling: component discovery, sync, view/caps/spec
        # assembly, rate scatter and accumulator upkeep.
        solve_elapsed = obj_elapsed + vec_elapsed
        pipeline_elapsed = _time.perf_counter() - t0
        self.solve_seconds += solve_elapsed
        self.marshal_seconds += max(0.0, pipeline_elapsed - solve_elapsed)
        if self.validate:
            self._check_invariants(list(self._active.values()))
        self._sample_network_telemetry(changed)
        if obs.enabled:
            metrics = obs.metrics
            metrics.counter("fabric.rate_recomputes").inc()
            metrics.counter("fabric.components_solved").inc(len(components))
            size_hist = metrics.histogram("fabric.component_size")
            for comp_flows, _comp_links in components:
                size_hist.observe(len(comp_flows))
            elapsed = pipeline_elapsed
            metrics.histogram("fabric.solver_seconds").observe(elapsed)
            metrics.histogram("fabric.solver_seconds.marshal").observe(
                max(0.0, pipeline_elapsed - solve_elapsed)
            )
            metrics.histogram("fabric.solver_seconds.solve").observe(
                solve_elapsed
            )
            if vec_batch:
                metrics.histogram("fabric.solver_seconds.vector").observe(
                    vec_elapsed
                )
                metrics.counter("fabric.vector_components").inc(
                    len(vec_batch)
                )
            if obj_elapsed > 0.0:
                metrics.histogram("fabric.solver_seconds.object").observe(
                    obj_elapsed
                )
            obs.emit(
                RATE_SOLVE, now, components=len(components),
                flows=n_flows_solved, links=len(changed), full=full,
                duration=elapsed, vector_components=len(vec_batch),
            )
            self._emit_port_utilization(changed)

    def _members_of(self, batch: ComponentBatch, li: int) -> "_LinkMembers":
        """One batch link's member Flow sequence (pair order), lazily.

        Schedulers usually need only ``len()`` (capacity derating) or
        nothing at all, so Flow objects resolve on access instead of
        eagerly materialising 40 of them per link per recompute.
        """
        csr = batch.csr
        return _LinkMembers(
            batch.slots, csr.pair_flow,
            int(csr.link_starts[li]), int(csr.link_counts[li]),
            self._table.flow_of,
        )

    def _elementwise_entry(
        self, scheduler: LinkScheduler, batch_flows: List[Flow],
    ) -> Optional[Tuple[int, Optional[np.ndarray], Optional[np.ndarray]]]:
        """One elementwise scheduler's spec over the batch flow axis.

        Returns ``(kind code, per-flow group ids, per-flow weights)``,
        or ``None`` when the scheduler has no kernel form.  Weight
        values are computed exactly as the per-link extraction does
        (``weights[q]`` per member), so gathering sublists from these
        arrays reproduces the per-link arrays bit for bit.
        """
        extract = getattr(scheduler, "kernel_spec", None)
        if extract is None:
            return None
        spec = extract(batch_flows)
        if spec is None:
            return None
        skind, ids, weights = spec
        if skind == "fair":
            return (KIND_FAIR, None, None)
        if skind == "wfq":
            assert ids is not None and weights is not None
            return (
                KIND_WFQ,
                np.asarray(ids, dtype=np.int64),
                np.array([weights[q] for q in ids], dtype=np.float64),
            )
        if skind == "prio":
            assert ids is not None
            return (KIND_PRIO, np.asarray(ids, dtype=np.int64), None)
        raise SimulationError(f"unknown kernel spec kind {skind!r}")

    def _extract_specs(
        self,
        batch: ComponentBatch,
        nonfair: List[Tuple[int, LinkScheduler]],
        vec_comp: np.ndarray,
        kind: np.ndarray,
        qid: np.ndarray,
        qweight: np.ndarray,
    ) -> None:
        """Fill the discipline arrays for non-uniform-fair links.

        Elementwise schedulers (``kernel_spec_elementwise``: group id
        and weight are pure functions of the flow) are extracted once
        per scheduler instance over the whole batch flow axis and
        gathered into the pair-axis arrays -- per-link group lists are
        sublists of the per-flow mapping, so the values are identical
        to per-link extraction.  Non-elementwise schedulers keep the
        per-link ``kernel_spec`` call; a scheduler with no kernel form
        demotes its component to the object solver, exactly as the
        object-marshalled path does.
        """
        csr = batch.csr
        slots = batch.slots
        pair_flow = csr.pair_flow
        link_starts = csr.link_starts
        link_counts = csr.link_counts
        comp_of_link = csr.comp_of_link
        flow_of = self._table.flow_of
        batch_flows: Optional[List[Flow]] = None

        def all_flows() -> List[Flow]:
            nonlocal batch_flows
            if batch_flows is None:
                batch_flows = []
                for slot in slots.tolist():
                    flow = flow_of[slot]
                    assert flow is not None
                    batch_flows.append(flow)
            return batch_flows

        # Fast path: every non-fair link shares one elementwise
        # scheduler (the common policy shape -- a single WFQ/priority
        # instance fabric-wide) -> whole-axis gathers, no per-link
        # Python work.
        first = nonfair[0][1]
        if getattr(first, "kernel_spec_elementwise", False) and all(
            sched is first for _, sched in nonfair
        ):
            entry = self._elementwise_entry(first, all_flows())
            if entry is None:
                for li, _ in nonfair:
                    vec_comp[int(comp_of_link[li])] = False
                return
            kcode, flow_qid, flow_qw = entry
            if kcode == KIND_FAIR:
                return
            if len(nonfair) == csr.n_links:
                kind[:] = kcode
                assert flow_qid is not None
                qid[:] = flow_qid[pair_flow]
                if flow_qw is not None:
                    qweight[:] = flow_qw[pair_flow]
            else:
                lis = np.array([li for li, _ in nonfair], dtype=np.int64)
                pos = _gather_ranges(link_starts[lis], link_counts[lis])
                kind[lis] = kcode
                assert flow_qid is not None
                sub_pf = pair_flow[pos]
                qid[pos] = flow_qid[sub_pf]
                if flow_qw is not None:
                    qweight[pos] = flow_qw[sub_pf]
            return

        cache: Dict[
            int,
            Optional[Tuple[int, Optional[np.ndarray], Optional[np.ndarray]]],
        ] = {}
        for li, scheduler in nonfair:
            start = int(link_starts[li])
            n = int(link_counts[li])
            if getattr(scheduler, "kernel_spec_elementwise", False):
                sid = id(scheduler)
                if sid in cache:
                    entry = cache[sid]
                else:
                    entry = self._elementwise_entry(scheduler, all_flows())
                    cache[sid] = entry
                if entry is None:
                    vec_comp[int(comp_of_link[li])] = False
                    continue
                kcode, flow_qid, flow_qw = entry
                if kcode == KIND_FAIR:
                    continue
                pf = pair_flow[start : start + n]
                kind[li] = kcode
                assert flow_qid is not None
                qid[start : start + n] = flow_qid[pf]
                if flow_qw is not None:
                    qweight[start : start + n] = flow_qw[pf]
                continue
            extract = getattr(scheduler, "kernel_spec", None)
            spec = (
                extract(self._members_of(batch, li))
                if extract is not None else None
            )
            if spec is None:
                # A scheduler without a kernel form: this component
                # falls back to the object solver.
                vec_comp[int(comp_of_link[li])] = False
                continue
            skind, ids, weights = spec
            if skind == "fair":
                continue
            if skind == "wfq":
                assert ids is not None and weights is not None
                kind[li] = KIND_WFQ
                qid[start : start + n] = ids
                qweight[start : start + n] = [weights[q] for q in ids]
            elif skind == "prio":
                assert ids is not None
                kind[li] = KIND_PRIO
                qid[start : start + n] = ids
            else:  # pragma: no cover
                raise SimulationError(
                    f"unknown kernel spec kind {skind!r}"
                )

    def _recompute_array(self) -> None:
        """Array-native recompute: the :class:`ArrayIncidence` twin of
        :meth:`recompute_rates`.

        Discovery, CSR assembly and the rate scatter are gathers over
        the incidence's persistent axes; Python object materialisation
        happens only where the object contract genuinely needs it
        (capacity-cache misses, per-link kernel-spec extraction for
        non-uniform disciplines, and components solved by the object
        solver).  Orderings -- components by earliest flow, flows by
        start sequence, links by first use, members in start order --
        are identical to the object path, so per-flow results match
        the object-marshalled kernels bit for bit.
        """
        obs = self.observer
        t0 = _time.perf_counter()
        now = self.sim.now
        scoped = self.incremental and self._component_safe
        full = self._dirty_all or not scoped
        incidence = self._incidence
        assert isinstance(incidence, ArrayIncidence)
        table = self._table
        link_used = self._link_used
        changed: Dict[str, None] = {}
        batch = incidence.batch(
            None if full else list(self._dirty_links)
        )
        comp_sizes = np.zeros(0, dtype=np.int64)
        obj_elapsed = 0.0
        vec_elapsed = 0.0
        n_comps = 0
        n_flows_solved = 0
        n_vec_comps = 0
        if batch is not None:
            csr = batch.csr
            n_comps = batch.n_comps
            n_flows_solved = csr.n_flows
            slots = batch.slots
            table.sync_slots(slots, now)
            comp_sizes = batch.comp_flow_counts()
            # ---- marshal: caps, disciplines, backend choice ----------
            backend = self.solver_backend
            pool_all = backend == "vector" or (
                backend == "auto"
                and n_flows_solved >= self.vector_min_batch
            )
            if backend == "object":
                vec_comp = np.zeros(n_comps, dtype=bool)
            else:
                vec_comp = np.logical_or(
                    pool_all, comp_sizes >= self.vector_min_flows
                ) & (batch.padded_cells_per_comp() <= _PAD_CELL_LIMIT)
            n_links = csr.n_links
            gis = batch.link_axis.tolist()
            link_ids = incidence.link_ids
            lids = [link_ids[gi] for gi in gis]
            kind = np.zeros(n_links, dtype=np.int8)
            qid = np.zeros(csr.n_pairs, dtype=np.int64)
            qweight = np.zeros(csr.n_pairs)
            comp_of_link = csr.comp_of_link
            link_counts = csr.link_counts
            link_starts = csr.link_starts
            sched_cache = self._sched_cache
            scheduler_of = self.policy.scheduler_of
            caps_cache = self._caps_cache
            dirty = self._dirty_links
            link_states = self.topology.link_states
            port_table = self.topology.port_table
            pair_flow = csr.pair_flow
            flow_of = table.flow_of
            # Per-interned-link scheduler cache: plain list indexing in
            # the hot loop instead of a dict probe plus a getattr.
            sched_by_gi = self._sched_by_gi
            fair_by_gi = self._fair_by_gi
            if len(sched_by_gi) < len(link_ids):
                pad = len(link_ids) - len(sched_by_gi)
                sched_by_gi.extend([None] * pad)
                fair_by_gi.extend([False] * pad)
            caps_list = [0.0] * n_links
            cols = comp_of_link.tolist()
            vec_list = vec_comp.tolist()
            comp_fair_list = [True] * n_comps
            nonfair: List[Tuple[int, LinkScheduler]] = []
            for li in range(n_links):
                lid = lids[li]
                gi = gis[li]
                scheduler = sched_by_gi[gi]
                if scheduler is None:
                    scheduler = sched_cache.get(lid)
                    if scheduler is None:
                        scheduler = sched_cache[lid] = scheduler_of(lid)
                    sched_by_gi[gi] = scheduler
                    fair_by_gi[gi] = bool(
                        getattr(scheduler, "uniform_fair", False)
                    )
                state = link_states[lid]
                key = (port_table(lid).generation, state.throttle)
                usable = None
                if scoped and lid not in dirty:
                    cached = caps_cache.get(lid)
                    if cached is not None and cached[0] == key:
                        usable = cached[1]
                if usable is None:
                    n = int(link_counts[li])
                    usable = scheduler.usable_capacity(
                        state.effective_capacity(n),
                        _LinkMembers(
                            slots, pair_flow, int(link_starts[li]), n,
                            flow_of,
                        ),
                    )
                    if scoped:
                        caps_cache[lid] = (key, usable)
                caps_list[li] = usable
                if not vec_list[cols[li]]:
                    continue
                if fair_by_gi[gi]:
                    continue
                comp_fair_list[cols[li]] = False
                nonfair.append((li, scheduler))
            caps = np.asarray(caps_list)
            comp_fair = np.asarray(comp_fair_list, dtype=bool)
            if nonfair:
                self._extract_specs(
                    batch, nonfair, vec_comp, kind, qid, qweight,
                )
            # ---- solve: kernels on vector comps, objects on the rest
            rates = np.zeros(n_flows_solved)
            vec_idx = np.nonzero(vec_comp)[0]
            if len(vec_idx):
                fair_sel = vec_idx[comp_fair[vec_idx]]
                mixed_sel = vec_idx[~comp_fair[vec_idx]]
                for sel, disciplines in (
                    (fair_sel, False), (mixed_sel, True),
                ):
                    if not len(sel):
                        continue
                    if len(sel) == n_comps:
                        sub = batch
                        sub_caps = caps
                        sub_kind, sub_qid, sub_qw = kind, qid, qweight
                    else:
                        sub = batch.select(sel)
                        assert sub.parent_link_idx is not None
                        assert sub.parent_pair_idx is not None
                        sub_caps = caps[sub.parent_link_idx]
                        sub_kind = kind[sub.parent_link_idx]
                        sub_qid = qid[sub.parent_pair_idx]
                        sub_qw = qweight[sub.parent_pair_idx]
                    prepared = PreparedBatch(
                        csr=sub.csr,
                        caps=sub_caps,
                        limit=table.limit[sub.slots],
                        kind=sub_kind if disciplines else None,
                        qid=sub_qid if disciplines else None,
                        qweight=sub_qw if disciplines else None,
                    )
                    ts = _time.perf_counter()
                    solved = (
                        solve_residual_prepared(prepared)
                        if disciplines
                        else solve_maxmin_prepared(prepared)
                    )
                    vec_elapsed += _time.perf_counter() - ts
                    if sub is batch:
                        rates = solved
                    else:
                        assert sub.parent_flow_idx is not None
                        rates[sub.parent_flow_idx] = solved
                n_vec_comps = len(vec_idx)
                self.vector_components += n_vec_comps
            flow_of = table.flow_of
            for ci in np.nonzero(~vec_comp)[0].tolist():
                comp_flows = batch.comp_flows(ci)
                on_link = batch.comp_on_link(ci)
                schedulers = {
                    lid: sched_cache[lid] for lid in on_link
                }
                ls, le = batch.link_slice(ci)
                comp_caps = {
                    lids[li]: float(caps[li]) for li in range(ls, le)
                }
                ts = _time.perf_counter()
                comp_rates = solve_component(
                    comp_flows, on_link, schedulers, comp_caps
                )
                obj_elapsed += _time.perf_counter() - ts
                self.object_components += 1
                fs, fe = batch.flow_slice(ci)
                for i in range(fs, fe):
                    flow = flow_of[slots[i]]
                    assert flow is not None
                    rates[i] = comp_rates.get(flow.flow_id, 0.0)
            # ---- scatter-apply ---------------------------------------
            table.rate[slots] = rates
            table.update_finish(slots, now)
            # Per-link usage totals: sequential within-segment sums,
            # the same accumulation order as the object apply loop.
            used_now = np.add.reduceat(
                rates[csr.pair_flow], link_starts
            )
            for li in range(n_links):
                lid = lids[li]
                link_used[lid] = float(used_now[li])
                changed[lid] = None
        # ---- shared epilogue (mirrors the object recompute) ----------
        for lid in self._dirty_links:
            if lid not in changed and link_used.get(lid, 0.0) != 0.0:
                link_used[lid] = 0.0
                changed[lid] = None
        if full:
            for lid, used in link_used.items():
                if used != 0.0 and incidence.count(lid) == 0:
                    link_used[lid] = 0.0
                    changed[lid] = None
        self._dirty_links.clear()
        self._dirty_all = False
        self._rates_dirty = False
        self.rate_recomputes += 1
        self.components_solved += n_comps
        self.flows_solved += n_flows_solved
        solve_elapsed = obj_elapsed + vec_elapsed
        pipeline_elapsed = _time.perf_counter() - t0
        self.solve_seconds += solve_elapsed
        self.marshal_seconds += max(0.0, pipeline_elapsed - solve_elapsed)
        self.object_seconds += obj_elapsed
        self.vector_seconds += vec_elapsed
        if self.validate:
            self._check_invariants(list(self._active.values()))
        self._sample_network_telemetry(changed)
        if obs.enabled:
            metrics = obs.metrics
            metrics.counter("fabric.rate_recomputes").inc()
            metrics.counter("fabric.components_solved").inc(n_comps)
            size_hist = metrics.histogram("fabric.component_size")
            for size in comp_sizes.tolist():
                size_hist.observe(size)
            metrics.histogram("fabric.solver_seconds").observe(
                pipeline_elapsed
            )
            metrics.histogram("fabric.solver_seconds.marshal").observe(
                max(0.0, pipeline_elapsed - solve_elapsed)
            )
            metrics.histogram("fabric.solver_seconds.solve").observe(
                solve_elapsed
            )
            if n_vec_comps:
                metrics.histogram("fabric.solver_seconds.vector").observe(
                    vec_elapsed
                )
                metrics.counter("fabric.vector_components").inc(
                    n_vec_comps
                )
            if obj_elapsed > 0.0:
                metrics.histogram("fabric.solver_seconds.object").observe(
                    obj_elapsed
                )
            obs.emit(
                RATE_SOLVE, now, components=n_comps,
                flows=n_flows_solved, links=len(changed), full=full,
                duration=pipeline_elapsed, vector_components=n_vec_comps,
            )
            self._emit_port_utilization(changed)

    def _apply_rates(
        self,
        comp_flows: Sequence[Flow],
        on_link: Mapping[str, Sequence[Flow]],
        rates: Mapping[int, float],
        now: float,
        changed: Dict[str, None],
    ) -> None:
        """Scatter one component's solved rates back onto its flows
        and refresh the per-link usage totals."""
        link_used = self._link_used
        for flow in comp_flows:
            flow.rate = rates.get(flow.flow_id, 0.0)
        self._table.update_finish(
            np.fromiter(
                (f._slot for f in comp_flows),
                dtype=np.int64,
                count=len(comp_flows),
            ),
            now,
        )
        for lid, members in on_link.items():
            used = 0.0
            for flow in members:
                used += flow.rate
            link_used[lid] = used
            changed[lid] = None

    def _order_key(self, flow: Flow) -> int:
        return flow._seq

    def _check_invariants(self, flows: List[Flow]) -> None:
        """Physical sanity of the current rate assignment."""
        link_used: Dict[str, float] = {}
        for flow in flows:
            if flow.rate < -1e-6:
                raise SimulationError(
                    f"flow {flow.flow_id} has negative rate {flow.rate}"
                )
            if flow.rate_cap is not None and flow.rate > flow.rate_cap * (
                1 + 1e-6
            ):
                raise SimulationError(
                    f"flow {flow.flow_id} exceeds its rate cap: "
                    f"{flow.rate} > {flow.rate_cap}"
                )
            for lid in flow.path:
                link_used[lid] = link_used.get(lid, 0.0) + flow.rate
        for lid, used in link_used.items():
            line_rate = self.topology.link_states[lid].link.capacity
            if used > line_rate * (1 + 1e-6):
                raise SimulationError(
                    f"link {lid} over line rate: {used} > {line_rate}"
                )

    def _emit_port_utilization(self, changed: Dict[str, None]) -> None:
        """Publish per-port utilization changes (observer enabled only).

        Rates are piecewise constant between events, so emitting on
        change yields an *exact* step series per port; the summarizer
        integrates it into time-weighted means.  Only links whose
        component was re-solved (or which drained) can have changed,
        so the maintained ``link_used`` totals replace the former
        walk over every flow's path.
        """
        obs = self.observer
        now = self.sim.now
        last = self._last_port_util
        for lid in sorted(changed):
            capacity = self.topology.link_states[lid].link.capacity
            util = self._link_used.get(lid, 0.0) / capacity
            if abs(util - last.get(lid, 0.0)) <= 1e-12:
                continue
            last[lid] = util
            obs.metrics.time_gauge(f"port.{lid}.utilization").set(util, now)
            obs.emit(
                PORT_UTILIZATION, now, link=lid, utilization=util,
                flows=self._incidence.count(lid),
            )

    def queue_occupancy(self, link_id: str) -> Dict[int, int]:
        """Active flows per queue at ``link_id``'s output port."""
        qtable = self.topology.port_table(link_id)
        return qtable.occupancy(
            flow.pl for flow in self._incidence.flows_on(link_id)
        )

    # -- read-only hooks for external checkers (repro.storm) ------------------

    def link_members(self, link_id: str) -> List[Flow]:
        """Active flows traversing ``link_id``, in start order."""
        return list(self._incidence.flows_on(link_id))

    def link_used_rate(self, link_id: str) -> float:
        """Sum of solved rates currently crossing ``link_id``."""
        return self._link_used.get(link_id, 0.0)

    def link_usable_capacity(self, link_id: str) -> float:
        """Scheduler-derated capacity of ``link_id`` right now.

        Computed fresh from the link state and current membership --
        never reads or writes the solver's capacity cache, so external
        invariant checkers cannot perturb a run.
        """
        members = list(self._incidence.flows_on(link_id))
        scheduler = self._sched_cache.get(link_id)
        if scheduler is None:
            scheduler = self.policy.scheduler_of(link_id)
        state = self.topology.link_states[link_id]
        return scheduler.usable_capacity(
            state.effective_capacity(len(members)), members
        )

    def _sample_network_telemetry(self, changed: Dict[str, None]) -> None:
        """Record NIC egress utilization for servers whose rate changed.

        A server's egress equals its NIC link's maintained usage total
        (only flows sourced at the server traverse its egress link).
        Unchanged links would re-record their previous value, which
        the step series treats identically, so they are skipped.
        """
        if self.recorder is None:
            return
        now = self.sim.now
        nic_server = self._nic_server
        for lid in changed:
            server = nic_server.get(lid)
            if server is None:
                continue
            capacity = self.topology.links[lid].capacity
            self.recorder.record_network(
                server, now, self._link_used.get(lid, 0.0) / capacity
            )

    # -- array-native completion scan -----------------------------------------

    def _peek_completion(self) -> Optional[float]:
        """Earliest predicted flow completion, or ``None``."""
        return self._table.peek_finish()

    def _pop_finished(self, limit: float) -> List[Flow]:
        """Flows whose predicted completion is within ``limit``.

        Returned in start order, matching the active-dict scan the
        finish column replaces (completion callbacks observe the same
        order).
        """
        return self._table.pop_finished(limit)

    def _compact_table(self) -> None:
        """Shrink the slot space once free capacity dominates.

        Compaction renumbers slots; bound flows are re-pointed by the
        table itself and the incidence index remaps its slot arrays.
        """
        table = self._table
        if table.capacity <= 64 + 4 * table.n_active:
            return
        remap = table.compact()
        self._incidence.remap(remap)

    # -- event loop -----------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 10_000_000,
    ) -> float:
        """Advance until no flows and no timers remain (or ``until``).

        Returns the simulation time at exit.  Raises
        :class:`SimulationError` if flows exist but none can make
        progress (all rates zero with no pending timers), which would
        otherwise hang the loop.
        """
        eager = not (self.incremental and self._component_safe)
        events = 0
        while True:
            if events >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; livelock?"
                )
            if self._rates_dirty:
                self.recompute_rates()
                self._compact_table()
                eager = not (self.incremental and self._component_safe)
            timer_t = self.sim.peek_time()
            flow_t = self._peek_completion()
            if timer_t is None and flow_t is None:
                if self._active:
                    raise SimulationError(
                        "active flows are stalled (zero rate) and no "
                        "timers are pending"
                    )
                break
            if flow_t is None:
                next_t = timer_t
            elif timer_t is None or flow_t < timer_t:
                next_t = flow_t
            else:
                next_t = timer_t
            if until is not None and next_t > until:
                self._sync_active(until)
                self.sim.advance_to(until)
                self.sim.report_metrics()
                return self.sim.now
            if eager:
                # Component-unsafe policies read remaining bytes
                # outside the solver; keep every flow materialised.
                self._sync_active(next_t)
            self.sim.advance_to(next_t)
            # Fire timer events scheduled at exactly next_t.
            self.sim.run_due(self.sim.now + _EPS)
            # Collect flow completions at this instant.  Floating-point
            # residue can leave a few bytes after the exact-completion
            # jump, so a flow counts as done when its residual would
            # drain within a nanosecond at its current rate -- or
            # within the configured completion quantum (event
            # batching; see the constructor).
            horizon = max(1e-9, self.completion_quantum)
            for flow in self._pop_finished(self.sim.now + horizon):
                flow.remaining = 0.0
                self._finish_flow(flow)
            events += 1
            self.loop_events += 1
        self.sim.report_metrics()
        return self.sim.now

    def _sync_active(self, now: float) -> None:
        """Materialise every active flow's progress at ``now``."""
        self._table.sync_active(now)
