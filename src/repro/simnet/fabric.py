"""The fluid fabric: ties topology, routing, scheduling and the event
loop together.

Rates of fluid flows are piecewise constant between *events* (flow
start, flow completion, timer expiry, reconfiguration), so the
simulation is exact: on each event the fabric recomputes all rates via
:func:`repro.simnet.fairness.network_rates`, then jumps straight to
the next event.

Allocation policies plug in through two hooks:

* ``scheduler_of(link_id)`` -- the queueing discipline at each link
  (installed via :meth:`FluidFabric.set_policy`);
* flow lifecycle callbacks -- the policy (and the Saba library) learn
  about flow starts/completions to drive re-allocation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol

from repro.errors import SimulationError
from repro.obs.events import (
    FLOW_FINISHED,
    FLOW_STARTED,
    NULL_OBSERVER,
    PORT_UTILIZATION,
    Observer,
)
from repro.simnet.engine import Simulator
from repro.simnet.fairness import FairScheduler, LinkScheduler, network_rates
from repro.simnet.flows import Flow
from repro.simnet.routing import Router
from repro.simnet.telemetry import UtilizationRecorder
from repro.simnet.topology import Topology

_EPS = 1e-9


class FabricPolicy(Protocol):
    """What the fabric needs from an allocation policy."""

    name: str

    def attach(self, fabric: "FluidFabric") -> None:
        """Called once when installed; may set link efficiency, etc."""

    def scheduler_of(self, link_id: str) -> LinkScheduler:
        """Queueing discipline at ``link_id``."""

    def on_flow_started(self, flow: Flow) -> None:
        """A flow entered the network."""

    def on_flow_finished(self, flow: Flow) -> None:
        """A flow delivered its last byte."""


class _DefaultPolicy:
    """Per-flow fair queueing everywhere; no lifecycle behaviour."""

    name = "fair"

    def __init__(self) -> None:
        self._scheduler = FairScheduler()

    def attach(self, fabric: "FluidFabric") -> None:  # noqa: D102
        pass

    def scheduler_of(self, link_id: str) -> LinkScheduler:  # noqa: D102
        return self._scheduler

    def on_flow_started(self, flow: Flow) -> None:  # noqa: D102
        pass

    def on_flow_finished(self, flow: Flow) -> None:  # noqa: D102
        pass


class FluidFabric:
    """Event-driven fluid network simulation over a topology."""

    def __init__(
        self,
        topology: Topology,
        simulator: Optional[Simulator] = None,
        recorder: Optional[UtilizationRecorder] = None,
        validate: bool = False,
        completion_quantum: float = 0.0,
        observer: Optional[Observer] = None,
    ) -> None:
        """
        Args:
            topology: the network to simulate.
            simulator: shared event engine (one is created if absent).
            recorder: optional utilization telemetry sink.
            observer: observability sink (:mod:`repro.obs`); the no-op
                default keeps all instrumentation dormant.
            validate: after every rate recomputation, assert the
                physical invariants (no link over its line rate, no
                negative or cap-exceeding flow rate).  Costs a pass
                over all flows per event; intended for tests and
                debugging.
            completion_quantum: batch flow completions that fall within
                this many simulated seconds of an event into that
                event.  The default (0) is exact; large co-runs set a
                quantum a few orders of magnitude below stage durations
                so the near-simultaneous completions of a stage's
                symmetric flows cost one rate recomputation instead of
                dozens, at a completion-time error bounded by the
                quantum.
        """
        if completion_quantum < 0:
            raise SimulationError("completion_quantum must be >= 0")
        self.topology = topology
        self.router = Router(topology)
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.sim = (
            simulator if simulator is not None
            else Simulator(observer=self.observer)
        )
        if self.observer.enabled and not self.sim.observer.enabled:
            # Adopt a shared engine into this fabric's observer so
            # ``sim.*`` metrics land in the same registry.
            self.sim.observer = self.observer
        self.recorder = recorder
        self._last_port_util: Dict[str, float] = {}
        self.validate = validate
        self.completion_quantum = completion_quantum
        self.policy: FabricPolicy = _DefaultPolicy()
        self._active: Dict[int, Flow] = {}
        self.completed: List[Flow] = []
        self._completion_callbacks: Dict[int, List[Callable[[Flow], None]]] = {}
        self._rates_dirty = True

    # -- configuration -----------------------------------------------------

    def set_policy(self, policy: FabricPolicy) -> None:
        """Install the allocation policy (before or between runs)."""
        self.policy = policy
        policy.attach(self)
        self.invalidate_rates()

    def invalidate_rates(self) -> None:
        """Force a rate recomputation at the next loop step.

        The Saba controller calls this after reprogramming queue
        tables, mirroring a switch configuration update taking effect.
        """
        self._rates_dirty = True

    # -- flow lifecycle ------------------------------------------------------

    @property
    def active_flows(self) -> List[Flow]:
        return list(self._active.values())

    def start_flow(
        self,
        flow: Flow,
        on_complete: Optional[Callable[[Flow], None]] = None,
    ) -> Flow:
        """Inject a flow; routes it and marks rates dirty."""
        if flow.flow_id in self._active:
            raise SimulationError(f"flow {flow.flow_id} already active")
        if flow.done:
            raise SimulationError(f"flow {flow.flow_id} already complete")
        if not flow.path:
            flow.path = tuple(
                self.router.path_for_flow(flow.src, flow.dst, flow.flow_id)
            )
        flow.start_time = self.sim.now
        self._active[flow.flow_id] = flow
        if on_complete is not None:
            self._completion_callbacks.setdefault(flow.flow_id, []).append(
                on_complete
            )
        self.policy.on_flow_started(flow)
        self._rates_dirty = True
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter("fabric.flows_started").inc()
            obs.emit(
                FLOW_STARTED, self.sim.now, flow_id=flow.flow_id,
                app=flow.app, pl=flow.pl, src=flow.src, dst=flow.dst,
                size=flow.size,
            )
        return flow

    def _finish_flow(self, flow: Flow) -> None:
        flow.finish_time = self.sim.now
        flow.rate = 0.0
        del self._active[flow.flow_id]
        self.completed.append(flow)
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter("fabric.flows_finished").inc()
            obs.metrics.histogram("fabric.fct_seconds").observe(
                flow.duration or 0.0
            )
            obs.emit(
                FLOW_FINISHED, self.sim.now, flow_id=flow.flow_id,
                app=flow.app, pl=flow.pl, size=flow.size,
                duration=flow.duration,
            )
        self.policy.on_flow_finished(flow)
        for callback in self._completion_callbacks.pop(flow.flow_id, []):
            callback(flow)
        self._rates_dirty = True

    # -- rate computation ---------------------------------------------------

    def _capacity_of(self, link_id: str, n_flows: int) -> float:
        return self.topology.link_states[link_id].effective_capacity(n_flows)

    def recompute_rates(self) -> None:
        """Recompute all flow rates under the current policy."""
        flows = list(self._active.values())
        rates = network_rates(
            flows,
            capacity_of=self._capacity_of,
            scheduler_of=self.policy.scheduler_of,
        )
        for flow in flows:
            flow.rate = rates.get(flow.flow_id, 0.0)
        self._rates_dirty = False
        if self.validate:
            self._check_invariants(flows)
        self._sample_network_telemetry()
        if self.observer.enabled:
            self.observer.metrics.counter("fabric.rate_recomputes").inc()
            self._emit_port_utilization(flows)

    def _check_invariants(self, flows: List[Flow]) -> None:
        """Physical sanity of the current rate assignment."""
        link_used: Dict[str, float] = {}
        for flow in flows:
            if flow.rate < -1e-6:
                raise SimulationError(
                    f"flow {flow.flow_id} has negative rate {flow.rate}"
                )
            if flow.rate_cap is not None and flow.rate > flow.rate_cap * (
                1 + 1e-6
            ):
                raise SimulationError(
                    f"flow {flow.flow_id} exceeds its rate cap: "
                    f"{flow.rate} > {flow.rate_cap}"
                )
            for lid in flow.path:
                link_used[lid] = link_used.get(lid, 0.0) + flow.rate
        for lid, used in link_used.items():
            line_rate = self.topology.link_states[lid].link.capacity
            if used > line_rate * (1 + 1e-6):
                raise SimulationError(
                    f"link {lid} over line rate: {used} > {line_rate}"
                )

    def _emit_port_utilization(self, flows: List[Flow]) -> None:
        """Publish per-port utilization changes (observer enabled only).

        Rates are piecewise constant between events, so emitting on
        change yields an *exact* step series per port; the summarizer
        integrates it into time-weighted means.
        """
        obs = self.observer
        now = self.sim.now
        used: Dict[str, float] = {}
        flow_count: Dict[str, int] = {}
        for flow in flows:
            for lid in flow.path:
                used[lid] = used.get(lid, 0.0) + flow.rate
                flow_count[lid] = flow_count.get(lid, 0) + 1
        # Links that just drained must emit a final zero sample.
        watched = set(used) | {
            lid for lid, u in self._last_port_util.items() if u > 0.0
        }
        for lid in sorted(watched):
            capacity = self.topology.link_states[lid].link.capacity
            util = used.get(lid, 0.0) / capacity
            if abs(util - self._last_port_util.get(lid, 0.0)) <= 1e-12:
                continue
            self._last_port_util[lid] = util
            obs.metrics.time_gauge(f"port.{lid}.utilization").set(util, now)
            obs.emit(
                PORT_UTILIZATION, now, link=lid, utilization=util,
                flows=flow_count.get(lid, 0),
            )

    def queue_occupancy(self, link_id: str) -> Dict[int, int]:
        """Active flows per queue at ``link_id``'s output port."""
        qtable = self.topology.port_table(link_id)
        return qtable.occupancy(
            flow.pl for flow in self._active.values()
            if link_id in flow.path
        )

    def _sample_network_telemetry(self) -> None:
        if self.recorder is None:
            return
        egress: Dict[str, float] = {}
        for flow in self._active.values():
            egress[flow.src] = egress.get(flow.src, 0.0) + flow.rate
        for server in self.topology.servers:
            nic = self.topology.nic_link(server)
            util = egress.get(server, 0.0) / nic.capacity
            self.recorder.record_network(server, self.sim.now, util)

    # -- event loop -----------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 10_000_000,
    ) -> float:
        """Advance until no flows and no timers remain (or ``until``).

        Returns the simulation time at exit.  Raises
        :class:`SimulationError` if flows exist but none can make
        progress (all rates zero with no pending timers), which would
        otherwise hang the loop.
        """
        events = 0
        while True:
            if events >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; livelock?"
                )
            if self._rates_dirty:
                self.recompute_rates()
            timer_t = self.sim.peek_time()
            flow_dt = min(
                (f.time_to_finish() for f in self._active.values()),
                default=float("inf"),
            )
            flow_t = self.sim.now + flow_dt if flow_dt != float("inf") else None
            if timer_t is None and flow_t is None:
                if self._active:
                    raise SimulationError(
                        "active flows are stalled (zero rate) and no "
                        "timers are pending"
                    )
                break
            candidates = [t for t in (timer_t, flow_t) if t is not None]
            next_t = min(candidates)
            if until is not None and next_t > until:
                self._advance_flows(until - self.sim.now)
                self.sim.advance_to(until)
                self.sim.report_metrics()
                return self.sim.now
            if next_t == float("inf"):
                raise SimulationError(
                    "active flows are stalled (zero rate) and no timers "
                    "are pending"
                )
            self._advance_flows(next_t - self.sim.now)
            self.sim.advance_to(next_t)
            # Fire timer events scheduled at exactly next_t.
            while True:
                t = self.sim.peek_time()
                if t is None or t > self.sim.now + _EPS:
                    break
                self.sim.step()
            # Collect flow completions at this instant.  Floating-point
            # residue can leave a few bytes after the exact-completion
            # jump, so a flow counts as done when its residual would
            # drain within a nanosecond at its current rate -- or
            # within the configured completion quantum (event
            # batching; see the constructor).
            horizon = max(1e-9, self.completion_quantum)
            finished = [
                f
                for f in self._active.values()
                if f.remaining <= _EPS or f.time_to_finish() <= horizon
            ]
            for flow in finished:
                flow.remaining = 0.0
                self._finish_flow(flow)
            events += 1
        self.sim.report_metrics()
        return self.sim.now

    def _advance_flows(self, dt: float) -> None:
        if dt < 0:
            raise SimulationError(f"negative dt {dt}")
        if dt == 0:
            return
        for flow in self._active.values():
            flow.advance(dt)
