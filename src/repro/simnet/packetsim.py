"""Packet-level companion simulator for one output port.

The fluid fabric replaces packet queueing with instantaneous rate
sharing; this module provides the packet-granularity ground truth for
a single switch output port so the substitution can be *validated*
rather than assumed:

* :class:`DeficitRoundRobin` -- the classic byte-accurate realisation
  of weighted fair queueing (Shreedhar & Varghese), which is what
  "variations of WFQ" in datacenter switches (Section 5.2) actually
  implement.  Each queue accrues a quantum proportional to its weight
  per round and transmits packets against its deficit counter.
* :class:`StrictPriority` -- serves the lowest-numbered backlogged
  class first (the enforcement layer Homa/Sincronia assume).
* :class:`PortSimulator` -- drives a scheduler over simulated time,
  transmitting packets of registered flows and recording delivered
  bytes, so tests can compare measured throughput shares against the
  fluid schedulers' allocations.

Within a queue, flows are served round-robin (one packet per turn),
matching the fluid model's per-flow fairness inside a queue for
uniform packet sizes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

#: Default packet size: a jumbo-frame-ish MTU in bytes.
DEFAULT_PACKET_SIZE = 4096.0


@dataclass
class PacketFlow:
    """A flow feeding the simulated port.

    ``size`` is the total bytes to send (``None`` = backlogged
    forever); ``rate_cap`` paces the *source* in bytes/second
    (application-limited traffic), enforced by earliest-send times.
    """

    flow_id: int
    queue: int
    size: Optional[float] = None
    rate_cap: Optional[float] = None

    sent: float = field(default=0.0, init=False)
    finish_time: Optional[float] = field(default=None, init=False)

    def backlogged(self, now: float) -> bool:
        """Has traffic ready to transmit at ``now``?"""
        if self.size is not None and self.sent >= self.size:
            return False
        if self.rate_cap is not None and self.sent > self.rate_cap * now:
            return False  # source has not produced the next packet yet
        return True

    def exhausted(self) -> bool:
        return self.size is not None and self.sent >= self.size


class _QueueState:
    """One port queue: round-robin of its member flows."""

    def __init__(self, weight: float) -> None:
        self.weight = weight
        self.flows: Deque[PacketFlow] = deque()
        self.deficit = 0.0

    def backlogged_flow(self, now: float) -> Optional[PacketFlow]:
        """Next flow with traffic, rotating the round-robin ring."""
        for _ in range(len(self.flows)):
            flow = self.flows[0]
            self.flows.rotate(-1)
            if flow.backlogged(now):
                return flow
        return None

    def any_backlogged(self, now: float) -> bool:
        return any(f.backlogged(now) for f in self.flows)


class DeficitRoundRobin:
    """Byte-accurate WFQ approximation (DRR, Shreedhar & Varghese).

    ``quantum`` is the byte budget granted to a weight-1.0 queue per
    ring visit; a queue of weight w accrues ``w * quantum``.  The
    scheduler serves the visited queue until its deficit can no longer
    cover a packet, then moves on -- granting the quantum exactly once
    per visit (refilling the head queue repeatedly is the classic DRR
    implementation mistake, and monopolises the link).
    """

    def __init__(
        self,
        weights: Sequence[float],
        quantum: float = 2 * DEFAULT_PACKET_SIZE,
    ) -> None:
        if not weights:
            raise ValueError("need at least one queue")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        if quantum <= 0:
            raise ValueError("quantum must be > 0")
        self.queues = [_QueueState(w) for w in weights]
        self.quantum = quantum
        self._ring = deque(range(len(weights)))
        self._current: Optional[int] = None

    def _advance(self, now: float) -> bool:
        """Move to the next backlogged queue and grant its quantum."""
        for _ in range(len(self._ring)):
            q_index = self._ring[0]
            self._ring.rotate(-1)
            queue = self.queues[q_index]
            if queue.any_backlogged(now):
                queue.deficit += queue.weight * self.quantum
                self._current = q_index
                return True
            queue.deficit = 0.0  # idle queues do not hoard quantum
        self._current = None
        return False

    def next_packet(
        self, now: float, packet_size: float
    ) -> Optional[PacketFlow]:
        """Pick the flow whose packet transmits next (None if idle)."""
        # Each iteration either serves a packet or advances the ring;
        # one extra lap handles all-zero-weight corner cases.
        for _ in range(2 * len(self._ring) + 2):
            if self._current is None:
                if not self._advance(now):
                    return None
            queue = self.queues[self._current]
            if queue.deficit >= packet_size and queue.any_backlogged(now):
                flow = queue.backlogged_flow(now)
                queue.deficit -= packet_size
                return flow
            if not queue.any_backlogged(now):
                queue.deficit = 0.0
            self._current = None  # visit over: next queue, next quantum
        return None


class StrictPriority:
    """Lower queue index preempts higher (Homa/Sincronia enforcement)."""

    def __init__(self, n_classes: int) -> None:
        if n_classes < 1:
            raise ValueError("need at least one class")
        self.queues = [_QueueState(1.0) for _ in range(n_classes)]

    def next_packet(
        self, now: float, packet_size: float
    ) -> Optional[PacketFlow]:
        for queue in self.queues:
            if queue.any_backlogged(now):
                return queue.backlogged_flow(now)
        return None


class PortSimulator:
    """Transmit packets through a scheduler at line rate."""

    def __init__(
        self,
        scheduler,
        capacity: float,
        packet_size: float = DEFAULT_PACKET_SIZE,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        if packet_size <= 0:
            raise ValueError("packet_size must be > 0")
        self.scheduler = scheduler
        self.capacity = capacity
        self.packet_size = packet_size
        self.now = 0.0
        self.flows: List[PacketFlow] = []

    def add_flow(
        self,
        queue: int,
        size: Optional[float] = None,
        rate_cap: Optional[float] = None,
    ) -> PacketFlow:
        flow = PacketFlow(
            flow_id=len(self.flows), queue=queue, size=size,
            rate_cap=rate_cap,
        )
        self.scheduler.queues[queue].flows.append(flow)
        self.flows.append(flow)
        return flow

    def run(self, duration: float) -> Dict[int, float]:
        """Simulate ``duration`` seconds; returns bytes sent per flow."""
        end = self.now + duration
        tx_time = self.packet_size / self.capacity
        while self.now + tx_time <= end + 1e-12:
            flow = self.scheduler.next_packet(self.now, self.packet_size)
            if flow is None:
                # Idle: advance to the next instant a paced source has
                # produced a packet, or finish.
                next_ready = self._next_source_ready()
                if next_ready is None or next_ready >= end:
                    self.now = end
                    break
                self.now = max(self.now, next_ready)
                continue
            self.now += tx_time
            flow.sent += self.packet_size
            if flow.exhausted() and flow.finish_time is None:
                flow.finish_time = self.now
        return {f.flow_id: f.sent for f in self.flows}

    def _next_source_ready(self) -> Optional[float]:
        candidates = []
        for flow in self.flows:
            if flow.exhausted() or flow.rate_cap is None:
                continue
            candidates.append(flow.sent / flow.rate_cap)
        return min(candidates, default=None)

    def throughput_share(self, flow: PacketFlow) -> float:
        """Fraction of line rate this flow received so far."""
        if self.now <= 0:
            return 0.0
        return flow.sent / (self.capacity * self.now)
