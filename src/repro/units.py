"""Unit helpers used across the simulator.

All internal quantities use SI base units:

* time        -- seconds (float)
* data        -- bytes (float; fluid model, so fractional bytes are fine)
* rate        -- bytes per second (float)

The paper's hardware uses 56 Gbit/s InfiniBand FDR links, which we expose
as :data:`GBPS_56`.  Helper constructors make intent explicit at call
sites (``gbps(56)`` rather than ``56e9 / 8``).
"""

from __future__ import annotations

KB = 1024.0
MB = 1024.0 * KB
GB = 1024.0 * MB

MILLISECOND = 1e-3
MICROSECOND = 1e-6


def gbps(value: float) -> float:
    """Convert gigabits per second to bytes per second."""
    return value * 1e9 / 8.0


def mbps(value: float) -> float:
    """Convert megabits per second to bytes per second."""
    return value * 1e6 / 8.0


def to_gbps(rate_bytes_per_s: float) -> float:
    """Convert bytes per second back to gigabits per second."""
    return rate_bytes_per_s * 8.0 / 1e9


#: Link speed of the paper's testbed (ConnectX-3 FDR InfiniBand).
GBPS_56 = gbps(56)
