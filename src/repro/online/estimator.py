"""Online sensitivity estimation from live observation streams.

The offline profiler (Section 4) needs a dedicated per-application
profiling run before the controller can place the application in the
Eq. 2 solve -- a non-starter for a control plane admitting tenants
cold.  Söze-style systems show that per-flow weighted allocation can
be driven purely by in-network telemetry; this module learns the
Eq. 1 sensitivity curve ``D(b)`` *while the application runs*:

* each observation is an ``(achieved bandwidth fraction, observed
  slowdown)`` pair harvested from the cluster runtime's stage
  telemetry (:class:`repro.online.sampler.StageSampler`);
* per workload, a bounded sliding window of observations is re-fitted
  with the offline profiler's exact machinery
  (:func:`repro.core.sensitivity.fit_sensitivity_model`), with the
  monotone *and* convex constraints on so refitted models always stay
  inside the Eq. 2 water-filling solver's fast path;
* a Page-Hinkley detector watches the relative fit residuals; when the
  workload's behaviour drifts (dataset growth, phase change), the
  window is shrunk to the most recent samples so the next refit tracks
  the new regime instead of averaging across regimes;
* a confidence gate (sample count, observed-fraction spread, and the
  fit's ``r_squared``) decides when the online model is *trusted*.
  Until then the model provider falls back to the offline table entry
  or a conservative prior (:mod:`repro.online.provider`).

The estimator is deliberately fabric-agnostic: it holds no simulation
state, so one estimator can persist across many co-runs (the
``extension_online`` experiment reuses it across waves to show cold
applications converging).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.core.sensitivity import (
    LOW_FIT_R2,
    SensitivityModel,
    fit_sensitivity_model,
)
from repro.errors import ProfilingError
from repro.obs.events import (
    MODEL_LOW_FIT,
    NULL_OBSERVER,
    ONLINE_DRIFT,
    ONLINE_REFIT,
    ONLINE_SAMPLE,
    Observer,
)


@dataclass(frozen=True)
class EstimatorConfig:
    """Tuning knobs of the online estimator.

    Attributes:
        window: maximum observations retained per workload (sliding).
        min_samples: confidence gate -- observations required before a
            fit can be trusted.
        min_spread: confidence gate -- the observed bandwidth
            fractions must span at least this range; a fit through a
            near-vertical stack of samples at one fraction says
            nothing about the curve's shape.
        min_r_squared: confidence gate -- fits scoring below this are
            announced via ``model.low_fit`` and not trusted.
        degree: Eq. 1 polynomial degree for refits (reduced
            automatically while the window holds fewer than
            ``degree + 1`` samples).
        basis: regression basis, as in
            :func:`~repro.core.sensitivity.fit_sensitivity_model`.
        refit_interval: refit after every this many new observations
            (fits are milliseconds, but refitting on *every* sample
            would thrash the downstream weight/signature caches).
        drift_delta: Page-Hinkley insensitivity margin -- residual
            drift smaller than this is treated as noise.
        drift_threshold: Page-Hinkley trip level on the cumulative
            residual excess.
        shrink_to: observations kept (most recent) when drift trips.
        min_fraction: floor for observed bandwidth fractions
            (slowdowns diverge as b -> 0; the profiler's grid floor).
    """

    window: int = 64
    min_samples: int = 8
    min_spread: float = 0.10
    min_r_squared: float = LOW_FIT_R2
    degree: int = 3
    basis: str = "inverse"
    refit_interval: int = 4
    drift_delta: float = 0.05
    drift_threshold: float = 1.5
    shrink_to: int = 8
    min_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ProfilingError(f"window must be >= 2: {self.window}")
        if self.min_samples < 2:
            raise ProfilingError(
                f"min_samples must be >= 2: {self.min_samples}"
            )
        if not 0.0 < self.min_fraction < 1.0:
            raise ProfilingError(
                f"min_fraction must be in (0, 1): {self.min_fraction}"
            )
        if self.refit_interval < 1:
            raise ProfilingError(
                f"refit_interval must be >= 1: {self.refit_interval}"
            )
        if self.shrink_to < 2:
            raise ProfilingError(f"shrink_to must be >= 2: {self.shrink_to}")


class PageHinkley:
    """Page-Hinkley change detector on a stream of residuals.

    Tracks the running mean of the observed values and the cumulative
    sum of their excess over ``(mean + delta)``; a trip is declared
    when the cumulative sum rises more than ``threshold`` above its
    historical minimum -- the classic one-sided PH test for an upward
    mean shift, which is what a regime change looks like through the
    lens of fit residuals.
    """

    def __init__(self, delta: float = 0.05, threshold: float = 1.5) -> None:
        self.delta = delta
        self.threshold = threshold
        self.reset()

    def reset(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0

    def update(self, value: float) -> bool:
        """Feed one residual; returns ``True`` when drift is declared."""
        self._n += 1
        self._mean += (value - self._mean) / self._n
        self._cumulative += value - self._mean - self.delta
        self._minimum = min(self._minimum, self._cumulative)
        return (self._cumulative - self._minimum) > self.threshold


@dataclass
class _WorkloadState:
    """Everything the estimator knows about one workload."""

    samples: Deque[Tuple[float, float, float]]  # (time, fraction, slowdown)
    detector: PageHinkley
    model: Optional[SensitivityModel] = None
    trusted: bool = False
    samples_seen: int = 0
    refits: int = 0
    rejected_refits: int = 0
    drift_trips: int = 0
    since_refit: int = 0
    last_r_squared: Optional[float] = None


class OnlineSensitivityEstimator:
    """Re-fits each workload's ``D(b)`` incrementally from live samples.

    Thread one estimator through a run (or several consecutive runs)
    and feed it via :meth:`observe`.  Consumers read models through a
    :class:`~repro.online.provider.ModelProvider`; interested parties
    (the controller's PL-centroid refresh) can :meth:`subscribe` to be
    told which workloads' trusted models changed.
    """

    def __init__(
        self,
        config: Optional[EstimatorConfig] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        self.config = config if config is not None else EstimatorConfig()
        self.observer = observer if observer is not None else NULL_OBSERVER
        self._states: Dict[str, _WorkloadState] = {}
        self._epoch = 0
        self._listeners: List[Callable[[Set[str]], None]] = []

    # -- wiring -----------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Monotonic revision, bumped whenever any trusted model
        changes (model providers expose it so the allocation
        pipeline's weight and signature caches invalidate)."""
        return self._epoch

    def subscribe(
        self, callback: Callable[[Set[str]], None]
    ) -> Callable[[], None]:
        """Call ``callback(workloads)`` after trusted-model changes;
        returns an unsubscribe function."""
        self._listeners.append(callback)

        def unsubscribe() -> None:
            try:
                self._listeners.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    def _notify(self, workloads: Set[str]) -> None:
        self._epoch += 1
        for callback in list(self._listeners):
            callback(set(workloads))

    # -- ingestion --------------------------------------------------------

    def observe(
        self, workload: str, fraction: float, slowdown: float, time: float
    ) -> None:
        """Ingest one ``(achieved fraction, observed slowdown)`` sample.

        ``fraction`` is clamped to ``[min_fraction, 1]`` and
        ``slowdown`` floored at 1.0 (an application cannot run faster
        than unthrottled).  May trigger a drift trip and/or a refit;
        both are announced on the observer bus.
        """
        cfg = self.config
        fraction = min(max(float(fraction), cfg.min_fraction), 1.0)
        slowdown = max(1.0, float(slowdown))
        state = self._states.get(workload)
        if state is None:
            state = _WorkloadState(
                samples=deque(maxlen=cfg.window),
                detector=PageHinkley(cfg.drift_delta, cfg.drift_threshold),
            )
            self._states[workload] = state
        state.samples_seen += 1
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter("online.samples").inc()
            obs.emit(
                ONLINE_SAMPLE, time, workload=workload,
                fraction=fraction, slowdown=slowdown,
            )
        # Drift detection runs against the *current* trusted model's
        # prediction, before the sample joins the window -- a regime
        # change shows up as a run of one-sided residuals.
        if state.trusted and state.model is not None:
            predicted = state.model.predict(fraction)
            residual = abs(slowdown - predicted) / predicted
            if state.detector.update(residual):
                self._trip_drift(workload, state, time)
        state.samples.append((time, fraction, slowdown))
        state.since_refit += 1
        if (
            state.since_refit >= cfg.refit_interval
            and len(state.samples) >= 2
        ):
            self._refit(workload, state, time)

    def _trip_drift(
        self, workload: str, state: _WorkloadState, time: float
    ) -> None:
        """Regime change: keep only the freshest samples and force the
        next refit to start from the new regime's evidence."""
        cfg = self.config
        state.drift_trips += 1
        kept = list(state.samples)[-cfg.shrink_to:]
        state.samples.clear()
        state.samples.extend(kept)
        state.detector.reset()
        was_trusted = state.trusted
        state.trusted = False
        state.since_refit = cfg.refit_interval  # refit on this sample
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter("online.drift_trips").inc()
            obs.emit(
                ONLINE_DRIFT, time, workload=workload,
                window=len(state.samples), trips=state.drift_trips,
            )
        if was_trusted:
            self._notify({workload})

    # -- fitting ----------------------------------------------------------

    def _refit(
        self, workload: str, state: _WorkloadState, time: float
    ) -> None:
        cfg = self.config
        state.since_refit = 0
        samples = [(b, d) for _, b, d in state.samples]
        fractions = [b for b, _ in samples]
        spread = max(fractions) - min(fractions)
        degree = max(1, min(cfg.degree, len(samples) - 1))
        fitted: Optional[SensitivityModel] = None
        if spread > 1e-6:
            try:
                fitted = fit_sensitivity_model(
                    workload, samples, degree=degree, basis=cfg.basis,
                    monotone=True, convex=True,
                )
            except ProfilingError:
                fitted = None
        state.refits += 1
        r2 = fitted.r_squared if fitted is not None else None
        state.last_r_squared = r2
        trusted = (
            fitted is not None
            and len(samples) >= cfg.min_samples
            and spread >= cfg.min_spread
            and r2 is not None
            and r2 >= cfg.min_r_squared
        )
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter("online.refits").inc()
            obs.metrics.gauge(f"online.window.{workload}").set(
                float(len(samples))
            )
            obs.emit(
                ONLINE_REFIT, time, workload=workload,
                window=len(samples), spread=spread, degree=degree,
                r_squared=r2, trusted=trusted,
            )
            if fitted is not None and not trusted and (
                r2 is not None and r2 < cfg.min_r_squared
            ):
                obs.emit(
                    MODEL_LOW_FIT, time, workload=workload,
                    model=workload, r_squared=r2,
                    threshold=cfg.min_r_squared, source="online",
                )
        if not trusted:
            state.rejected_refits += 1
            if state.trusted:
                # Quality collapsed below the gate: revoke trust so
                # providers fall back to the offline entry / prior.
                state.trusted = False
                self._notify({workload})
            return
        assert fitted is not None
        changed = (
            state.model is None
            or fitted.coefficients != state.model.coefficients
            or fitted.fit_domain != state.model.fit_domain
        )
        state.model = fitted
        newly_trusted = not state.trusted
        state.trusted = True
        if changed or newly_trusted:
            self._notify({workload})

    # -- queries ----------------------------------------------------------

    def model_for(self, workload: str) -> Optional[SensitivityModel]:
        """The trusted online model, or ``None`` while the confidence
        gate holds (callers fall back to offline table / prior)."""
        state = self._states.get(workload)
        if state is None or not state.trusted:
            return None
        return state.model

    def workloads(self) -> List[str]:
        """Workloads for which observations have been seen."""
        return sorted(self._states)

    def window_of(self, workload: str) -> List[Tuple[float, float, float]]:
        """The current sample window (time, fraction, slowdown)."""
        state = self._states.get(workload)
        return list(state.samples) if state is not None else []

    def stats_of(self, workload: str) -> Dict[str, object]:
        """Counters for one workload (tests, experiment reporting)."""
        state = self._states.get(workload)
        if state is None:
            return {
                "samples_seen": 0, "window": 0, "refits": 0,
                "rejected_refits": 0, "drift_trips": 0, "trusted": False,
                "r_squared": None,
            }
        return {
            "samples_seen": state.samples_seen,
            "window": len(state.samples),
            "refits": state.refits,
            "rejected_refits": state.rejected_refits,
            "drift_trips": state.drift_trips,
            "trusted": state.trusted,
            "r_squared": state.last_r_squared,
        }

    def stats(self) -> Dict[str, Dict[str, object]]:
        """Per-workload counters, sorted by workload name."""
        return {w: self.stats_of(w) for w in self.workloads()}
