"""The model-provider seam between the controller and its models.

The controller used to read Eq. 1 models straight out of a
:class:`~repro.core.table.SensitivityTable`; online estimation needs
that lookup to be a policy, not a dictionary access.  A
:class:`ModelProvider` answers three questions:

* ``has_model(workload)`` -- may this workload register at all?
* ``model_of(workload)`` -- the model to use for it *right now*;
* ``epoch`` -- a monotonic revision that changes whenever any answer
  to ``model_of`` may have changed.

``epoch`` is load-bearing: the allocation pipeline's weight and
per-port signature caches are keyed on the controller view's epoch,
and online refits change model *coefficients* without changing model
*names* -- without the provider epoch folded in, a refit would be
invisible to the caches and stale weights would keep being enforced.

Three implementations:

* :class:`OfflineModelProvider` -- the classic table, epoch pinned at
  0 (offline-only runs stay bit-identical to the pre-provider code);
* :class:`OnlineModelProvider` -- trusted online fit, else prior;
* :class:`HybridModelProvider` -- trusted online fit, else offline
  table entry, else prior.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol, runtime_checkable

from repro.core.sensitivity import SensitivityModel
from repro.core.table import SensitivityTable
from repro.obs.events import NULL_OBSERVER, ONLINE_FALLBACK, Observer
from repro.online.estimator import OnlineSensitivityEstimator
from repro.online.prior import conservative_prior


@runtime_checkable
class ModelProvider(Protocol):
    """What the controller needs from a source of sensitivity models."""

    @property
    def epoch(self) -> int:
        """Monotonic revision; bumps whenever any model may change."""
        ...

    def has_model(self, workload: str) -> bool:
        """Whether an application of ``workload`` may register."""
        ...

    def model_of(self, workload: str) -> SensitivityModel:
        """The model to allocate ``workload`` with right now."""
        ...


class OfflineModelProvider:
    """The pre-provider behaviour: models come from the table, period.

    ``epoch`` is always 0, so a controller view's combined epoch
    reduces to the controller's own -- offline runs are bit-identical
    to the code before the provider seam existed.
    """

    def __init__(self, table: SensitivityTable) -> None:
        self.table = table

    @property
    def epoch(self) -> int:
        return 0

    def has_model(self, workload: str) -> bool:
        return workload in self.table

    def model_of(self, workload: str) -> SensitivityModel:
        return self.table.get(workload)


class _EstimatorBacked:
    """Shared online-first lookup with fallback accounting."""

    def __init__(
        self,
        estimator: OnlineSensitivityEstimator,
        table: Optional[SensitivityTable] = None,
        prior_of: Optional[Callable[[str], SensitivityModel]] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        self.estimator = estimator
        self.table = table
        self.prior_of = prior_of if prior_of is not None else conservative_prior
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.lookups = 0
        self.fallbacks = 0
        self._priors: Dict[str, SensitivityModel] = {}
        self._announced: set = set()

    @property
    def epoch(self) -> int:
        return self.estimator.epoch

    def has_model(self, workload: str) -> bool:
        # Cold registration is the whole point: any workload can
        # register; untrusted ones are just served a fallback.
        return True

    @property
    def fallback_ratio(self) -> float:
        """Fraction of ``model_of`` calls served by a fallback source
        (offline table entry or prior) instead of a trusted online
        fit.  1.0 before any lookups -- "all fallback" is the honest
        description of a provider nobody has consulted."""
        if self.lookups == 0:
            return 1.0
        return self.fallbacks / self.lookups

    def model_of(self, workload: str) -> SensitivityModel:
        self.lookups += 1
        fitted = self.estimator.model_for(workload)
        if fitted is not None:
            self._announced.discard(workload)
            return fitted
        self.fallbacks += 1
        obs = self.observer
        if obs.enabled:
            obs.metrics.counter("online.provider_fallbacks").inc()
            if workload not in self._announced:
                # Announce the *transition* to fallback once per
                # workload, not every lookup: model_of runs inside the
                # per-port allocation loop and would flood the trace.
                self._announced.add(workload)
                source = (
                    "table"
                    if self.table is not None and workload in self.table
                    else "prior"
                )
                obs.emit(ONLINE_FALLBACK, 0.0, workload=workload,
                         source=source)
        if self.table is not None and workload in self.table:
            return self.table.get(workload)
        prior = self._priors.get(workload)
        if prior is None:
            prior = self._priors[workload] = self.prior_of(workload)
        return prior

    def stats(self) -> Dict[str, float]:
        return {
            "lookups": self.lookups,
            "fallbacks": self.fallbacks,
            "fallback_ratio": self.fallback_ratio,
        }


class OnlineModelProvider(_EstimatorBacked):
    """Trusted online fit, else prior -- no offline profiling at all."""

    def __init__(
        self,
        estimator: OnlineSensitivityEstimator,
        prior_of: Optional[Callable[[str], SensitivityModel]] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        super().__init__(estimator, table=None, prior_of=prior_of,
                         observer=observer)


class HybridModelProvider(_EstimatorBacked):
    """Trusted online fit, else offline table entry, else prior.

    The recommended production arrangement: profiled workloads keep
    their offline models until the live fit earns trust, unprofiled
    tenants ride the prior meanwhile.
    """

    def __init__(
        self,
        estimator: OnlineSensitivityEstimator,
        table: SensitivityTable,
        prior_of: Optional[Callable[[str], SensitivityModel]] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        super().__init__(estimator, table=table, prior_of=prior_of,
                         observer=observer)
