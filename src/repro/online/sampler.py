"""Harvesting (fraction, slowdown) samples from live stage telemetry.

The estimator wants ``(achieved bandwidth fraction, observed
slowdown)`` pairs; the cluster runtime announces ``stage.started`` /
``stage.finished`` on the observer bus.  :class:`StageSampler` bridges
the two:

* **slowdown** -- the observed stage duration divided by the stage
  model's unthrottled duration ``duration_at(B)``.  This is exactly
  the quantity the offline profiler measures, just per-stage and in
  situ instead of per-run on a dedicated pod.
* **achieved fraction** -- inverted from the flow-level physics: a
  network-bound stage spends ``duration - flow_release_offset()``
  transferring ``comm_bytes``, so the harmonic-mean effective rate is
  ``comm_bytes / comm_time``; subtracting the stage's auxiliary drain
  and dividing by link capacity yields the bandwidth fraction the
  network actually granted.  When a :class:`UtilizationRecorder` is
  attached, the fraction is instead read off the NIC telemetry as the
  mean network utilization of the job's servers over the
  communication window (valid when the job does not share servers --
  NIC counters cannot attribute bytes to tenants).

Stages that finish at (or within ``tol`` of) their unthrottled
duration are recorded as ``(1.0, 1.0)``: the network demonstrably did
not slow them, and ``D(1) = 1`` holds by definition, so the sample
anchors the fit's full-bandwidth end exactly like the profiler's
``b = 1`` grid point.  Compute-only stages and single-instance jobs
are skipped outright -- they carry no bandwidth signal at any
fraction, so even the ``(1.0, 1.0)`` anchor would be unearned.

The sampler must be told about jobs up front (:meth:`register_job`):
the bus events carry identifiers and byte counts, not full stage
specs, and the inversion needs ``overlap`` / ``rate_cap`` /
``aux_rate``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.cluster.jobs import Job
from repro.obs.events import (
    STAGE_FINISHED,
    STAGE_STARTED,
    EventRecord,
    Observer,
)
from repro.online.estimator import OnlineSensitivityEstimator
from repro.simnet.telemetry import UtilizationRecorder
from repro.units import GBPS_56


class StageSampler:
    """Turns stage lifecycle events into estimator observations."""

    def __init__(
        self,
        estimator: OnlineSensitivityEstimator,
        link_capacity: float = GBPS_56,
        recorder: Optional[UtilizationRecorder] = None,
        tol: float = 1e-6,
    ) -> None:
        if link_capacity <= 0:
            raise ValueError(f"link_capacity must be > 0: {link_capacity}")
        self.estimator = estimator
        self.link_capacity = link_capacity
        self.recorder = recorder
        self.tol = tol
        self._jobs: Dict[str, Job] = {}
        # (job_id, instance-or-None, stage index) -> start time
        self._starts: Dict[Tuple[str, Optional[int], int], float] = {}
        self.samples = 0
        self.skipped = 0

    # -- wiring -----------------------------------------------------------

    def register_job(self, job: Job) -> None:
        """Declare a job the sampler should learn from.  Events for
        unregistered jobs are ignored (counted in ``skipped``)."""
        self._jobs[job.job_id] = job

    def attach(self, observer: Observer) -> Callable[[], None]:
        """Subscribe to the observer's bus; returns unsubscribe."""
        return observer.bus.subscribe(
            self._on_event, types=[STAGE_STARTED, STAGE_FINISHED]
        )

    # -- event handling ---------------------------------------------------

    def _on_event(self, record: EventRecord) -> None:
        fields = record.fields
        job_id = fields.get("job")
        stage_index = fields.get("stage")
        if not isinstance(job_id, str) or not isinstance(stage_index, int):
            return
        key = (job_id, fields.get("instance"), stage_index)
        if record.type == STAGE_STARTED:
            self._starts[key] = record.time
            return
        start = self._starts.pop(key, None)
        job = self._jobs.get(job_id)
        if start is None or job is None:
            self.skipped += 1
            return
        sample = self._derive_sample(job, stage_index, start, record.time)
        if sample is None:
            self.skipped += 1
            return
        fraction, slowdown = sample
        self.samples += 1
        self.estimator.observe(job.workload, fraction, slowdown, record.time)

    def _derive_sample(
        self, job: Job, stage_index: int, start: float, finish: float
    ) -> Optional[Tuple[float, float]]:
        spec = job.spec
        if not 0 <= stage_index < len(spec.stages):
            return None
        stage = spec.stages[stage_index]
        if stage.comm_bytes <= 0 or spec.n_instances < 2:
            return None  # no bandwidth signal at any fraction
        duration = finish - start
        ideal = stage.duration_at(self.link_capacity)
        if duration <= 0 or ideal <= 0:
            return None
        slowdown = duration / ideal
        if slowdown <= 1.0 + self.tol:
            # The network never visibly slowed this stage; the only
            # honest placement is the exact D(1) = 1 anchor.
            return 1.0, 1.0
        release = stage.flow_release_offset()
        comm_time = duration - release
        if comm_time <= 0:
            return None
        if self.recorder is not None:
            fraction = self._telemetry_fraction(
                job, start + release, finish
            )
        else:
            net_rate = stage.comm_bytes / comm_time - stage.aux_rate
            if net_rate <= 0:
                return None
            fraction = net_rate / self.link_capacity
        return min(1.0, fraction), slowdown

    def _telemetry_fraction(
        self, job: Job, t_start: float, t_end: float
    ) -> float:
        assert self.recorder is not None
        means = [
            self.recorder.window_mean(server, "network", t_start, t_end)
            for server in job.placement
        ]
        return max(means) if means else 0.0
