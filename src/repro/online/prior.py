"""Fallback models for workloads the online estimator cannot vouch for.

Two sources, in decreasing order of information:

* :func:`warm_start_model` -- re-fit from *cached* offline profiling
  measurements.  Every profiling grid point ever run through the sweep
  subsystem sits in the content-addressed cache keyed on
  ``(task name, config hash, package version)``; if the full grid for
  a workload is present, the Eq. 1 fit is reconstructed without
  running anything.  A partial grid is a miss -- fitting through half
  a grid silently yields a different (worse) model than the offline
  table would hold, which is exactly the kind of quiet skew golden
  tests exist to prevent.
* :func:`conservative_prior` -- a pessimistic synthetic curve,
  ``D(b) = (1 - beta) + beta / b``, for workloads with no history at
  all.  It is exact at full bandwidth (``D(1) = 1``), monotone
  decreasing and convex in ``b`` (so the Eq. 2 fast path applies), and
  treats the application as ``beta``-network-bound.  Overstating
  sensitivity is the safe direction: a cold application is granted
  *more* protection than it may need until real observations arrive,
  rather than being starved on an optimistic guess.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.sensitivity import (
    PROFILE_FRACTIONS,
    SensitivityModel,
    fit_sensitivity_model,
)
from repro.sweep.cache import SweepCache, cache_key, default_cache
from repro.units import GBPS_56
from repro.workloads.catalog import CATALOG, PROFILER_NODES

#: Assumed network-bound share of a cold application's critical path.
DEFAULT_PRIOR_BETA = 0.5


def conservative_prior(
    workload: str,
    beta: float = DEFAULT_PRIOR_BETA,
    fit_domain: Tuple[float, float] = (PROFILE_FRACTIONS[0], 1.0),
) -> SensitivityModel:
    """Pessimistic Eq. 1 curve ``D(b) = (1 - beta) + beta / b``.

    In the inverse basis (x = 1/b) this is the exact two-coefficient
    polynomial ``(1 - beta) + beta * x``, so no fitting is involved.
    """
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"beta must be in [0, 1]: {beta}")
    return SensitivityModel(
        name=workload,
        coefficients=(1.0 - beta, beta),
        fit_domain=fit_domain,
        basis="inverse",
        r_squared=None,
    )


def warm_start_model(
    workload: str,
    cache: Optional[SweepCache] = None,
    fractions: Sequence[float] = PROFILE_FRACTIONS,
    degree: int = 3,
    n_instances: int = PROFILER_NODES,
    link_capacity: float = GBPS_56,
    methods: Sequence[str] = ("simulate", "analytic"),
) -> Optional[SensitivityModel]:
    """Rebuild ``workload``'s offline fit from cached profiling points.

    Probes the sweep cache for the exact tasks
    :meth:`~repro.core.profiler.OfflineProfiler.point_task` would
    enqueue, for each measurement ``method`` in turn; the first method
    whose *entire* grid is cached wins.  Returns ``None`` when no
    method has full coverage or the workload is not in the catalog
    (tenant-private workloads never went through the profiler).
    """
    # Imported here: profiler -> cluster runtime is a heavy import
    # chain that pure-estimator users (and their tests) skip.
    from repro.core.profiler import OfflineProfiler

    template = CATALOG.get(workload)
    if template is None:
        return None
    cache = cache if cache is not None else default_cache()
    spec = template.instantiate(
        n_instances=n_instances, link_capacity=link_capacity
    )
    for method in methods:
        profiler = OfflineProfiler(
            fractions=fractions, degree=degree, n_nodes=n_instances,
            link_capacity=link_capacity, method=method,
        )
        times = []
        for fraction in profiler.fractions:
            hit, value = cache.get(
                cache_key(profiler.point_task(spec, fraction))
            )
            if not hit:
                times = []
                break
            times.append((fraction, float(value)))
        if not times:
            continue
        baseline = dict(times)[1.0]
        if baseline <= 0:
            continue
        samples = [(f, t / baseline) for f, t in times]
        return fit_sensitivity_model(workload, samples, degree=degree)
    return None
