"""Telemetry-driven online sensitivity estimation.

Lets applications register with the controller *without* an offline
profiling run: a :class:`StageSampler` harvests (achieved bandwidth
fraction, observed slowdown) pairs from live stage telemetry, an
:class:`OnlineSensitivityEstimator` re-fits Eq. 1 models over a
sliding window with drift detection, and a :class:`ModelProvider`
implementation decides -- per lookup -- whether the controller sees
the trusted online fit, the offline table entry, or a conservative
prior.  See ``DESIGN.md`` section 5g.
"""

from repro.online.estimator import (
    EstimatorConfig,
    OnlineSensitivityEstimator,
    PageHinkley,
)
from repro.online.prior import (
    DEFAULT_PRIOR_BETA,
    conservative_prior,
    warm_start_model,
)
from repro.online.provider import (
    HybridModelProvider,
    ModelProvider,
    OfflineModelProvider,
    OnlineModelProvider,
)
from repro.online.sampler import StageSampler

__all__ = [
    "DEFAULT_PRIOR_BETA",
    "EstimatorConfig",
    "HybridModelProvider",
    "ModelProvider",
    "OfflineModelProvider",
    "OnlineModelProvider",
    "OnlineSensitivityEstimator",
    "PageHinkley",
    "StageSampler",
    "conservative_prior",
    "warm_start_model",
]
