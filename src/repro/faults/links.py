"""Applying ``link_down`` schedules to a live fabric.

The :class:`~repro.faults.injector.FaultInjector` only *answers*
schedule queries -- it never touches the event engine, preserving the
"no faults, no events" property of PR 4.  Link faults are different
from RPC faults: nothing polls a link, so lazily evaluating its state
at query time would never actually take it down.  The
:class:`LinkFaultDriver` closes that gap: it walks each link's
deterministic window sequence, schedules the down/up transitions on
the simulated clock, and applies them through
:meth:`~repro.simnet.fabric.FluidFabric.set_link_state` (which
reroutes the affected flows).

The driver is deliberately service-agnostic: the allocation service
passes an ``on_transition`` callback to re-announce rerouted
connections to the controller, but a bare fabric experiment can run
the same schedule with no control plane at all.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import FaultError
from repro.faults.injector import FaultInjector
from repro.simnet.fabric import FluidFabric, RerouteReport


class LinkFaultDriver:
    """Schedules a plan's link transitions on one fabric's sim clock.

    One :meth:`start` call schedules the first down window of every
    link carrying a ``link_down`` spec; each recovery then schedules
    that link's next window, so at most one pending event per link
    exists at any time and the event queue drains once the schedule is
    exhausted.  Stochastic (MTBF/MTTR) schedules are unbounded, so
    they require a ``horizon``: windows starting after it are not
    scheduled (scripted-window schedules may omit it).
    """

    def __init__(
        self,
        fabric: FluidFabric,
        injector: FaultInjector,
        horizon: Optional[float] = None,
        on_transition: Optional[Callable[[RerouteReport], None]] = None,
    ) -> None:
        self.fabric = fabric
        self.injector = injector
        self.horizon = horizon
        self.on_transition = on_transition
        self.transitions = 0
        self._started = False

    def start(self) -> int:
        """Schedule each faulted link's first outage; returns how many.

        Binds the injector to the fabric's clock if it is not bound
        yet.  Must be called before :meth:`FluidFabric.run` processes
        the first window's start time.
        """
        if self._started:
            raise FaultError("LinkFaultDriver.start called twice")
        self._started = True
        if getattr(self.injector, "_sim", None) is None:
            self.injector.bind(self.fabric.sim)
        topology = self.fabric.topology
        scheduled = 0
        for link_id in self.injector.link_targets():
            if link_id not in topology.links:
                raise FaultError(
                    f"link_down spec targets unknown link {link_id!r}"
                )
            if (self.horizon is None
                    and not self.injector.link_schedule_is_finite(link_id)):
                raise FaultError(
                    f"stochastic link_down schedule for {link_id!r} "
                    "needs a horizon"
                )
            scheduled += self._schedule_next(link_id, self.fabric.sim.now)
        return scheduled

    def _schedule_next(self, link_id: str, after: float) -> int:
        window = self.injector.next_link_window(link_id, after)
        if window is None:
            return 0
        down_at, up_at = window
        if self.horizon is not None and down_at > self.horizon:
            return 0

        def fire_down(link_id: str = link_id, up_at: float = up_at) -> None:
            self._apply(link_id, up=False)
            self.fabric.sim.schedule_at(
                up_at,
                lambda: self._recover(link_id, up_at),
            )

        self.fabric.sim.schedule_at(down_at, fire_down)
        return 1

    def _recover(self, link_id: str, up_at: float) -> None:
        self._apply(link_id, up=True)
        # Windows are non-overlapping, so the next one starts at or
        # after this recovery; querying from ``up_at`` (not ``now``)
        # keeps the schedule exact even if the engine coalesced events.
        self._schedule_next(link_id, up_at)

    def _apply(self, link_id: str, up: bool) -> None:
        self.transitions += 1
        report = self.fabric.set_link_state(link_id, up)
        if self.on_transition is not None:
            self.on_transition(report)
