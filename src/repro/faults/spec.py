"""Declarative fault specifications for the control plane.

The paper concedes that "a centralized controller represents a single
point of failure" (Section 5.4) but never measures what that costs.
To measure it, faults must be *deterministic*: a fault schedule is a
pure function of a seed and the simulated clock, so two runs of the
same experiment inject byte-identical fault sequences and the sweep
cache can key on the spec itself.

A :class:`FaultSpec` names one failure mode of one RPC endpoint:

* ``crash``   -- the endpoint is unreachable during down windows,
  either drawn from exponential MTBF/MTTR distributions (a seeded
  renewal process) or given explicitly as ``windows``;
* ``latency`` -- per-call transit latency, exponentially distributed;
* ``loss``    -- each request is dropped in the network with
  probability ``prob`` (the handler never runs);
* ``stall``   -- with probability ``prob`` the handler runs but its
  reply is delayed by ``duration`` seconds (a GC pause / overloaded
  controller -- the caller may time out even though the side effect
  happened).

One kind targets the *data plane* instead of an RPC endpoint:

* ``link_down`` -- the target is a directed link id; the link is down
  during its windows (same MTBF/MTTR renewal process or scripted
  windows as ``crash``).  The injector only answers schedule queries
  (:meth:`~repro.faults.injector.FaultInjector.next_link_window`);
  applying transitions to a fabric is the job of
  :class:`~repro.faults.links.LinkFaultDriver`, so the same
  deterministic schedule is reusable outside the allocation service.

A :class:`FaultPlan` bundles specs with the seed that drives every
random draw; :meth:`FaultPlan.build` turns it into a live
:class:`~repro.faults.injector.FaultInjector`.  Both dataclasses are
frozen and picklable, so sweep tasks can carry them across process
boundaries and the config hash of a faulted experiment includes its
exact fault schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import FaultError

KIND_CRASH = "crash"
KIND_LATENCY = "latency"
KIND_LOSS = "loss"
KIND_STALL = "stall"
#: A network link (the spec's ``target`` is a directed link id) is
#: down during its windows, unlike the four RPC-endpoint kinds above.
KIND_LINK_DOWN = "link_down"

FAULT_KINDS = (KIND_CRASH, KIND_LATENCY, KIND_LOSS, KIND_STALL,
               KIND_LINK_DOWN)


@dataclass(frozen=True)
class FaultSpec:
    """One failure mode of one endpoint.  Prefer the named
    constructors (:meth:`crash`, :meth:`outage`, :meth:`latency`,
    :meth:`loss`, :meth:`stall`) over filling fields by hand."""

    target: str
    kind: str
    #: Crash renewal process: mean up time / mean down time (seconds).
    mtbf: Optional[float] = None
    mttr: Optional[float] = None
    #: Explicit outage windows ``((start, end), ...)`` -- an
    #: alternative to the MTBF/MTTR process for scripted scenarios.
    windows: Tuple[Tuple[float, float], ...] = ()
    #: Mean of the exponential per-call latency (``latency`` kind).
    mean_latency: float = 0.0
    #: Per-call probability (``loss`` and ``stall`` kinds).
    prob: float = 0.0
    #: Reply delay of a stalled handler (``stall`` kind).
    duration: float = 0.0
    #: Simulated time before which the fault is dormant.
    start: float = 0.0

    def __post_init__(self) -> None:
        if not self.target:
            raise FaultError("FaultSpec needs a non-empty target")
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}"
            )
        if self.start < 0:
            raise FaultError(f"start must be >= 0: {self.start}")
        object.__setattr__(
            self, "windows",
            tuple((float(s), float(e)) for s, e in self.windows),
        )
        if self.kind in (KIND_CRASH, KIND_LINK_DOWN):
            stochastic = self.mtbf is not None or self.mttr is not None
            if stochastic and self.windows:
                raise FaultError(
                    f"{self.kind} spec takes either mtbf/mttr or explicit "
                    "windows, not both"
                )
            if stochastic:
                if not (self.mtbf and self.mtbf > 0
                        and self.mttr and self.mttr > 0):
                    raise FaultError(
                        f"{self.kind} spec needs mtbf > 0 and mttr > 0, got "
                        f"mtbf={self.mtbf} mttr={self.mttr}"
                    )
            elif not self.windows:
                raise FaultError(
                    f"{self.kind} spec needs mtbf/mttr or windows"
                )
            previous_end = 0.0
            for s, e in self.windows:
                if s < previous_end or e <= s:
                    raise FaultError(
                        f"outage windows must be sorted, non-overlapping "
                        f"and non-empty: {self.windows}"
                    )
                previous_end = e
        elif self.kind == KIND_LATENCY:
            if self.mean_latency <= 0:
                raise FaultError(
                    f"latency spec needs mean_latency > 0: "
                    f"{self.mean_latency}"
                )
        elif self.kind == KIND_LOSS:
            if not 0.0 < self.prob <= 1.0:
                raise FaultError(f"loss prob must be in (0, 1]: {self.prob}")
        elif self.kind == KIND_STALL:
            if not 0.0 < self.prob <= 1.0:
                raise FaultError(f"stall prob must be in (0, 1]: {self.prob}")
            if self.duration <= 0:
                raise FaultError(
                    f"stall duration must be > 0: {self.duration}"
                )

    # -- named constructors ------------------------------------------------

    @classmethod
    def crash(cls, target: str, mtbf: float, mttr: float,
              start: float = 0.0) -> "FaultSpec":
        """Alternating up/down renewal process (exponential holds)."""
        return cls(target=target, kind=KIND_CRASH, mtbf=mtbf, mttr=mttr,
                   start=start)

    @classmethod
    def outage(cls, target: str,
               windows: Tuple[Tuple[float, float], ...]) -> "FaultSpec":
        """Scripted down windows ``((start, end), ...)``."""
        return cls(target=target, kind=KIND_CRASH, windows=tuple(windows))

    @classmethod
    def latency(cls, target: str, mean: float,
                start: float = 0.0) -> "FaultSpec":
        """Exponential per-call transit latency with the given mean."""
        return cls(target=target, kind=KIND_LATENCY, mean_latency=mean,
                   start=start)

    @classmethod
    def loss(cls, target: str, prob: float, start: float = 0.0) -> "FaultSpec":
        """Drop each request with probability ``prob``."""
        return cls(target=target, kind=KIND_LOSS, prob=prob, start=start)

    @classmethod
    def stall(cls, target: str, prob: float, duration: float,
              start: float = 0.0) -> "FaultSpec":
        """Handler runs but its reply is ``duration`` seconds late."""
        return cls(target=target, kind=KIND_STALL, prob=prob,
                   duration=duration, start=start)

    @classmethod
    def link_down(cls, link_id: str, mtbf: float, mttr: float,
                  start: float = 0.0) -> "FaultSpec":
        """Link failure renewal process (exponential up/down holds).

        ``link_id`` names a *directed* link (``"a->b"``); model a full
        cable cut by adding a second spec for the reverse direction.
        """
        return cls(target=link_id, kind=KIND_LINK_DOWN, mtbf=mtbf,
                   mttr=mttr, start=start)

    @classmethod
    def link_flap(cls, link_id: str,
                  windows: Tuple[Tuple[float, float], ...]) -> "FaultSpec":
        """Scripted link outage windows ``((down_at, up_at), ...)``."""
        return cls(target=link_id, kind=KIND_LINK_DOWN,
                   windows=tuple(windows))


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault specs: the whole fault model of one run.

    ``seed`` drives every random draw the injector makes (window
    lengths, loss/stall coin flips, latency samples) through
    per-target, per-purpose RNG streams, so adding a fault on one
    endpoint never perturbs the schedule of another.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        seen = set()
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise FaultError(f"not a FaultSpec: {spec!r}")
            key = (spec.target, spec.kind)
            if key in seen:
                raise FaultError(
                    f"duplicate {spec.kind!r} spec for target "
                    f"{spec.target!r}"
                )
            seen.add(key)

    @property
    def targets(self) -> Tuple[str, ...]:
        return tuple(sorted({spec.target for spec in self.specs}))

    def build(self, observer=None):
        """Instantiate the injector for one run."""
        from repro.faults.injector import FaultInjector

        return FaultInjector(self, observer=observer)
